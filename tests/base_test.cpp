// Unit tests for decisive_base: strings, LangString, CSV, XML, JSON, tables,
// and the deterministic PRNG.
#include <gtest/gtest.h>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/base/lang_string.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/base/xml.hpp"

using namespace decisive;

// ---------------------------------------------------------------- strings --

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("model.mdl", "model"));
  EXPECT_FALSE(starts_with("m", "model"));
  EXPECT_TRUE(ends_with("model.mdl", ".mdl"));
  EXPECT_FALSE(ends_with("mdl", "model.mdl"));
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("MCu-1"), "mcu-1");
  EXPECT_TRUE(iequals("ASIL-B", "asil-b"));
  EXPECT_FALSE(iequals("ASIL-B", "asil-c"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Strings, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("  -1e-3 "), -1e-3);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW(parse_int("4.2"), ParseError);
}

TEST(Strings, ParseBool) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("TRUE"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_THROW(parse_bool("yes"), ParseError);
}

TEST(Strings, FormatNumberTrimsTrailingZeros) {
  EXPECT_EQ(format_number(3.14), "3.14");
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(4.5), "4.5");
  EXPECT_EQ(format_number(-0.0), "0");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.9677), "96.77%");
  EXPECT_EQ(format_percent(0.3, 0), "30%");
}

TEST(ErrorHierarchy, KindsAndMessages) {
  const CapacityError error("too big");
  EXPECT_EQ(error.kind(), ErrorKind::Capacity);
  EXPECT_NE(std::string(error.what()).find("too big"), std::string::npos);
  EXPECT_EQ(to_string(ErrorKind::Simulation), "simulation");
}

// ------------------------------------------------------------- LangString --

TEST(LangString, DefaultsToEnglish) {
  const LangString name("power supply");
  EXPECT_EQ(name.get(), "power supply");
  EXPECT_EQ(name.get("en"), "power supply");
  EXPECT_TRUE(name.has("en"));
}

TEST(LangString, FallbackChain) {
  LangString name;
  EXPECT_EQ(name.get(), "");
  name.set("de", "Netzteil");
  EXPECT_EQ(name.get("en"), "Netzteil");  // any variant beats empty
  name.set("en", "power supply");
  EXPECT_EQ(name.get("fr"), "power supply");  // en fallback
  EXPECT_EQ(name.get("de"), "Netzteil");
  EXPECT_EQ(name.size(), 2u);
}

// -------------------------------------------------------------------- CSV --

TEST(Csv, ParsesHeaderAndRows) {
  const auto table = parse_csv("a,b\n1,2\n3,4\n");
  EXPECT_EQ(table.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.at(0, "b"), "2");
  EXPECT_EQ(table.at(1, "a"), "3");
}

TEST(Csv, HandlesQuotedFields) {
  const auto table = parse_csv("name,desc\n\"a,b\",\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(table.rows[0][0], "a,b");
  EXPECT_EQ(table.rows[0][1], "say \"hi\"");
}

TEST(Csv, HandlesCrLfAndTrailingNewlines) {
  const auto table = parse_csv("a,b\r\n1,2\r\n\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(Csv, ColumnLookupIsCaseInsensitive) {
  const auto table = parse_csv("Component,FIT\nDiode,10\n");
  EXPECT_EQ(table.column("component"), 0);
  EXPECT_EQ(table.column("fit"), 1);
  EXPECT_EQ(table.column("nope"), -1);
}

TEST(Csv, AtThrowsOnBadAccess) {
  const auto table = parse_csv("a\n1\n");
  EXPECT_THROW((void)table.at(0, "missing"), ModelError);
  EXPECT_THROW((void)table.at(5, "a"), ModelError);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"unterminated\n"), ParseError);
}

TEST(Csv, WriteQuotesOnlyWhenNeeded) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"plain", "with,comma"}, {"with\"quote", "line\nbreak"}};
  const std::string text = write_csv(table);
  EXPECT_NE(text.find("plain"), std::string::npos);
  EXPECT_NE(text.find("\"with,comma\""), std::string::npos);
  const auto back = parse_csv(text);
  EXPECT_EQ(back.rows, table.rows);
}

class CsvRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(CsvRoundTrip, ParseWriteParseIsStable) {
  const auto first = parse_csv(GetParam());
  const auto second = parse_csv(write_csv(first));
  EXPECT_EQ(first.header, second.header);
  EXPECT_EQ(first.rows, second.rows);
}

INSTANTIATE_TEST_SUITE_P(Samples, CsvRoundTrip,
                         ::testing::Values("a,b\n1,2\n", "x\n\"quoted \"\"x\"\"\"\n",
                                           "h1,h2,h3\n,,\nval,,end\n",
                                           "only_header\n"));

// -------------------------------------------------------------------- XML --

TEST(Xml, ParsesElementsAttributesText) {
  const auto root = xml::parse("<a x=\"1\"><b>text</b><b y='2'/></a>");
  EXPECT_EQ(root->name, "a");
  EXPECT_EQ(root->attribute_or("x", ""), "1");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->text, "text");
  EXPECT_EQ(root->children[1]->attribute_or("y", ""), "2");
  EXPECT_EQ(root->children_named("b").size(), 2u);
}

TEST(Xml, DecodesEntities) {
  const auto root = xml::parse("<a v=\"&lt;&amp;&gt;&quot;&apos;\">x &#65; &#x42;</a>");
  EXPECT_EQ(root->attribute_or("v", ""), "<&>\"'");
  EXPECT_EQ(root->text, "x A B");
}

TEST(Xml, SkipsCommentsDeclarationsDoctype) {
  const auto root = xml::parse(
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- c --><a><!-- inner --><b/></a>");
  EXPECT_EQ(root->name, "a");
  EXPECT_EQ(root->children.size(), 1u);
}

TEST(Xml, CdataIsText) {
  const auto root = xml::parse("<a><![CDATA[1 < 2 && 3]]></a>");
  EXPECT_EQ(root->text, "1 < 2 && 3");
}

TEST(Xml, MalformedInputThrows) {
  EXPECT_THROW(xml::parse("<a><b></a>"), ParseError);
  EXPECT_THROW(xml::parse("<a"), ParseError);
  EXPECT_THROW(xml::parse("<a/><b/>"), ParseError);
  EXPECT_THROW(xml::parse("<a v=unquoted/>"), ParseError);
}

TEST(Xml, RoundTripPreservesStructure) {
  const auto root = xml::parse("<m p=\"ssam\"><o id=\"1\" class=\"C&amp;D\"><r t=\"2 3\"/></o></m>");
  const auto again = xml::parse(xml::write(*root));
  EXPECT_EQ(again->name, "m");
  EXPECT_EQ(again->children[0]->attribute_or("class", ""), "C&D");
  EXPECT_EQ(again->children[0]->children[0]->attribute_or("t", ""), "2 3");
}

// ------------------------------------------------------------------- JSON --

TEST(Json, ParsesAllTypes) {
  const auto v = json::parse(R"({"n": null, "b": true, "x": 1.5, "s": "hi",
                                 "a": [1, 2], "o": {"k": "v"}})");
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_TRUE(v.find("b")->as_bool());
  EXPECT_DOUBLE_EQ(v.find("x")->as_number(), 1.5);
  EXPECT_EQ(v.find("s")->as_string(), "hi");
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
  EXPECT_EQ(v.find("o")->find("k")->as_string(), "v");
}

TEST(Json, DecodesEscapes) {
  const auto v = json::parse(R"(["a\"b", "\n\t\\", "A"])");
  EXPECT_EQ(v.as_array()[0].as_string(), "a\"b");
  EXPECT_EQ(v.as_array()[1].as_string(), "\n\t\\");
  EXPECT_EQ(v.as_array()[2].as_string(), "A");
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(json::parse("{"), ParseError);
  EXPECT_THROW(json::parse("[1,]"), ParseError);
  EXPECT_THROW(json::parse("tru"), ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1} extra"), ParseError);
}

TEST(Json, TypeMismatchThrows) {
  const auto v = json::parse("42");
  EXPECT_THROW((void)v.as_string(), ParseError);
  EXPECT_THROW((void)v.as_array(), ParseError);
  EXPECT_DOUBLE_EQ(v.as_number(), 42.0);
}

TEST(Json, RoundTrip) {
  const char* text = R"({"list": [1, true, null, "x"], "nested": {"deep": [{}]}})";
  const auto v = json::parse(text);
  const auto again = json::parse(json::write(v));
  EXPECT_EQ(json::write(v), json::write(again));
}

// ------------------------------------------------------------------ table --

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "bb"});
  table.add_row({"xxx", "y"});
  const std::string out = table.render();
  EXPECT_NE(out.find("a   | bb"), std::string::npos);
  EXPECT_NE(out.find("xxx | y"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TextTable, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_NO_THROW(table.render());
}

// -------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
  EXPECT_EQ(rng.below(0), 0u);
}
