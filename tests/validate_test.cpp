// Tests for SSAM structural validation and the FTA importance measures.
#include <gtest/gtest.h>

#include <cmath>

#include "decisive/core/fta.hpp"
#include "decisive/ssam/validate.hpp"

using namespace decisive;
using namespace decisive::ssam;

namespace {

bool has_rule(const std::vector<ValidationFinding>& findings, const std::string& rule) {
  for (const auto& finding : findings) {
    if (finding.rule == rule) return true;
  }
  return false;
}

struct Fixture {
  SsamModel m;
  ObjectId pkg, sys;

  Fixture() {
    pkg = m.create_component_package("design");
    sys = m.create_component(pkg, "sys");
  }
};

}  // namespace

TEST(Validate, CleanModelHasNoFindings) {
  Fixture f;
  const auto comp = f.m.create_component(f.sys, "c1");
  f.m.obj(comp).set_real("fit", 10.0);
  const auto fm = f.m.add_failure_mode(comp, "Open", 0.3, "lossOfFunction");
  f.m.add_failure_mode(comp, "Short", 0.7, "erroneous");
  f.m.add_safety_mechanism(comp, "sm", 0.9, 1.0, fm);
  EXPECT_TRUE(validate(f.m).empty());
}

TEST(Validate, NegativeFit) {
  Fixture f;
  const auto comp = f.m.create_component(f.sys, "c1");
  f.m.obj(comp).set_real("fit", -1.0);
  EXPECT_TRUE(has_rule(validate(f.m), "comp-fit-negative"));
}

TEST(Validate, DistributionRangeAndSum) {
  Fixture f;
  const auto comp = f.m.create_component(f.sys, "c1");
  // The facade rejects out-of-range values, so set them reflectively (as a
  // buggy importer might).
  const auto fm1 = f.m.add_failure_mode(comp, "A", 0.9, "lossOfFunction");
  f.m.obj(fm1).set_real("distribution", 1.5);
  const auto findings = validate(f.m);
  EXPECT_TRUE(has_rule(findings, "fm-distribution-range"));
  EXPECT_TRUE(has_rule(findings, "fm-distribution-sum"));
}

TEST(Validate, DistributionSumAcrossModes) {
  Fixture f;
  const auto comp = f.m.create_component(f.sys, "c1");
  f.m.add_failure_mode(comp, "A", 0.7, "lossOfFunction");
  f.m.add_failure_mode(comp, "B", 0.7, "erroneous");
  EXPECT_TRUE(has_rule(validate(f.m), "fm-distribution-sum"));
}

TEST(Validate, SmCoverageAndForeignCovers) {
  Fixture f;
  const auto c1 = f.m.create_component(f.sys, "c1");
  const auto c2 = f.m.create_component(f.sys, "c2");
  const auto foreign_fm = f.m.add_failure_mode(c2, "Open", 0.5, "lossOfFunction");
  const auto sm = f.m.add_safety_mechanism(c1, "sm", 0.9, 1.0, foreign_fm);
  f.m.obj(sm).set_real("coverage", 1.2);
  const auto findings = validate(f.m);
  EXPECT_TRUE(has_rule(findings, "sm-coverage-range"));
  EXPECT_TRUE(has_rule(findings, "sm-covers-foreign"));
}

TEST(Validate, RelationshipEndpoints) {
  Fixture f;
  const auto a = f.m.create_component(f.sys, "a");
  const auto a_out = f.m.add_io_node(a, "a.out", "out");
  // Endpoint outside scope: an IONode of a component elsewhere.
  const auto other = f.m.create_component(f.pkg, "elsewhere");
  const auto other_in = f.m.add_io_node(other, "o.in", "in");
  f.m.connect(f.sys, a_out, other_in);
  EXPECT_TRUE(has_rule(validate(f.m), "rel-endpoint-scope"));

  // Missing endpoint (reflective corruption).
  const auto rel = f.m.obj(f.sys).refs("relationships")[0];
  f.m.obj(rel).set_ref("target", model::kNullObject);
  EXPECT_TRUE(has_rule(validate(f.m), "rel-endpoint-missing"));
}

TEST(Validate, CompositeWithoutBoundary) {
  Fixture f;
  const auto a = f.m.create_component(f.sys, "a");
  const auto b = f.m.create_component(f.sys, "b");
  const auto a_out = f.m.add_io_node(a, "a.out", "out");
  const auto b_in = f.m.add_io_node(b, "b.in", "in");
  f.m.connect(f.sys, a_out, b_in);
  EXPECT_TRUE(has_rule(validate(f.m), "composite-io"));
  // Adding boundary nodes clears the finding.
  f.m.add_io_node(f.sys, "in", "in");
  f.m.add_io_node(f.sys, "out", "out");
  EXPECT_FALSE(has_rule(validate(f.m), "composite-io"));
}

TEST(Validate, NameCollision) {
  Fixture f;
  f.m.create_component(f.sys, "dup");
  f.m.create_component(f.sys, "dup");
  EXPECT_TRUE(has_rule(validate(f.m), "name-collision"));
}

TEST(Validate, BadIoDirectionViaReflection) {
  Fixture f;
  const auto a = f.m.create_component(f.sys, "a");
  const auto node = f.m.add_io_node(a, "x", "in");
  f.m.obj(node).set_string("direction", "sideways");
  EXPECT_TRUE(has_rule(validate(f.m), "io-direction"));
}

TEST(Validate, TextRendering) {
  Fixture f;
  EXPECT_NE(to_text(f.m, validate(f.m)).find("well-formed"), std::string::npos);
  f.m.create_component(f.sys, "dup");
  f.m.create_component(f.sys, "dup");
  const auto findings = validate(f.m);
  EXPECT_NE(to_text(f.m, findings).find("name-collision"), std::string::npos);
}

// ----------------------------------------------------- importance measures --

namespace {

struct FtaFixture {
  SsamModel m;
  ObjectId sys, in, out;

  FtaFixture() {
    const auto pkg = m.create_component_package("design");
    sys = m.create_component(pkg, "sys");
    in = m.add_io_node(sys, "in", "in");
    out = m.add_io_node(sys, "out", "out");
  }

  struct Sub {
    ObjectId comp, in, out;
  };
  Sub leaf(const std::string& name, double fit) {
    Sub s;
    s.comp = m.create_component(sys, name);
    m.obj(s.comp).set_real("fit", fit);
    s.in = m.add_io_node(s.comp, name + ".in", "in");
    s.out = m.add_io_node(s.comp, name + ".out", "out");
    m.add_failure_mode(s.comp, "Open", 1.0, "lossOfFunction");
    return s;
  }
};

}  // namespace

TEST(Importance, SerialEventsShareBirnbaumOne) {
  FtaFixture f;
  const auto a = f.leaf("a", 1000);
  const auto b = f.leaf("b", 100);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, f.out);
  const auto tree = core::synthesize_fault_tree(f.m, f.sys);
  const auto importance = core::importance_measures(tree, 10000.0);
  ASSERT_EQ(importance.size(), 2u);
  // Order-1 cuts: Birnbaum = 1 (the event alone decides).
  for (const auto& imp : importance) EXPECT_NEAR(imp.birnbaum, 1.0, 1e-12);
  // The higher-rate component dominates Fussell-Vesely.
  EXPECT_NE(importance[0].label.find("'a'"), std::string::npos);
  EXPECT_GT(importance[0].fussell_vesely, importance[1].fussell_vesely);
  // FV fractions sum to 1 for disjoint single cuts under rare-event approx.
  EXPECT_NEAR(importance[0].fussell_vesely + importance[1].fussell_vesely, 1.0, 1e-9);
}

TEST(Importance, RedundantPairBirnbaumIsPartnerProbability) {
  FtaFixture f;
  const auto a = f.leaf("a", 1000);
  const auto b = f.leaf("b", 1000);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, f.in, b.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.connect(f.sys, b.out, f.out);
  const auto tree = core::synthesize_fault_tree(f.m, f.sys);
  const double t = 10000.0;
  const double p = 1.0 - std::exp(-1e-6 * t);
  const auto importance = core::importance_measures(tree, t);
  ASSERT_EQ(importance.size(), 2u);
  for (const auto& imp : importance) {
    EXPECT_NEAR(imp.birnbaum, p, 1e-12);         // decisive only when twin is down
    EXPECT_NEAR(imp.fussell_vesely, 1.0, 1e-12);  // the single cut contains both
  }
}

TEST(Importance, MixedTopologyRanksSerialAboveRedundant) {
  FtaFixture f;
  const auto head = f.leaf("head", 500);
  const auto left = f.leaf("left", 500);
  const auto right = f.leaf("right", 500);
  f.m.connect(f.sys, f.in, head.in);
  f.m.connect(f.sys, head.out, left.in);
  f.m.connect(f.sys, head.out, right.in);
  f.m.connect(f.sys, left.out, f.out);
  f.m.connect(f.sys, right.out, f.out);
  const auto tree = core::synthesize_fault_tree(f.m, f.sys);
  const auto importance = core::importance_measures(tree, 10000.0);
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_NE(importance[0].label.find("'head'"), std::string::npos);
}
