// Cross-module integration tests: full pipelines from model files through
// simulation, FMEA, persistence and assurance.
#include <gtest/gtest.h>

#include <filesystem>

#include "decisive/assurance/case.hpp"
#include "decisive/assurance/evaluate.hpp"
#include "decisive/base/csv.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/core/workflow.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/model/xmi.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/transform/simulink.hpp"

using namespace decisive;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("decisive-integration-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

core::CircuitFmeaOptions case_study_options() {
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  return options;
}

core::FmedaResult run_case_study(bool with_ecc) {
  const auto built = sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"));
  const auto workbook =
      drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  const auto sm = core::SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");
  return core::analyze_circuit(built, reliability, with_ecc ? &sm : nullptr,
                               case_study_options());
}

}  // namespace

TEST(Integration, MdlToFmedaToAssuranceCase) {
  // The paper's Section V story end to end: design -> FMEDA -> evidence CSV
  // -> assurance case evaluation flips from defeated to supported when the
  // ECC refinement lands.
  TempDir tmp;
  const std::string evidence = (tmp.path / "fmeda.csv").string();

  assurance::AssuranceCase ac("power-supply");
  ac.add_claim("G1", "design meets ASIL-B SPFM");
  ac.add_artifact("E1", "generated FMEDA", "G1", evidence, "csv",
                  "var sr = rows().select(r | r.Safety_Related == 'Yes');\n"
                  "var comps = sr.collect(r | r.Component).distinct();\n"
                  "var lambda = comps.collect(c |\n"
                  "    rows().select(r | r.Component == c).first().FIT).sum();\n"
                  "1 - sr.collect(r | r.Single_Point_FIT).sum() / lambda >= 0.90");

  write_csv_file(evidence, run_case_study(false).to_csv());
  EXPECT_FALSE(assurance::evaluate(ac).case_supported);

  write_csv_file(evidence, run_case_study(true).to_csv());
  EXPECT_TRUE(assurance::evaluate(ac).case_supported);
}

TEST(Integration, RoundTrippedModelProducesIdenticalFmea) {
  // MDL -> SSAM -> MDL -> circuit FMEA must agree with the direct pipeline:
  // the transformation is behaviour-preserving, not just structure-
  // preserving.
  const auto mdl = drivers::parse_mdl_file(kAssets + "/power_supply.mdl");
  ssam::SsamModel ssam_model;
  const auto transform_result = transform::simulink_to_ssam(mdl, ssam_model);
  const auto regenerated = transform::ssam_to_simulink(ssam_model, transform_result.root);

  const auto workbook =
      drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");

  const auto direct = core::analyze_circuit(sim::build_circuit(mdl), reliability, nullptr,
                                            case_study_options());
  const auto roundtripped = core::analyze_circuit(sim::build_circuit(regenerated),
                                                  reliability, nullptr, case_study_options());
  ASSERT_EQ(direct.rows.size(), roundtripped.rows.size());
  EXPECT_DOUBLE_EQ(direct.spfm(), roundtripped.spfm());
  EXPECT_EQ(direct.safety_related_components(), roundtripped.safety_related_components());
}

TEST(Integration, SsamModelSurvivesXmiPersistence) {
  // Build System A, persist it as XMI, reload, re-run the FMEA: identical
  // verdicts and metrics.
  auto original = core::make_system_a();
  const auto fmea_before = core::analyze_component(*original.model, original.system);

  TempDir tmp;
  const std::string path = (tmp.path / "system_a.ssam").string();
  // Persist BEFORE analysis wrote effects: rebuild a fresh copy for saving.
  auto fresh = core::make_system_a();
  model::save_xmi_file(path, fresh.model->repo(), fresh.model->meta());

  ssam::SsamModel loaded;
  model::load_xmi_file(loaded.repo(), loaded.meta(), path);
  EXPECT_EQ(loaded.size(), 102u);
  const auto system = loaded.find_by_name(ssam::cls::Component, "PowerSupplyA");
  ASSERT_NE(system, model::kNullObject);
  const auto fmea_after = core::analyze_component(loaded, system);
  EXPECT_EQ(fmea_after.rows.size(), fmea_before.rows.size());
  EXPECT_DOUBLE_EQ(fmea_after.spfm(), fmea_before.spfm());
  EXPECT_EQ(fmea_after.safety_related_components(),
            fmea_before.safety_related_components());
}

TEST(Integration, DecisiveWorkflowOnImportedDesign) {
  // Import the Simulink case study, graft the imported components under a
  // DECISIVE process system, aggregate reliability through Step 3 and
  // iterate to ASIL-B — the non-Simulink path of the paper applied to an
  // imported design.
  ssam::SsamModel m;
  core::DecisiveProcess process(m, "imported-power-supply");
  const auto h1 = process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  process.derive_safety_requirement(h1, "SR1", "supply must not fail silently", "ASIL-B");

  // Step 2 via import: transform, then wire the imported electrical chain
  // into the process system as a serial design.
  const auto mdl = drivers::parse_mdl_file(kAssets + "/power_supply.mdl");
  const auto imported = transform::simulink_to_ssam(mdl, m);
  (void)imported;

  const auto sys = process.system();
  const auto in = m.add_io_node(sys, "in", "in");
  const auto out = m.add_io_node(sys, "out", "out");
  ssam::ObjectId previous = in;
  for (const char* name : {"D1", "L1", "MC1"}) {
    const auto comp = m.create_component(sys, std::string("i.") + name);
    m.obj(comp).set_string("blockType",
                           std::string(name) == "MC1" ? "MC" : (name[0] == 'D' ? "Diode"
                                                                               : "Inductor"));
    const auto cin = m.add_io_node(comp, std::string(name) + ".in", "in");
    const auto cout = m.add_io_node(comp, std::string(name) + ".out", "out");
    m.connect(sys, previous, cin);
    previous = cout;
  }
  m.connect(sys, previous, out);

  const auto workbook =
      drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  EXPECT_EQ(process.aggregate_reliability(reliability), 3u);

  core::SafetyMechanismModel catalogue =
      core::SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");
  catalogue.add({"Diode", "Open", "Redundant diode", 0.95, 1.0});
  catalogue.add({"Inductor", "Open", "Supply monitor", 0.95, 1.0});

  const auto report = process.iterate_until("ASIL-B", catalogue);
  EXPECT_TRUE(report.target_met);
  EXPECT_GE(report.spfm, 0.90);
  const std::string concept_text = process.synthesise_safety_concept();
  EXPECT_NE(concept_text.find("ECC"), std::string::npos);
}

TEST(Integration, FederatedReliabilityThroughExternalReference) {
  // REQ2 end to end: a component's FIT is not modelled locally but pulled
  // from the workbook through its ExternalReference extraction rule.
  ssam::SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto mc = m.create_component(pkg, "MC1");
  const auto ext = m.add_external_reference(
      mc, kAssets + "/reliability_workbook", "workbook",
      "rows('Reliability').select(r | r.Component == 'MC').first().FIT");
  const auto fit = ssam::run_extraction(m, ext);
  m.obj(mc).set_real("fit", fit.as_number());
  EXPECT_DOUBLE_EQ(m.obj(mc).get_real("fit"), 300.0);
}

TEST(Integration, TransientAnalysisOfTheCaseStudy) {
  // The case-study circuit also runs in the time domain (the Simulink
  // substitute is a real simulator, not a DC-only stub): readings stay at
  // their DC values under constant drive.
  const auto built = sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"));
  const auto samples = sim::transient(built.circuit, 1e-3, 1e-5);
  ASSERT_GT(samples.size(), 50u);
  const double initial = samples.front().point.reading("CS1");
  const double final_reading = samples.back().point.reading("CS1");
  EXPECT_NEAR(initial, final_reading, std::abs(initial) * 0.05 + 1e-6);
  EXPECT_DOUBLE_EQ(samples.back().point.reading("MC1"), 1.0);
}
