// Tests for change-impact analysis and safety-concept allocation/validation
// (the ISO 26262 Clause 8 supporting-process side of DECISIVE).
#include <gtest/gtest.h>

#include <algorithm>

#include "decisive/base/error.hpp"
#include "decisive/core/impact.hpp"
#include "decisive/core/workflow.hpp"

using namespace decisive;
using namespace decisive::core;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

struct Fixture {
  SsamModel m;
  DecisiveProcess process{m, "sys"};
  ObjectId in, out;
  ObjectId sensor, mcu, logger;
  ObjectId sensor_out, mcu_in;

  Fixture() {
    in = m.add_io_node(process.system(), "in", "in");
    out = m.add_io_node(process.system(), "out", "out");
    sensor = leaf("S1");
    mcu = leaf("M1");
    logger = leaf("LOG1");
    sensor_out = m.obj(sensor).refs("ioNodes")[1];
    mcu_in = m.obj(mcu).refs("ioNodes")[0];
    m.connect(process.system(), in, m.obj(sensor).refs("ioNodes")[0]);
    m.connect(process.system(), sensor_out, mcu_in);
    m.connect(process.system(), m.obj(mcu).refs("ioNodes")[1], out);
    // Logger observes the sensor (side chain).
    m.connect(process.system(), sensor_out, m.obj(logger).refs("ioNodes")[0]);
  }

  ObjectId leaf(const std::string& name) {
    const ObjectId c = m.create_component(process.system(), name);
    m.add_io_node(c, name + ".in", "in");
    m.add_io_node(c, name + ".out", "out");
    return c;
  }
};

bool contains(const std::vector<ObjectId>& ids, ObjectId id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

}  // namespace

TEST(Impact, AncestorsIncludeContainmentChain) {
  Fixture f;
  const auto report = impact_of_change(f.m, f.sensor);
  EXPECT_TRUE(contains(report.ancestors, f.process.system()));
  EXPECT_TRUE(contains(report.ancestors, f.process.component_package()));
}

TEST(Impact, ConnectedComponentsAreSignalNeighbours) {
  Fixture f;
  const auto report = impact_of_change(f.m, f.sensor);
  EXPECT_TRUE(contains(report.connected_components, f.mcu));
  EXPECT_TRUE(contains(report.connected_components, f.logger));
  EXPECT_FALSE(contains(report.connected_components, f.sensor));  // not itself
  // The MCU's neighbours include the sensor but not the logger.
  const auto mcu_report = impact_of_change(f.m, f.mcu);
  EXPECT_TRUE(contains(mcu_report.connected_components, f.sensor));
  EXPECT_FALSE(contains(mcu_report.connected_components, f.logger));
}

TEST(Impact, RequirementsViaCitation) {
  Fixture f;
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  const auto sr = f.process.derive_safety_requirement(h1, "SR1", "text", "ASIL-B");
  f.process.allocate_requirement(sr, f.sensor);
  const auto report = impact_of_change(f.m, f.sensor);
  EXPECT_TRUE(contains(report.requirements, sr));
  EXPECT_TRUE(impact_of_change(f.m, f.mcu).requirements.empty());
}

TEST(Impact, HazardsAndMechanismsViaFailureModes) {
  Fixture f;
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  const auto fm = f.m.add_failure_mode(f.sensor, "No output", 0.6, "lossOfFunction");
  f.m.obj(fm).add_ref("hazards", h1);
  const auto sm = f.m.add_safety_mechanism(f.sensor, "redundancy", 0.95, 2.0, fm);

  const auto report = impact_of_change(f.m, f.sensor);
  EXPECT_TRUE(contains(report.hazards, h1));
  EXPECT_TRUE(contains(report.safety_mechanisms, sm));
  EXPECT_FALSE(report.reanalysis_required);  // no verdict recorded yet

  f.m.obj(fm).set_bool("safetyRelated", true);
  EXPECT_TRUE(impact_of_change(f.m, f.sensor).reanalysis_required);
}

TEST(Impact, RejectsNonComponents) {
  Fixture f;
  EXPECT_THROW(impact_of_change(f.m, f.in), ModelError);
}

TEST(Impact, TextRendering) {
  Fixture f;
  const auto report = impact_of_change(f.m, f.sensor);
  const std::string text = report.to_text(f.m);
  EXPECT_NE(text.find("S1"), std::string::npos);
  EXPECT_NE(text.find("M1"), std::string::npos);
  EXPECT_NE(text.find("no safety-related"), std::string::npos);
}

// --------------------------------------------------------------- allocation --

TEST(Allocation, RaisesComponentIntegrityLevel) {
  Fixture f;
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-C");
  const auto sr = f.process.derive_safety_requirement(h1, "SR1", "text", "ASIL-C");
  f.process.allocate_requirement(sr, f.mcu);
  EXPECT_EQ(f.m.obj(f.mcu).get_string("integrityLevel"), "ASIL-C");
  // A weaker requirement does not lower it again.
  const auto sr2 = f.process.derive_safety_requirement(h1, "SR2", "text", "ASIL-A");
  f.process.allocate_requirement(sr2, f.mcu);
  EXPECT_EQ(f.m.obj(f.mcu).get_string("integrityLevel"), "ASIL-C");
}

TEST(Allocation, TypeChecked) {
  Fixture f;
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  const auto sr = f.process.derive_safety_requirement(h1, "SR1", "text", "ASIL-B");
  EXPECT_THROW(f.process.allocate_requirement(f.mcu, f.sensor), ModelError);
  EXPECT_THROW(f.process.allocate_requirement(sr, h1), ModelError);
}

TEST(Validation, FlagsUnallocatedSafetyRequirements) {
  Fixture f;
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  const auto sr = f.process.derive_safety_requirement(h1, "SR1", "text", "ASIL-B");
  auto issues = f.process.validate_safety_concept();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("SR1"), std::string::npos);

  f.process.allocate_requirement(sr, f.mcu);
  issues = f.process.validate_safety_concept();
  for (const auto& issue : issues) {
    EXPECT_EQ(issue.find("not allocated"), std::string::npos) << issue;
  }
}

TEST(Validation, FlagsUnmitigatedHazards) {
  Fixture f;
  f.process.identify_hazard("H-orphan", "S1", 1e-5, "ASIL-A");
  const auto issues = f.process.validate_safety_concept();
  bool flagged = false;
  for (const auto& issue : issues) {
    if (issue.find("H-orphan") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(Validation, FlagsUncoveredSafetyRelatedFailureModes) {
  Fixture f;
  const auto fm = f.m.add_failure_mode(f.sensor, "No output", 0.6, "lossOfFunction");
  f.m.obj(fm).set_bool("safetyRelated", true);
  auto issues = f.process.validate_safety_concept();
  bool flagged = false;
  for (const auto& issue : issues) {
    if (issue.find("No output") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged);

  // Deploying a mechanism covering the mode clears the finding.
  f.m.add_safety_mechanism(f.sensor, "redundancy", 0.95, 2.0, fm);
  issues = f.process.validate_safety_concept();
  for (const auto& issue : issues) {
    EXPECT_EQ(issue.find("No output"), std::string::npos) << issue;
  }
}

TEST(Validation, CleanConceptHasNoIssues) {
  Fixture f;
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  const auto sr = f.process.derive_safety_requirement(h1, "SR1", "text", "ASIL-B");
  f.process.allocate_requirement(sr, f.mcu);
  EXPECT_TRUE(f.process.validate_safety_concept().empty());
}
