// Unit and property tests for the sparse direct solver subsystem: the
// Gilbert-Peierls kernel against the dense oracle, numeric refactorisation,
// partial refactorisation across structural edits, pivot gates, and — once
// the campaign wiring is in — sparse≡dense FMEDA byte-identity.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/sim/dense.hpp"
#include "decisive/sim/solver.hpp"
#include "decisive/sim/sparse.hpp"

using namespace decisive;
using namespace decisive::sim;

namespace {

/// A random sparse test system assembled the way the solver does it: a
/// coordinate stamp stream frozen into a Pattern + slot sequence, values
/// replayed through the slots (duplicates accumulate).
struct TestSystem {
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;
  std::vector<std::pair<std::pair<int, int>, double>> stamps;  // ((row,col),v)
  std::vector<double> values;                                  // CSC, parallel to pattern
  std::vector<std::vector<double>> dense;                      // nested-vector mirror

  void assemble() {
    values.assign(pattern.nnz(), 0.0);
    dense.assign(pattern.n, std::vector<double>(pattern.n, 0.0));
    for (std::size_t t = 0; t < stamps.size(); ++t) {
      values[static_cast<std::size_t>(slots[t])] += stamps[t].second;
      dense[static_cast<std::size_t>(stamps[t].first.first)]
           [static_cast<std::size_t>(stamps[t].first.second)] += stamps[t].second;
    }
  }
};

/// Diagonally loaded random sparse system (structurally symmetric pattern,
/// like MNA): guaranteed nonsingular, occasionally with duplicate stamps.
TestSystem make_system(std::mt19937& rng, std::size_t n) {
  TestSystem sys;
  std::uniform_int_distribution<int> node(0, static_cast<int>(n) - 1);
  std::uniform_real_distribution<double> mag(0.1, 2.0);
  sparse::PatternBuilder builder;
  builder.begin(n);
  auto stamp = [&](int r, int c, double v) {
    builder.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    sys.stamps.push_back({{r, c}, v});
  };
  for (int i = 0; i < static_cast<int>(n); ++i) stamp(i, i, 4.0 + mag(rng));
  const std::size_t extras = 2 * n;
  for (std::size_t e = 0; e < extras; ++e) {
    const int r = node(rng);
    const int c = node(rng);
    const double v = mag(rng) - 1.0;
    // Structurally symmetric, like a conductance stamp.
    stamp(r, c, v);
    stamp(c, r, v);
  }
  builder.freeze(sys.pattern, sys.slots);
  sys.assemble();
  return sys;
}

std::vector<double> random_rhs(std::mt19937& rng, std::size_t n) {
  std::uniform_real_distribution<double> mag(-5.0, 5.0);
  std::vector<double> b(n);
  for (double& v : b) v = mag(rng);
  return b;
}

void expect_close(const std::vector<double>& actual, const std::vector<double>& expected,
                  double tol, const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tol * (1.0 + std::abs(expected[i])))
        << context << " at index " << i;
  }
}

}  // namespace

TEST(SparsePattern, BuilderDeduplicatesAndAccumulates) {
  sparse::PatternBuilder builder;
  builder.begin(3);
  builder.add(0, 0);
  builder.add(2, 1);
  builder.add(0, 0);  // duplicate coordinate, same slot
  builder.add(1, 1);
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;
  builder.freeze(pattern, slots);
  EXPECT_EQ(pattern.n, 3u);
  EXPECT_EQ(pattern.nnz(), 3u);  // (0,0), (1,1), (2,1)
  EXPECT_EQ(slots[0], slots[2]);
  EXPECT_NE(slots[1], slots[3]);
  // Rows sorted within each column.
  EXPECT_EQ(pattern.row_ind[static_cast<std::size_t>(pattern.col_ptr[1])], 1);
  EXPECT_EQ(pattern.row_ind[static_cast<std::size_t>(pattern.col_ptr[1]) + 1], 2);
}

TEST(SparsePattern, FingerprintSeparatesStructures) {
  std::mt19937 rng(7);
  TestSystem a = make_system(rng, 12);
  TestSystem b = make_system(rng, 12);
  EXPECT_EQ(a.pattern.fingerprint(), a.pattern.fingerprint());
  // Two independently drawn patterns of the same size should differ (the
  // extra stamps land on different coordinates with overwhelming odds).
  EXPECT_NE(a.pattern.fingerprint(), b.pattern.fingerprint());
}

TEST(SparseOrdering, MinDegreeIsAPermutation) {
  std::mt19937 rng(11);
  for (const std::size_t n : {1u, 2u, 5u, 23u, 64u}) {
    TestSystem sys = make_system(rng, n);
    const std::vector<std::int32_t> order = sparse::min_degree_order(sys.pattern);
    ASSERT_EQ(order.size(), n);
    std::vector<char> seen(n, 0);
    for (const std::int32_t c : order) {
      ASSERT_GE(c, 0);
      ASSERT_LT(static_cast<std::size_t>(c), n);
      EXPECT_FALSE(seen[static_cast<std::size_t>(c)]);
      seen[static_cast<std::size_t>(c)] = 1;
    }
  }
}

TEST(SparseLu, FactorMatchesDenseOracle) {
  std::mt19937 rng(42);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 60);
    TestSystem sys = make_system(rng, n);
    sparse::SparseLu<double> lu;
    std::string error;
    ASSERT_TRUE(lu.factor(sys.pattern, sys.values.data(), &error)) << error;
    const std::vector<double> b = random_rhs(rng, n);
    std::vector<double> x = b;
    lu.solve_in_place(x.data());
    const std::vector<double> oracle = dense::solve_dense(sys.dense, b, "singular");
    expect_close(x, oracle, 1e-9, "round " + std::to_string(round));
  }
}

TEST(SparseLu, ComplexFactorMatchesDenseOracle) {
  std::mt19937 rng(43);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng() % 40);
    TestSystem sys = make_system(rng, n);
    // Promote to complex with a frequency-like imaginary part on the
    // diagonal slots.
    std::vector<std::complex<double>> values(sys.values.size());
    std::vector<std::vector<std::complex<double>>> dense_c(
        n, std::vector<std::complex<double>>(n, 0.0));
    for (std::size_t i = 0; i < sys.values.size(); ++i) values[i] = sys.values[i];
    for (std::size_t c = 0; c < n; ++c) {
      for (std::int32_t p = sys.pattern.col_ptr[c]; p < sys.pattern.col_ptr[c + 1]; ++p) {
        const auto r = static_cast<std::size_t>(sys.pattern.row_ind[static_cast<std::size_t>(p)]);
        if (r == c) values[static_cast<std::size_t>(p)] += std::complex<double>(0.0, 0.5);
        dense_c[r][c] = values[static_cast<std::size_t>(p)];
      }
    }
    sparse::SparseLu<std::complex<double>> lu;
    std::string error;
    ASSERT_TRUE(lu.factor(sys.pattern, values.data(), &error)) << error;
    std::vector<std::complex<double>> b(n);
    for (auto& v : b) v = std::complex<double>(static_cast<double>(rng() % 7) - 3.0, 1.0);
    std::vector<std::complex<double>> x = b;
    lu.solve_in_place(x.data());
    const std::vector<std::complex<double>> oracle = dense::solve_dense(dense_c, b, "singular");
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LT(std::abs(x[i] - oracle[i]), 1e-8 * (1.0 + std::abs(oracle[i])))
          << "round " << round << " index " << i;
    }
  }
}

TEST(SparseLu, RefactorReplaysNewValuesOverFrozenPattern) {
  std::mt19937 rng(44);
  TestSystem sys = make_system(rng, 30);
  sparse::SparseLu<double> lu;
  std::string error;
  ASSERT_TRUE(lu.factor(sys.pattern, sys.values.data(), &error)) << error;
  const std::uint64_t factors_before = sparse::SparseMetrics::get().factors.value();

  for (int round = 0; round < 5; ++round) {
    // Perturb every stamp (same structure, new numbers) — the diode
    // relinearisation of a Newton step in miniature.
    for (auto& stamp : sys.stamps) {
      stamp.second *= (stamp.first.first == stamp.first.second) ? 1.1 : 0.9;
    }
    sys.assemble();
    ASSERT_TRUE(lu.refactor(sys.pattern, sys.values.data(), &error)) << error;
    const std::vector<double> b = random_rhs(rng, 30);
    std::vector<double> x = b;
    lu.solve_in_place(x.data());
    const std::vector<double> oracle = dense::solve_dense(sys.dense, b, "singular");
    expect_close(x, oracle, 1e-9, "refactor round " + std::to_string(round));
  }
  // Refactor must not have run any fresh factorisation.
  EXPECT_EQ(sparse::SparseMetrics::get().factors.value(), factors_before);
}

TEST(SparseLu, RefactorPivotGateTripsOnDegradedPivot) {
  // 2x2: factor with a dominant diagonal, then swap dominance so the frozen
  // pivot order is numerically untrustworthy.
  sparse::PatternBuilder builder;
  builder.begin(2);
  builder.add(0, 0);
  builder.add(1, 0);
  builder.add(0, 1);
  builder.add(1, 1);
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;
  builder.freeze(pattern, slots);

  std::vector<double> good(4);
  good[static_cast<std::size_t>(slots[0])] = 10.0;  // (0,0)
  good[static_cast<std::size_t>(slots[1])] = 1.0;   // (1,0)
  good[static_cast<std::size_t>(slots[2])] = 1.0;   // (0,1)
  good[static_cast<std::size_t>(slots[3])] = 10.0;  // (1,1)
  sparse::SparseLu<double> lu;
  std::string error;
  ASSERT_TRUE(lu.factor(pattern, good.data(), &error)) << error;

  std::vector<double> degraded(4);
  degraded[static_cast<std::size_t>(slots[0])] = 1e-9;  // frozen pivot collapses
  degraded[static_cast<std::size_t>(slots[1])] = 10.0;
  degraded[static_cast<std::size_t>(slots[2])] = 10.0;
  degraded[static_cast<std::size_t>(slots[3])] = 1e-9;
  EXPECT_FALSE(lu.refactor(pattern, degraded.data(), &error));
  EXPECT_NE(error.find("pivot gate"), std::string::npos) << error;

  // A fresh factor (repivot) handles the degraded numbers fine.
  ASSERT_TRUE(lu.factor(pattern, degraded.data(), &error)) << error;
  std::vector<double> x = {1.0, 2.0};
  lu.solve_in_place(x.data());
  std::vector<std::vector<double>> dense_m = {{1e-9, 10.0}, {10.0, 1e-9}};
  expect_close(x, dense::solve_dense(dense_m, {1.0, 2.0}, "singular"), 1e-9, "repivot");
}

TEST(SparseLu, SingularSystemReturnsFalseNotGarbage) {
  // Column 1 is exactly zero.
  sparse::PatternBuilder builder;
  builder.begin(2);
  builder.add(0, 0);
  builder.add(1, 1);
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;
  builder.freeze(pattern, slots);
  std::vector<double> values = {1.0, 0.0};
  sparse::SparseLu<double> lu;
  std::string error;
  EXPECT_FALSE(lu.factor(pattern, values.data(), &error));
  EXPECT_NE(error.find("singular"), std::string::npos) << error;
  EXPECT_FALSE(lu.factored());
}

TEST(SparseLu, TinyWellScaledSystemIsNotSingular) {
  // Satellite regression (shared floor): every entry ~1e-32 but perfectly
  // conditioned — the old absolute 1e-30 floor called this singular.
  sparse::PatternBuilder builder;
  builder.begin(2);
  builder.add(0, 0);
  builder.add(1, 1);
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;
  builder.freeze(pattern, slots);
  std::vector<double> values = {1e-32, 2e-32};
  sparse::SparseLu<double> lu;
  std::string error;
  ASSERT_TRUE(lu.factor(pattern, values.data(), &error)) << error;
  std::vector<double> x = {1e-32, 2e-32};
  lu.solve_in_place(x.data());
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(SparseLu, PartialFactorReusesCleanPrefixAcrossDeletion) {
  std::mt19937 rng(45);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng() % 40);
    TestSystem base = make_system(rng, n);
    sparse::SparseLu<double> base_lu;
    std::string error;
    ASSERT_TRUE(base_lu.factor(base.pattern, base.values.data(), &error)) << error;

    // Structural edit: delete one unknown (row + column), the shape of a
    // campaign Open/Short on a branch element.
    const std::size_t deleted = static_cast<std::size_t>(rng()) % n;
    std::vector<std::int32_t> new_of_old(n);
    for (std::size_t i = 0; i < n; ++i) {
      new_of_old[i] = i == deleted ? -1
                      : static_cast<std::int32_t>(i < deleted ? i : i - 1);
    }
    TestSystem edited;
    sparse::PatternBuilder builder;
    builder.begin(n - 1);
    for (const auto& stamp : base.stamps) {
      const std::int32_t r = new_of_old[static_cast<std::size_t>(stamp.first.first)];
      const std::int32_t c = new_of_old[static_cast<std::size_t>(stamp.first.second)];
      if (r < 0 || c < 0) continue;
      builder.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      edited.stamps.push_back({{r, c}, stamp.second});
    }
    builder.freeze(edited.pattern, edited.slots);
    edited.assemble();

    sparse::SparseLu<double> lu;
    std::size_t reused = 0;
    ASSERT_TRUE(lu.partial_factor(*base_lu.symbolic(), base.pattern, new_of_old,
                                  edited.pattern, edited.values.data(), &reused, &error))
        << error;
    EXPECT_LE(reused, n - 1);

    const std::vector<double> b = random_rhs(rng, n - 1);
    std::vector<double> x = b;
    lu.solve_in_place(x.data());
    const std::vector<double> oracle = dense::solve_dense(edited.dense, b, "singular");
    expect_close(x, oracle, 1e-8, "partial round " + std::to_string(round));
  }
}

TEST(SparseLu, PartialFactorReportsReusedColumns) {
  // A structured case where the deleted unknown is eliminated late: a
  // banded chain ordered naturally has its tail column untouched-prefix
  // friendly, so some prefix must be reused.
  const std::size_t n = 40;
  sparse::PatternBuilder builder;
  builder.begin(n);
  std::vector<std::pair<std::pair<int, int>, double>> stamps;
  auto stamp = [&](int r, int c, double v) {
    builder.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    stamps.push_back({{r, c}, v});
  };
  for (int i = 0; i < static_cast<int>(n); ++i) stamp(i, i, 4.0);
  for (int i = 0; i + 1 < static_cast<int>(n); ++i) {
    stamp(i, i + 1, -1.0);
    stamp(i + 1, i, -1.0);
  }
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;
  builder.freeze(pattern, slots);
  std::vector<double> values(pattern.nnz(), 0.0);
  for (std::size_t t = 0; t < stamps.size(); ++t) {
    values[static_cast<std::size_t>(slots[t])] += stamps[t].second;
  }
  sparse::SparseLu<double> base_lu;
  std::string error;
  ASSERT_TRUE(base_lu.factor(pattern, values.data(), &error)) << error;

  // Delete the last unknown; everything that was eliminated before any
  // column adjacent to it stays clean.
  std::vector<std::int32_t> new_of_old(n);
  for (std::size_t i = 0; i < n; ++i) {
    new_of_old[i] = i == n - 1 ? -1 : static_cast<std::int32_t>(i);
  }
  sparse::PatternBuilder edited_builder;
  edited_builder.begin(n - 1);
  std::vector<std::pair<std::pair<int, int>, double>> edited_stamps;
  for (const auto& s : stamps) {
    if (s.first.first >= static_cast<int>(n) - 1 || s.first.second >= static_cast<int>(n) - 1) {
      continue;
    }
    edited_builder.add(static_cast<std::size_t>(s.first.first),
                       static_cast<std::size_t>(s.first.second));
    edited_stamps.push_back(s);
  }
  sparse::Pattern edited_pattern;
  std::vector<std::int32_t> edited_slots;
  edited_builder.freeze(edited_pattern, edited_slots);
  std::vector<double> edited_values(edited_pattern.nnz(), 0.0);
  for (std::size_t t = 0; t < edited_stamps.size(); ++t) {
    edited_values[static_cast<std::size_t>(edited_slots[t])] += edited_stamps[t].second;
  }

  sparse::SparseLu<double> lu;
  std::size_t reused = 0;
  ASSERT_TRUE(lu.partial_factor(*base_lu.symbolic(), pattern, new_of_old, edited_pattern,
                                edited_values.data(), &reused, &error))
      << error;
  EXPECT_GT(reused, 0u) << "chain deletion should preserve a clean symbolic prefix";
  std::vector<double> x(n - 1, 1.0);
  lu.solve_in_place(x.data());
  for (const double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(SparseLu, AdoptedSymbolicRefactorsWithoutOwnFactor) {
  std::mt19937 rng(46);
  TestSystem sys = make_system(rng, 24);
  sparse::SparseLu<double> owner;
  std::string error;
  ASSERT_TRUE(owner.factor(sys.pattern, sys.values.data(), &error)) << error;

  // A second instance (another campaign worker) adopts the shared symbolic
  // and goes straight to the numeric replay.
  sparse::SparseLu<double> worker;
  worker.adopt(owner.symbolic());
  ASSERT_TRUE(worker.refactor(sys.pattern, sys.values.data(), &error)) << error;
  const std::vector<double> b = random_rhs(rng, 24);
  std::vector<double> x = b;
  worker.solve_in_place(x.data());
  expect_close(x, dense::solve_dense(sys.dense, b, "singular"), 1e-9, "adopted");
}

TEST(DensePivotFloor, TinyWellScaledSystemSolves) {
  // Satellite regression: the dense kernel shares the relative floor, so a
  // well-conditioned system of ~1e-32 entries solves instead of throwing.
  const std::vector<std::vector<double>> a = {{1e-32, 0.0}, {0.0, 1e-32}};
  const std::vector<double> x = dense::solve_dense(a, {1e-32, 2e-32}, "singular");
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(DensePivotFloor, AllZeroMatrixStillSingular) {
  const std::vector<std::vector<double>> a = {{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_THROW(dense::solve_dense(a, {1.0, 1.0}, "singular"), SimulationError);
}

// ---------------------------------------------------- solver integration --

namespace {

/// Seeded randomized supply rail big enough to cross the sparse dimension
/// threshold: a pinned rail feeding `stages` taps whose load is randomly a
/// diode, an inductor (a DC branch unknown — deleted by its Open fault, the
/// partial-refactorisation specimen), or a plain resistor.
sim::BuiltCircuit random_rail(std::uint32_t seed, int stages) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> series(50.0, 500.0);
  std::uniform_real_distribution<double> load(500.0, 5000.0);
  std::uniform_int_distribution<int> kind(0, 2);

  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int vin = c.node("vin");
  const int rail = c.node("rail");
  c.add_vsource("V1", vin, 0, 12.0);
  c.add_current_sensor("CS", vin, rail);
  built.observables.push_back("CS");
  built.components.push_back({"V1", "Source", "V1"});
  for (int s = 0; s < stages; ++s) {
    const std::string id = std::to_string(s);
    const int tap = c.node("tap" + id);
    c.add_resistor("R" + id, rail, tap, series(rng));
    built.components.push_back({"R" + id, "Resistor", "R" + id});
    switch (kind(rng)) {
      case 0:
        c.add_diode("D" + id, tap, 0);
        built.components.push_back({"D" + id, "Diode", "D" + id});
        break;
      case 1:
        c.add_inductor("L" + id, tap, 0, 1e-3);
        built.components.push_back({"L" + id, "Inductor", "L" + id});
        break;
      default:
        break;
    }
    c.add_resistor("RL" + id, tap, 0, load(rng));
    if (s % 4 == 0) {
      c.add_voltage_sensor("VS" + id, tap, 0);
      built.observables.push_back("VS" + id);
    }
  }
  return built;
}

core::ReliabilityModel rail_reliability() {
  core::ReliabilityModel reliability;
  reliability.add("Source", 5.0, {{"Open", 0.3}, {"Short", 0.2}, {"Drift", 0.5}});
  reliability.add("Resistor", 5.0, {{"Open", 0.5}, {"Short", 0.3}, {"Drift", 0.2}});
  reliability.add("Diode", 10.0, {{"Open", 0.3}, {"Short", 0.7}});
  reliability.add("Inductor", 8.0, {{"Open", 0.6}, {"Short", 0.4}});
  return reliability;
}

struct CampaignOutput {
  std::string csv;
  std::vector<std::string> warnings;
};

CampaignOutput run_campaign(const sim::BuiltCircuit& built,
                            const core::ReliabilityModel& reliability, bool sparse_on,
                            int jobs, core::CircuitFmeaOptions options = {}) {
  options.sparse = sparse_on;
  options.solver.sparse = sparse_on;
  options.jobs = jobs;
  const auto result = core::analyze_circuit(built, reliability, nullptr, options);
  return CampaignOutput{write_csv(result.to_csv()), result.warnings};
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

}  // namespace

TEST(SparseCampaign, FmedaByteIdenticalAcrossJobCountsAndSeeds) {
  // The acceptance property of the whole subsystem: a sparse-tier campaign
  // emits exactly the bytes of the dense-only campaign — same CSV, same
  // warnings — at every job count, on randomized rails whose fault lists
  // include structural Open/Short faults on branch-unknown elements.
  for (const std::uint32_t seed : {11u, 29u}) {
    const sim::BuiltCircuit built = random_rail(seed, 60);
    const core::ReliabilityModel reliability = rail_reliability();
    const CampaignOutput naive = run_campaign(built, reliability, false, 1);
    for (const int jobs : {1, 4, 8}) {
      const CampaignOutput sparse_run = run_campaign(built, reliability, true, jobs);
      EXPECT_EQ(sparse_run.csv, naive.csv)
          << "sparse FMEDA diverged at seed=" << seed << " jobs=" << jobs;
      EXPECT_EQ(sparse_run.warnings, naive.warnings)
          << "warnings diverged at seed=" << seed << " jobs=" << jobs;
    }
  }
}

TEST(SparseCampaign, SparseTierActuallySolvesRowsAndReusesSymbolic) {
  // Guard against the property above passing vacuously: on a big rail the
  // sparse tier must accept rows, adopt the shared nominal symbolic, and
  // absorb at least one structural fault via partial refactorisation. The
  // batch tier is switched off so the sparse tier gets first refusal on
  // same-structure faults (otherwise the low-rank path absorbs them all and
  // symbolic adoption never fires).
  const sim::BuiltCircuit built = random_rail(7u, 60);
  core::CircuitFmeaOptions options;
  options.batch = false;
  const std::uint64_t rows0 = counter_value("decisive_campaign_sparse_rows_total");
  const std::uint64_t reuse0 = counter_value("decisive_sparse_symbolic_reuse_total");
  const std::uint64_t partial0 = counter_value("decisive_sparse_partial_refactors_total");
  (void)run_campaign(built, rail_reliability(), true, 1, options);
  EXPECT_GT(counter_value("decisive_campaign_sparse_rows_total"), rows0)
      << "sparse tier accepted no rows: the byte-identity property is vacuous";
  EXPECT_GT(counter_value("decisive_sparse_symbolic_reuse_total"), reuse0);
  EXPECT_GT(counter_value("decisive_sparse_partial_refactors_total"), partial0)
      << "no structural fault went through partial refactorisation";
}

TEST(SparseCampaign, ForcedFallbacksStillByteIdentical) {
  // Slam every escape hatch and demand the same bytes: a zero fill budget
  // (every sparse factorisation rejected), and a dimension threshold above
  // the system (sparse never engages).
  const sim::BuiltCircuit built = random_rail(3u, 60);
  const core::ReliabilityModel reliability = rail_reliability();
  const CampaignOutput naive = run_campaign(built, reliability, false, 1);

  core::CircuitFmeaOptions fill_gate;
  fill_gate.solver.sparse_max_fill = 0.0;
  const std::uint64_t fill0 = counter_value("decisive_sparse_fallback_fill_total");
  const CampaignOutput gated = run_campaign(built, reliability, true, 4, fill_gate);
  EXPECT_EQ(gated.csv, naive.csv);
  EXPECT_EQ(gated.warnings, naive.warnings);
  EXPECT_GT(counter_value("decisive_sparse_fallback_fill_total"), fill0)
      << "fill gate never tripped: the forced-fallback path went untested";

  core::CircuitFmeaOptions high_floor;
  high_floor.solver.sparse_min_dim = 1 << 20;
  const CampaignOutput dense_only = run_campaign(built, reliability, true, 4, high_floor);
  EXPECT_EQ(dense_only.csv, naive.csv);
  EXPECT_EQ(dense_only.warnings, naive.warnings);
}

TEST(SparseCampaign, JournalsInterchangeBetweenSparseAndDenseRuns) {
  // The sparse knobs are excluded from the campaign fingerprint, so a
  // journal written dense must replay under sparse and reproduce the bytes.
  const sim::BuiltCircuit built = random_rail(5u, 60);
  const core::ReliabilityModel reliability = rail_reliability();
  const auto dir = std::filesystem::temp_directory_path() / "decisive_sparse_journal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const CampaignOutput uninterrupted = run_campaign(built, reliability, true, 1);
  core::CircuitFmeaOptions options;
  options.execution.journal_path = (dir / "campaign.journal").string();
  const CampaignOutput dense_run = run_campaign(built, reliability, false, 1, options);
  const CampaignOutput replayed = run_campaign(built, reliability, true, 1, options);
  EXPECT_EQ(dense_run.csv, uninterrupted.csv);
  EXPECT_EQ(replayed.csv, uninterrupted.csv);
  EXPECT_EQ(replayed.warnings, uninterrupted.warnings);
  std::filesystem::remove_all(dir);
}

TEST(SparseSolver, DcOperatingPointMatchesDenseToSolverPrecision) {
  // The solver-level contract is *correctness*, not bit-identity: the sparse
  // kernel pivots differently, so readings agree to solver precision only.
  // (Byte-identity is a campaign-level promise, tested above.)
  const sim::BuiltCircuit built = random_rail(13u, 60);
  SolveOptions dense_opt;
  dense_opt.sparse = false;
  SolveOptions sparse_opt;
  sparse_opt.sparse = true;
  sparse_opt.sparse_min_dim = 1;  // force the sparse path
  const OperatingPoint a = dc_operating_point(built.circuit, dense_opt);
  const OperatingPoint b = dc_operating_point(built.circuit, sparse_opt);
  ASSERT_EQ(a.readings.size(), b.readings.size());
  for (const auto& [name, value] : a.readings) {
    EXPECT_NEAR(b.reading(name), value, 1e-6 * std::max(1.0, std::abs(value)))
        << "reading " << name;
  }
}
