// Unit tests for the FMEDA result model and ISO 26262 architecture metrics
// (paper Equation 1 and the SPFM targets).
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/core/campaign.hpp"
#include "decisive/core/fmeda.hpp"

using namespace decisive;
using namespace decisive::core;

namespace {

FmedaRow row(const char* component, double fit, const char* mode, double dist, bool sr,
             double coverage = 0.0) {
  FmedaRow r;
  r.component = component;
  r.component_type = component;
  r.fit = fit;
  r.failure_mode = mode;
  r.distribution = dist;
  r.safety_related = sr;
  r.effect = sr ? EffectClass::DVF : EffectClass::None;
  if (coverage > 0.0) {
    r.safety_mechanism = "SM";
    r.sm_coverage = coverage;
  }
  return r;
}

/// The paper's Table IV rows.
FmedaResult paper_fmeda(bool with_ecc) {
  FmedaResult result;
  result.rows = {
      row("D1", 10, "Open", 0.30, true),
      row("D1", 10, "Short", 0.70, false),
      row("L1", 15, "Open", 0.30, true),
      row("L1", 15, "Short", 0.70, false),
      row("MC1", 300, "RAM Failure", 1.00, true, with_ecc ? 0.99 : 0.0),
  };
  return result;
}

}  // namespace

TEST(FmedaRow, ModeAndResidualFit) {
  const FmedaRow r = row("D1", 10, "Open", 0.30, true, 0.90);
  EXPECT_DOUBLE_EQ(r.mode_fit(), 3.0);
  EXPECT_NEAR(r.single_point_fit(), 0.3, 1e-12);
  const FmedaRow none = row("D1", 10, "Short", 0.70, false);
  EXPECT_DOUBLE_EQ(none.single_point_fit(), 0.0);  // not safety-related
}

TEST(Fmeda, PaperSpfmBeforeMechanisms) {
  const auto result = paper_fmeda(false);
  EXPECT_DOUBLE_EQ(result.total_safety_related_fit(), 325.0);
  EXPECT_DOUBLE_EQ(result.single_point_fit(), 307.5);
  EXPECT_NEAR(result.spfm(), 0.0538, 5e-4);
}

TEST(Fmeda, PaperSpfmWithEcc) {
  const auto result = paper_fmeda(true);
  EXPECT_DOUBLE_EQ(result.single_point_fit(), 10.5);
  EXPECT_NEAR(result.spfm(), 0.9677, 5e-4);
  EXPECT_EQ(achieved_asil(result.spfm()), "ASIL-B");
}

TEST(Fmeda, SafetyRelatedComponentsDeduplicated) {
  auto result = paper_fmeda(false);
  result.rows.push_back(row("D1", 10, "Drift", 0.0, true));
  EXPECT_EQ(result.safety_related_components(),
            (std::vector<std::string>{"D1", "L1", "MC1"}));
  // The denominator counts D1's FIT once even with two safety-related rows.
  EXPECT_DOUBLE_EQ(result.total_safety_related_fit(), 325.0);
}

TEST(Fmeda, DuplicateNamesWithDistinctIdentityCountSeparately) {
  // Two different components both displayed as "Regulator" (e.g. the same
  // block type at two recursion levels). Name-keyed aggregation would count
  // the FIT once; identity-keyed aggregation must not.
  FmedaResult result;
  auto r1 = row("Regulator", 100, "Open", 1.0, true);
  r1.component_id = 11;
  auto r2 = row("Regulator", 40, "Open", 1.0, true);
  r2.component_id = 22;
  result.rows = {r1, r2};

  EXPECT_DOUBLE_EQ(result.total_safety_related_fit(), 140.0);
  EXPECT_EQ(result.safety_related_components(),
            (std::vector<std::string>{"Regulator", "Regulator"}));
  EXPECT_EQ(result.rows_of("Regulator").size(), 2u);       // by display name
  EXPECT_EQ(result.rows_of(std::uint64_t{11}).size(), 1u);  // by identity
  EXPECT_DOUBLE_EQ(result.rows_of(std::uint64_t{22})[0]->fit, 40.0);

  // Two safety-related rows of the SAME identity still count the FIT once.
  auto r3 = row("Regulator", 100, "Short", 0.5, true);
  r3.component_id = 11;
  result.rows.push_back(r3);
  EXPECT_DOUBLE_EQ(result.total_safety_related_fit(), 140.0);
}

TEST(Fmeda, EmptyOrNonSafetyResultHasSpfmOne) {
  // Documented convention: an empty denominator reports SPFM = 1.0, and
  // asil_label() surfaces the degenerate case instead of claiming ASIL-D.
  FmedaResult empty;
  EXPECT_DOUBLE_EQ(empty.spfm(), 1.0);
  EXPECT_FALSE(empty.has_safety_related());
  EXPECT_EQ(empty.asil_label(), "no safety-related hardware");
  FmedaResult benign;
  benign.rows = {row("C1", 2, "Open", 0.3, false)};
  EXPECT_DOUBLE_EQ(benign.spfm(), 1.0);
  EXPECT_EQ(benign.asil_label(), "no safety-related hardware");
}

TEST(Fmeda, AsilLabelMatchesAchievedAsilWhenSafetyRelated) {
  const auto result = paper_fmeda(true);
  ASSERT_TRUE(result.has_safety_related());
  EXPECT_EQ(result.asil_label(), achieved_asil(result.spfm()));
  EXPECT_EQ(result.asil_label(), "ASIL-B");
}

TEST(Fmeda, RowsOfFiltersByComponent) {
  const auto result = paper_fmeda(false);
  EXPECT_EQ(result.rows_of("D1").size(), 2u);
  EXPECT_EQ(result.rows_of("MC1").size(), 1u);
  EXPECT_TRUE(result.rows_of("nope").empty());
}

TEST(Fmeda, CsvExportIsMachineReadable) {
  const auto table = paper_fmeda(true).to_csv();
  EXPECT_EQ(table.rows.size(), 5u);
  EXPECT_GE(table.column("Single_Point_FIT"), 0);
  EXPECT_EQ(table.at(4, "Safety_Mechanism"), "SM");
  EXPECT_EQ(table.at(4, "Single_Point_FIT"), "3");
  EXPECT_EQ(table.at(0, "FIT"), "10");  // repeated on every row
}

TEST(Fmeda, TextExportMatchesPaperLayout) {
  const std::string text = paper_fmeda(true).to_text().render();
  EXPECT_NE(text.find("Single_Point_Failure_Rate"), std::string::npos);
  EXPECT_NE(text.find("3 FIT"), std::string::npos);
  EXPECT_NE(text.find("4.5 FIT"), std::string::npos);
}

// ------------------------------------------------------------ ASIL targets --

TEST(Asil, TargetsPerLevel) {
  EXPECT_DOUBLE_EQ(spfm_target("ASIL-B"), 0.90);
  EXPECT_DOUBLE_EQ(spfm_target("ASIL-C"), 0.97);
  EXPECT_DOUBLE_EQ(spfm_target("ASIL-D"), 0.99);
  EXPECT_DOUBLE_EQ(spfm_target("ASIL-A"), 0.0);
  EXPECT_DOUBLE_EQ(spfm_target("QM"), 0.0);
  EXPECT_DOUBLE_EQ(spfm_target("b"), 0.90);       // case-insensitive
  EXPECT_DOUBLE_EQ(spfm_target("ASIL D"), 0.99);  // space form
  EXPECT_THROW(spfm_target("ASIL-E"), AnalysisError);
}

TEST(Asil, MeetsAndAchieved) {
  EXPECT_TRUE(meets_asil(0.95, "ASIL-B"));
  EXPECT_FALSE(meets_asil(0.95, "ASIL-C"));
  EXPECT_EQ(achieved_asil(0.995), "ASIL-D");
  EXPECT_EQ(achieved_asil(0.98), "ASIL-C");
  EXPECT_EQ(achieved_asil(0.9), "ASIL-B");
  EXPECT_EQ(achieved_asil(0.3), "ASIL-A");
}

TEST(EffectClass, Names) {
  EXPECT_EQ(to_string(EffectClass::DVF), "DVF");
  EXPECT_EQ(to_string(EffectClass::IVF), "IVF");
  EXPECT_EQ(to_string(EffectClass::None), "");
}

// ---------------------------------------------------------------- outcomes --

namespace {

FmedaRow outcome_row(FaultOutcome outcome, int retries = 0) {
  FmedaRow r = row("MC1", 300, "RAM Failure", 1.0, true);
  r.outcome = outcome;
  r.outcome_detail = "detail";
  r.retries = retries;
  return r;
}

}  // namespace

/// The display warning is *derived* from the structured outcome (single
/// source of truth), so for every variant the warning text, the CSV's
/// Fault_Outcome column and the structured row must agree — and the
/// conservative "marked safety-related" phrasing must appear exactly on the
/// outcomes that force the conservative classification.
TEST(FaultOutcomes, WarningAndCsvAgreeOnEveryVariant) {
  for (size_t i = 0; i < kFaultOutcomeCount; ++i) {
    const auto outcome = static_cast<FaultOutcome>(i);
    const FmedaRow r = outcome_row(outcome);
    const std::string warning = outcome_warning(r);

    FmedaResult result;
    result.rows = {r};
    const CsvTable table = result.to_csv();
    EXPECT_EQ(table.at(0, "Fault_Outcome"), std::string(to_string(outcome)));

    switch (outcome) {
      case FaultOutcome::Converged:
        EXPECT_TRUE(warning.empty());
        break;
      case FaultOutcome::RecoveredViaLadder:
        EXPECT_NE(warning.find("recovery ladder"), std::string::npos);
        EXPECT_EQ(warning.find("conservatively marked"), std::string::npos);
        break;
      case FaultOutcome::BudgetExhausted:
        EXPECT_NE(warning.find("exhausted the solve budget"), std::string::npos);
        EXPECT_NE(warning.find("conservatively marked safety-related"), std::string::npos);
        break;
      case FaultOutcome::Singular:
        EXPECT_NE(warning.find("singular system"), std::string::npos);
        EXPECT_NE(warning.find("conservatively marked safety-related"), std::string::npos);
        break;
      case FaultOutcome::NotApplicable:
        EXPECT_NE(warning.find("failure mode 'RAM Failure'"), std::string::npos);
        break;
      case FaultOutcome::Crashed:
        EXPECT_NE(warning.find("crashed its campaign worker"), std::string::npos);
        EXPECT_NE(warning.find("conservatively marked safety-related"), std::string::npos);
        break;
    }
    // Every non-Converged outcome carries its structured detail into the
    // warning; the warning never invents information the row lacks.
    if (outcome != FaultOutcome::Converged) {
      EXPECT_NE(warning.find(r.outcome_detail.empty() ? "" : "detail"),
                std::string::npos);
    }
  }
}

TEST(FaultOutcomes, RetriedRowsAnnotateTheWarning) {
  // A retried-but-converged row still warns (the retry is an anomaly worth
  // surfacing), and a retried failure appends the count to its warning.
  const std::string converged = outcome_warning(outcome_row(FaultOutcome::Converged, 1));
  EXPECT_NE(converged.find("took 1 containment retry"), std::string::npos);
  const std::string crashed = outcome_warning(outcome_row(FaultOutcome::Crashed, 2));
  EXPECT_NE(crashed.find("crashed its campaign worker"), std::string::npos);
  EXPECT_NE(crashed.find("took 2 containment retries"), std::string::npos);
}

TEST(FaultOutcomes, NamesAndSummaryCoverEveryVariant) {
  EXPECT_EQ(to_string(FaultOutcome::Crashed), "Crashed");
  FmedaResult result;
  result.rows = {outcome_row(FaultOutcome::Converged), outcome_row(FaultOutcome::Crashed)};
  const std::string summary = result.outcome_summary();
  EXPECT_NE(summary.find("1 converged"), std::string::npos);
  EXPECT_NE(summary.find("1 crashed"), std::string::npos);
  const auto counts = result.outcome_counts();
  EXPECT_EQ(counts[static_cast<size_t>(FaultOutcome::Crashed)], 1u);
}

// -------------------------------------------------------------- properties --

/// Property: SPFM is always in [0, 1] and monotonically non-decreasing in
/// any row's diagnostic coverage.
class SpfmProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpfmProperty, BoundsAndCoverageMonotonicity) {
  // Build a pseudo-random FMEDA from the seed.
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  FmedaResult result;
  const int components = 2 + static_cast<int>(rng.below(6));
  for (int c = 0; c < components; ++c) {
    const double fit = 1.0 + rng.uniform() * 500.0;
    const int modes = 1 + static_cast<int>(rng.below(3));
    double remaining = 1.0;
    for (int m = 0; m < modes; ++m) {
      const double dist = m == modes - 1 ? remaining : remaining * rng.uniform();
      remaining -= dist;
      result.rows.push_back(row(("c" + std::to_string(c)).c_str(), fit,
                                ("m" + std::to_string(m)).c_str(), dist, rng.chance(0.6),
                                rng.chance(0.5) ? rng.uniform() : 0.0));
    }
  }

  const double base = result.spfm();
  EXPECT_GE(base, 0.0);
  EXPECT_LE(base, 1.0);

  // Raising coverage on any safety-related row must not lower the SPFM.
  for (size_t i = 0; i < result.rows.size(); ++i) {
    if (!result.rows[i].safety_related) continue;
    FmedaResult improved = result;
    improved.rows[i].sm_coverage = std::min(1.0, improved.rows[i].sm_coverage + 0.2);
    EXPECT_GE(improved.spfm() + 1e-12, base);
  }

  // Perfect coverage everywhere yields SPFM == 1.
  FmedaResult perfect = result;
  for (auto& r : perfect.rows) {
    r.sm_coverage = 1.0;
  }
  EXPECT_NEAR(perfect.spfm(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfmProperty, ::testing::Range(1, 26));
