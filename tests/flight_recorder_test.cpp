// Flight-recorder tests: progress heartbeats, status folding, the
// cross-shard snapshot/trace merge algebra, and the bench-diff sentinel.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/obs/bench_diff.hpp"
#include "decisive/obs/progress.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/snapshot.hpp"
#include "decisive/obs/trace.hpp"

using namespace decisive;

namespace {

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("decisive-flight-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

// ---------------------------------------------------------------------------
// ProgressReporter + heartbeat documents
// ---------------------------------------------------------------------------

TEST(FlightRecorder, ReporterPublishesParseableHeartbeats) {
  TempDir tmp;
  const auto path = (tmp.path / "shard.heartbeat.json").string();

  obs::ProgressReporterOptions options;
  options.path = path;
  options.phase = "campaign";
  options.total = 4;
  options.workers = 2;
  options.interval_seconds = 0;  // publish on every tick
  obs::ProgressReporter reporter(options);

  // The constructor publishes an initial "0 done, running" beat so an
  // observer sees the shard as alive before the first task completes.
  obs::Heartbeat beat = obs::parse_heartbeat(slurp(path));
  EXPECT_EQ(beat.schema_version, 1);
  EXPECT_EQ(beat.phase, "campaign");
  EXPECT_EQ(beat.state, "running");
  EXPECT_EQ(beat.total, 4u);
  EXPECT_EQ(beat.done, 0u);
  ASSERT_EQ(beat.workers.size(), 2u);

  reporter.task_done(0, "Converged");
  reporter.task_done(1, "Converged");
  reporter.task_done(0, "Singular");
  beat = obs::parse_heartbeat(slurp(path));
  EXPECT_EQ(beat.state, "running");
  EXPECT_EQ(beat.done, 3u);
  EXPECT_EQ(beat.outcomes.at("Converged"), 2u);
  EXPECT_EQ(beat.outcomes.at("Singular"), 1u);
  EXPECT_EQ(beat.workers[0].done, 2u);
  EXPECT_EQ(beat.workers[1].done, 1u);
  EXPECT_GE(beat.updated_unix_ms, beat.started_unix_ms);
  EXPECT_GT(beat.pid, 0);

  reporter.task_done(1, "Converged");
  reporter.finish();
  beat = obs::parse_heartbeat(slurp(path));
  EXPECT_EQ(beat.state, "done");
  EXPECT_EQ(beat.done, 4u);
  EXPECT_EQ(beat.outcomes.at("Converged"), 3u);
}

TEST(FlightRecorder, ReporterClampsOutOfRangeWorkerIds) {
  obs::ProgressReporterOptions options;
  options.total = 2;
  options.workers = 1;
  obs::ProgressReporter reporter(options);  // empty path: in-memory only
  reporter.task_done(7, "Converged");
  reporter.task_done(-3, "Converged");
  const obs::Heartbeat beat = obs::parse_heartbeat(reporter.render());
  ASSERT_EQ(beat.workers.size(), 1u);
  EXPECT_EQ(beat.workers[0].done, 2u);
  EXPECT_EQ(beat.done, 2u);
}

TEST(FlightRecorder, ParseHeartbeatRejectsForeignDocuments) {
  EXPECT_THROW(obs::parse_heartbeat("not json"), ParseError);
  EXPECT_THROW(obs::parse_heartbeat("{\"kind\":\"metrics-snapshot\"}"), ParseError);
  EXPECT_THROW(obs::parse_heartbeat(
                   "{\"schema_version\":99,\"kind\":\"heartbeat\",\"state\":\"running\"}"),
               ParseError);
}

TEST(FlightRecorder, FoldStatusFlagsStaleRunningShardsDead) {
  const std::uint64_t now = 1'000'000;
  auto beat = [&](int index, const std::string& state, std::uint64_t age_ms,
                  std::uint64_t total, std::uint64_t done) {
    obs::Heartbeat b;
    b.schema_version = 1;
    b.phase = "campaign";
    b.shard = {index, 3};
    b.state = state;
    b.total = total;
    b.done = done;
    b.outcomes["Converged"] = done;
    b.updated_unix_ms = now - age_ms;
    b.throughput_per_second = 2.0;
    return b;
  };

  const std::vector<std::pair<std::string, obs::Heartbeat>> beats = {
      {"s0.heartbeat.json", beat(0, "running", 1'000, 10, 4)},
      {"s1.heartbeat.json", beat(1, "running", 60'000, 10, 2)},  // stale -> dead
      {"s2.heartbeat.json", beat(2, "done", 120'000, 10, 10)},   // old but finished
  };
  const obs::StatusView view = obs::fold_status(beats, now, /*stale_seconds=*/30);

  EXPECT_EQ(view.running_shards, 1);
  EXPECT_EQ(view.dead_shards, 1);
  EXPECT_EQ(view.done_shards, 1);
  ASSERT_EQ(view.shards.size(), 3u);
  EXPECT_FALSE(view.shards[0].dead);
  EXPECT_TRUE(view.shards[1].dead);
  EXPECT_FALSE(view.shards[2].dead);  // "done" never goes dead, however old
  EXPECT_EQ(view.total, 30u);
  EXPECT_EQ(view.done, 16u);
  EXPECT_EQ(view.outcomes.at("Converged"), 16u);
  // Throughput only counts live running shards (a dead shard contributes 0).
  EXPECT_DOUBLE_EQ(view.throughput_per_second, 2.0);

  const std::string rendered = view.render();
  EXPECT_NE(rendered.find("DEAD"), std::string::npos);
  EXPECT_NE(rendered.find("16/30"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry snapshot merge algebra
// ---------------------------------------------------------------------------

TEST(FlightRecorder, SnapshotRoundTripCarriesShardStamp) {
  obs::Registry registry;
  registry.counter("tasks_total").add(7);
  const std::string snapshot = obs::registry_snapshot_json(registry);
  obs::ShardIdentity shard{-1, -1};
  const json::Value metrics = obs::parse_registry_snapshot(snapshot, &shard);
  EXPECT_EQ(shard.index, 0);
  EXPECT_EQ(shard.count, 1);
  EXPECT_DOUBLE_EQ(metrics.as_object().at("counters").as_object().at("tasks_total").as_number(),
                   7.0);
  EXPECT_THROW(obs::parse_registry_snapshot("{\"kind\":\"heartbeat\"}"), ParseError);
}

// The property the sharded campaign relies on: merging K per-shard snapshots
// of a partitioned workload reproduces the unsharded snapshot exactly for
// counters and histogram buckets.
TEST(FlightRecorder, MergingShardSnapshotsEqualsTheUnshardedSnapshot) {
  constexpr int kShards = 3;
  // Deterministic workload: task t adds t%3+1 to a counter and observes a
  // latency of (t * 0.25) seconds; shard k processes tasks t%kShards == k.
  constexpr int kTasks = 60;
  const std::vector<double> bounds = {1.0, 4.0, 8.0};

  obs::Registry whole;
  std::vector<obs::Registry> shards(kShards);
  for (int t = 0; t < kTasks; ++t) {
    obs::Registry& shard = shards[t % kShards];
    const auto weight = static_cast<std::uint64_t>(t % 3 + 1);
    const double latency = t * 0.25;
    whole.counter("tasks_total").add(1);
    whole.counter("work_units_total").add(weight);
    whole.histogram("latency_seconds", bounds).observe(latency);
    shard.counter("tasks_total").add(1);
    shard.counter("work_units_total").add(weight);
    shard.histogram("latency_seconds", bounds).observe(latency);
  }
  // Gauges: last write wins by timestamp; shard 2's write happens last, so
  // the merged gauge must carry its value.
  for (int k = 0; k < kShards; ++k) shards[k].gauge("fit_budget").set(10.0 * (k + 1));
  whole.gauge("fit_budget").set(30.0);

  std::vector<std::string> texts;
  texts.reserve(kShards);
  for (const obs::Registry& shard : shards) {
    texts.push_back(obs::registry_snapshot_json(shard));
  }
  const std::string merged_text = obs::merge_registry_snapshots(texts);

  obs::ShardIdentity merged_shard{-1, -1};
  const json::Value merged_doc = obs::parse_registry_snapshot(merged_text, &merged_shard);
  const json::Value union_doc =
      obs::parse_registry_snapshot(obs::registry_snapshot_json(whole));
  const json::Object& merged = merged_doc.as_object();
  const json::Object& union_metrics = union_doc.as_object();
  // The merged document is stamped as an unsharded (0/1) snapshot.
  EXPECT_EQ(merged_shard.index, 0);
  EXPECT_EQ(merged_shard.count, 1);

  // Counters and histograms (count, sum, percentiles, buckets) must match
  // the unsharded run exactly — same JSON rendering, byte for byte.
  EXPECT_EQ(json::write(merged.at("counters")), json::write(union_metrics.at("counters")));
  EXPECT_EQ(json::write(merged.at("histograms")), json::write(union_metrics.at("histograms")));

  // Gauges match by value (timestamps are wall-clock, so compare the payload
  // that matters): last writer was shard 2.
  const json::Object& gauge =
      merged.at("gauges").as_object().at("fit_budget").as_object();
  EXPECT_DOUBLE_EQ(gauge.at("value").as_number(), 30.0);
}

TEST(FlightRecorder, MergeRejectsMismatchedHistogramBucketLayouts) {
  obs::Registry a;
  obs::Registry b;
  a.histogram("latency_seconds", {1.0, 2.0}).observe(0.5);
  b.histogram("latency_seconds", {1.0, 3.0}).observe(0.5);
  const std::vector<std::string> texts = {obs::registry_snapshot_json(a),
                                          obs::registry_snapshot_json(b)};
  try {
    (void)obs::merge_registry_snapshots(texts);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& error) {
    EXPECT_NE(std::string(error.what()).find("bucket layout"), std::string::npos)
        << error.what();
  }
}

// ---------------------------------------------------------------------------
// Trace merging
// ---------------------------------------------------------------------------

namespace {

std::string shard_trace(int index, int count, double ts0) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "{\"traceEvents\":[\n"
                "{\"name\":\"solve\",\"cat\":\"decisive\",\"ph\":\"B\",\"ts\":%.1f,"
                "\"pid\":%d,\"tid\":1},\n"
                "{\"name\":\"solve\",\"cat\":\"decisive\",\"ph\":\"E\",\"ts\":%.1f,"
                "\"pid\":%d,\"tid\":1}\n"
                "],\"displayTimeUnit\":\"ms\",\"shard\":{\"index\":%d,\"count\":%d}}\n",
                ts0, index + 1, ts0 + 5.0, index + 1, index, count);
  return buffer;
}

}  // namespace

TEST(FlightRecorder, MergedTracesValidateEvenWhenShardsReuseThreadIds) {
  // Both shards use tid 1; without pid separation their B/E events would
  // interleave into an unbalanced lane.
  const std::vector<std::string> texts = {shard_trace(0, 2, 0.0), shard_trace(1, 2, 2.0)};
  const std::string merged = obs::merge_chrome_traces(texts);
  EXPECT_EQ(obs::validate_chrome_trace(merged), "");

  std::set<double> pids;
  const json::Value merged_doc = json::parse(merged);
  for (const json::Value& event : merged_doc.as_object().at("traceEvents").as_array()) {
    pids.insert(event.as_object().at("pid").as_number());
  }
  EXPECT_EQ(pids.size(), 2u);  // every shard got its own process lane
}

// ---------------------------------------------------------------------------
// Bench snapshot diffing (the perf-regression sentinel's engine)
// ---------------------------------------------------------------------------

namespace {

std::string bench_snapshot_text(const std::string& bench, std::uint64_t tasks,
                                std::uint64_t fallbacks) {
  obs::Registry registry;
  registry.counter("campaign_tasks_total").add(tasks);
  registry.counter("batch_fallback_total").add(fallbacks);
  return "{\"schema_version\":1,\"kind\":\"bench-snapshot\",\"bench\":\"" + bench +
         "\",\"metrics\":" + registry.to_json() + "}";
}

}  // namespace

TEST(FlightRecorder, ParseBenchSnapshotValidatesKindAndVersion) {
  const obs::BenchSnapshot snap = obs::parse_bench_snapshot(bench_snapshot_text("campaign", 5, 1));
  EXPECT_EQ(snap.schema_version, 1);
  EXPECT_EQ(snap.bench, "campaign");
  EXPECT_THROW(obs::parse_bench_snapshot("{\"kind\":\"heartbeat\"}"), ParseError);
  EXPECT_THROW(obs::parse_bench_snapshot("garbage"), ParseError);
}

TEST(FlightRecorder, RatioChecksAreIterationInvariant) {
  // Fresh ran 10x the iterations but with the identical fallback rate: the
  // ratio check must not flag it, even though the raw counter grew 10x.
  const obs::BenchSnapshot baseline =
      obs::parse_bench_snapshot(bench_snapshot_text("campaign", 100, 10));
  const obs::BenchSnapshot fresh =
      obs::parse_bench_snapshot(bench_snapshot_text("campaign", 1000, 100));
  obs::BenchDiffOptions options;
  options.checks = {{"batch_fallback_total", "campaign_tasks_total", 0.25}};
  const obs::BenchDiffReport report = obs::diff_bench_snapshots(fresh, baseline, options);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.regression()) << report.render();
  EXPECT_DOUBLE_EQ(report.rows[0].delta, 0.0);
}

TEST(FlightRecorder, RatioChecksFlagARealRateRegression) {
  const obs::BenchSnapshot baseline =
      obs::parse_bench_snapshot(bench_snapshot_text("campaign", 100, 10));
  // 25% fallback rate against a 10% baseline: well past a 25% tolerance.
  const obs::BenchSnapshot fresh =
      obs::parse_bench_snapshot(bench_snapshot_text("campaign", 1000, 250));
  obs::BenchDiffOptions options;
  options.checks = {{"batch_fallback_total", "campaign_tasks_total", 0.25}};
  const obs::BenchDiffReport report = obs::diff_bench_snapshots(fresh, baseline, options);
  EXPECT_TRUE(report.regression()) << report.render();
  EXPECT_NE(report.render().find("FAIL"), std::string::npos);
  EXPECT_NE(report.render().find("regression"), std::string::npos);
}

TEST(FlightRecorder, DiffRejectsMismatchedBenchesAndMissingMetrics) {
  const obs::BenchSnapshot campaign =
      obs::parse_bench_snapshot(bench_snapshot_text("campaign", 100, 10));
  const obs::BenchSnapshot other =
      obs::parse_bench_snapshot(bench_snapshot_text("graph_fmea", 100, 10));
  EXPECT_THROW(obs::diff_bench_snapshots(campaign, other, {}), AnalysisError);

  obs::BenchDiffOptions options;
  options.checks = {{"no_such_metric", "", 0.1}};
  EXPECT_THROW(obs::diff_bench_snapshots(campaign, campaign, options), AnalysisError);
}

TEST(FlightRecorder, ParseBenchChecksSelectsTheBenchAndDefaultTolerance) {
  const std::string text =
      "{\"schema_version\":1,\"kind\":\"bench-checks\",\"default_tolerance\":0.4,"
      "\"checks\":{\"campaign\":["
      "{\"metric\":\"batch_fallback_total\",\"per\":\"campaign_tasks_total\"},"
      "{\"metric\":\"solver_iterations_total\",\"per\":\"solves_total\","
      "\"tolerance\":0.1}]}}";
  double tolerance = 0.25;
  const std::vector<obs::BenchCheck> checks =
      obs::parse_bench_checks(text, "campaign", &tolerance);
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_DOUBLE_EQ(tolerance, 0.4);
  EXPECT_EQ(checks[0].metric, "batch_fallback_total");
  EXPECT_EQ(checks[0].per, "campaign_tasks_total");
  EXPECT_LT(checks[0].tolerance, 0.0);  // falls back to the default
  EXPECT_DOUBLE_EQ(checks[1].tolerance, 0.1);

  EXPECT_TRUE(obs::parse_bench_checks(text, "unknown_bench", &tolerance).empty());
  EXPECT_THROW(obs::parse_bench_checks("{\"kind\":\"bench-diff\"}", "campaign", &tolerance),
               ParseError);
}
