// Crash-safe resumable campaigns (ROADMAP item 5): the checkpoint journal,
// kill-and-resume byte-identity, journal poisoning (torn tails, bit flips,
// foreign fingerprints), deterministic sharding + merge, and failure
// containment (Crashed classification, bounded retries, the circuit
// breaker). The invariant under test everywhere: the journal and the
// containment machinery may delay a campaign, but the FMEDA artefact is
// byte-identical to an uninterrupted, unsharded, serial run — or the
// corruption is detected and the affected tasks re-run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/core/campaign.hpp"
#include "decisive/core/campaign_journal.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

/// Unique scratch directory per test, removed on destruction.
struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("decisive_journal_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }

  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// RAII environment hook: set on construction, cleared on destruction, so a
/// failing test cannot leak a crash hook into its neighbours.
struct EnvHook {
  std::string name;
  EnvHook(std::string variable, const std::string& value) : name(std::move(variable)) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ~EnvHook() { ::unsetenv(name.c_str()); }
};

/// The paper's power-supply case study: 9 fault tasks, 3 skipped components.
struct PowerRig {
  sim::BuiltCircuit built;
  core::ReliabilityModel reliability;

  PowerRig()
      : built(sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"))),
        reliability(core::ReliabilityModel::from_source(
            *drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook"),
            "Reliability")) {}

  [[nodiscard]] core::FmedaResult run(const core::CircuitFmeaOptions& options) const {
    return core::analyze_circuit(built, reliability, nullptr, options);
  }
  [[nodiscard]] core::CampaignRunner runner(core::CircuitFmeaOptions options) const {
    return core::CampaignRunner(built, reliability, nullptr, std::move(options));
  }
};

/// Single-task rig from robustness_test: V1 "Drift" is the one fault.
sim::BuiltCircuit drifting_source_rig() {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int p = c.node("p");
  const int k = c.node("k");
  c.add_vsource("V1", p, 0, 1.2);
  c.add_resistor("R1", p, k, 1000.0);
  c.add_diode("D1", 0, k);
  c.add_voltage_sensor("VS1", k, 0);
  built.observables.push_back("VS1");
  built.components.push_back({"V1", "Source", "V1"});
  return built;
}

core::ReliabilityModel drifting_reliability() {
  core::ReliabilityModel reliability;
  reliability.add("Source", 5.0, {{"Drift", 1.0}});
  return reliability;
}

std::string fmeda_bytes(const core::FmedaResult& result) {
  return write_csv(result.to_csv());
}

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path, const std::vector<std::string>& lines,
                 const std::string& unterminated_tail = "") {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (const auto& line : lines) out << line << '\n';
  out << unterminated_tail;
}

}  // namespace

TEST(CampaignJournalFormat, RowTokensRoundTripEveryField) {
  core::FmedaRow row;
  row.component = "Sub System/MC 1";  // spaces must survive the framing
  row.component_type = "MC";
  row.component_id = 42;
  row.component_path = "top/Sub System/MC 1";
  row.fit = 12.625;
  row.failure_mode = "RAM Failure";
  row.distribution = 0.3;  // not exactly representable: needs the %a round-trip
  row.safety_related = true;
  row.effect = core::EffectClass::DVF;
  row.safety_mechanism = "ECC % monitor";
  row.sm_coverage = 0.99;
  row.sm_cost_hours = 17.5;
  row.outcome = core::FaultOutcome::Crashed;
  row.outcome_detail = "injected task crash (DECISIVE_CAMPAIGN_TASK_THROW)";
  row.solver_iterations = 137;
  row.ladder_rung = 2;
  row.retries = 1;

  const std::vector<std::string> tokens = split(core::journal_row_tokens(row), ' ');
  const core::FmedaRow back = core::journal_row_from_tokens(tokens, 0);
  EXPECT_EQ(back.component, row.component);
  EXPECT_EQ(back.component_type, row.component_type);
  EXPECT_EQ(back.component_id, row.component_id);
  EXPECT_EQ(back.component_path, row.component_path);
  EXPECT_EQ(back.fit, row.fit);
  EXPECT_EQ(back.failure_mode, row.failure_mode);
  EXPECT_EQ(back.distribution, row.distribution);
  EXPECT_EQ(back.safety_related, row.safety_related);
  EXPECT_EQ(back.effect, row.effect);
  EXPECT_EQ(back.safety_mechanism, row.safety_mechanism);
  EXPECT_EQ(back.sm_coverage, row.sm_coverage);
  EXPECT_EQ(back.sm_cost_hours, row.sm_cost_hours);
  EXPECT_EQ(back.outcome, row.outcome);
  EXPECT_EQ(back.outcome_detail, row.outcome_detail);
  EXPECT_EQ(back.solver_iterations, row.solver_iterations);
  EXPECT_EQ(back.ladder_rung, row.ladder_rung);
  EXPECT_EQ(back.retries, row.retries);

  EXPECT_THROW((void)core::journal_row_from_tokens({"x"}, 0), ParseError);
}

TEST(CampaignJournal, JournaledRunAndFullReplayMatchPlainRunBytes) {
  const TempDir dir("plain");
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const auto plain = rig.run(options);
  ASSERT_FALSE(plain.rows.empty());

  options.execution.journal_path = dir.file("campaign.journal");
  const auto journaled = rig.run(options);
  EXPECT_EQ(fmeda_bytes(plain), fmeda_bytes(journaled));
  EXPECT_EQ(plain.warnings, journaled.warnings);

  // Second run resumes from a complete journal: every task replays, the
  // artefact stays byte-identical.
  const auto replayed = rig.run(options);
  EXPECT_EQ(fmeda_bytes(plain), fmeda_bytes(replayed));
  EXPECT_EQ(plain.warnings, replayed.warnings);

  const auto replay = core::replay_campaign_journal(
      options.execution.journal_path, nullptr);
  EXPECT_TRUE(replay.compatible);
  EXPECT_EQ(replay.rows.size(), plain.rows.size());
  EXPECT_EQ(replay.dropped_lines, 0u);
}

TEST(CampaignJournal, PartialJournalResumesByteIdenticalAtAnyJobCount) {
  const TempDir dir("resume");
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const auto plain = rig.run(options);

  // Build the "crashed mid-campaign" specimen: the full journal minus its
  // last 5 row records — exactly what a SIGKILL after 4 appends leaves.
  options.execution.journal_path = dir.file("full.journal");
  (void)rig.run(options);
  std::vector<std::string> lines = file_lines(options.execution.journal_path);
  ASSERT_GT(lines.size(), 5u);
  lines.resize(lines.size() - 5);

  for (const int jobs : {1, 3, 8}) {
    const std::string partial = dir.file("partial" + std::to_string(jobs) + ".journal");
    write_lines(partial, lines);
    core::CircuitFmeaOptions resumed_options = options;
    resumed_options.execution.journal_path = partial;
    resumed_options.jobs = jobs;
    const auto resumed = rig.run(resumed_options);
    EXPECT_EQ(fmeda_bytes(plain), fmeda_bytes(resumed)) << "jobs=" << jobs;
    EXPECT_EQ(plain.warnings, resumed.warnings) << "jobs=" << jobs;
    // The journal is complete again after the resume.
    const auto replay = core::replay_campaign_journal(partial, nullptr);
    EXPECT_EQ(replay.rows.size(), plain.rows.size()) << "jobs=" << jobs;
  }
}

TEST(CampaignJournal, TornTailIsTrimmedNotTrusted) {
  const TempDir dir("torn");
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const auto plain = rig.run(options);

  options.execution.journal_path = dir.file("torn.journal");
  (void)rig.run(options);
  // A crash mid-append tears the final line: no terminator, no checksum.
  std::vector<std::string> lines = file_lines(options.execution.journal_path);
  const std::string torn_half = lines.back().substr(0, lines.back().size() / 2);
  lines.pop_back();
  write_lines(options.execution.journal_path, lines, torn_half);

  const auto replay =
      core::replay_campaign_journal(options.execution.journal_path, nullptr);
  ASSERT_TRUE(replay.compatible);
  EXPECT_EQ(replay.rows.size(), plain.rows.size() - 1);
  EXPECT_EQ(replay.dropped_lines, 1u);
  EXPECT_NE(replay.note.find("torn tail"), std::string::npos);

  // Resuming re-runs only the torn task and restores byte-identity.
  const auto resumed = rig.run(options);
  EXPECT_EQ(fmeda_bytes(plain), fmeda_bytes(resumed));
  EXPECT_EQ(plain.warnings, resumed.warnings);
}

TEST(CampaignJournal, InteriorBitFlipDropsTheTailNeverWrongRows) {
  const TempDir dir("bitflip");
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const auto plain = rig.run(options);

  options.execution.journal_path = dir.file("flip.journal");
  (void)rig.run(options);
  std::vector<std::string> lines = file_lines(options.execution.journal_path);
  // Count the preamble so we can flip a bit inside the third row record.
  size_t first_row = 0;
  while (first_row < lines.size() && !starts_with(lines[first_row], "row ")) ++first_row;
  const size_t victim = first_row + 2;
  ASSERT_LT(victim, lines.size());
  lines[victim][lines[victim].size() / 2] ^= 0x01;
  write_lines(options.execution.journal_path, lines);

  const auto replay =
      core::replay_campaign_journal(options.execution.journal_path, nullptr);
  ASSERT_TRUE(replay.compatible);
  // Only the records *before* the flip survive; everything after is dropped
  // (a record after a corrupt one cannot be trusted), never mis-parsed.
  EXPECT_EQ(replay.rows.size(), 2u);
  EXPECT_EQ(replay.dropped_lines, lines.size() - victim);
  EXPECT_NE(replay.note.find("corrupt record"), std::string::npos);

  const auto resumed = rig.run(options);
  EXPECT_EQ(fmeda_bytes(plain), fmeda_bytes(resumed));
  EXPECT_EQ(plain.warnings, resumed.warnings);
}

TEST(CampaignJournal, ForeignFingerprintIsDiscardedAndRebuilt) {
  const TempDir dir("foreign");
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  options.execution.journal_path = dir.file("campaign.journal");
  (void)rig.run(options);

  // Same journal path, different campaign identity (classification
  // threshold): the journal must be discarded, never merged into the run.
  core::CircuitFmeaOptions other = options;
  other.relative_threshold = 0.05;
  EXPECT_NE(rig.runner(options).fingerprint(), rig.runner(other).fingerprint());

  const core::CampaignJournalHeader other_header = rig.runner(other).journal_header();
  const auto checked =
      core::replay_campaign_journal(options.execution.journal_path, &other_header);
  EXPECT_FALSE(checked.compatible);
  EXPECT_NE(checked.note.find("different campaign"), std::string::npos);

  core::CircuitFmeaOptions other_plain = other;
  other_plain.execution.journal_path.clear();
  const auto expected = rig.run(other_plain);
  const auto rebuilt = rig.run(other);
  EXPECT_EQ(fmeda_bytes(expected), fmeda_bytes(rebuilt));
  // The journal now carries the new campaign's fingerprint.
  const auto replay = core::replay_campaign_journal(options.execution.journal_path, nullptr);
  EXPECT_EQ(replay.header.fingerprint, rig.runner(other).fingerprint());
}

TEST(CampaignJournal, FingerprintIgnoresJobsShardAndJournalPath) {
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const std::uint64_t base = rig.runner(options).fingerprint();

  core::CircuitFmeaOptions variant = options;
  variant.jobs = 8;
  variant.execution.journal_path = "/nonexistent/elsewhere.journal";
  variant.execution.shard_index = 1;
  variant.execution.shard_count = 4;
  EXPECT_EQ(base, rig.runner(variant).fingerprint());

  variant = options;
  variant.execution.max_retries = 3;  // retries can change rows -> identity
  EXPECT_NE(base, rig.runner(variant).fingerprint());
}

TEST(CampaignSharding, ShardsPartitionTheTaskList) {
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.execution.shard_count = 3;
  std::vector<int> owners(rig.runner(options).tasks().size(), 0);
  for (int shard = 0; shard < 3; ++shard) {
    options.execution.shard_index = shard;
    for (const size_t index : rig.runner(options).shard_task_indices()) {
      owners[index] += 1;
    }
  }
  for (const int count : owners) EXPECT_EQ(count, 1);  // exactly one owner each
}

TEST(CampaignSharding, MergedShardJournalsMatchUnshardedRunBytes) {
  const TempDir dir("shards");
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const auto plain = rig.run(options);

  std::vector<std::string> journals;
  for (int shard = 0; shard < 3; ++shard) {
    core::CircuitFmeaOptions shard_options = options;
    shard_options.execution.shard_index = shard;
    shard_options.execution.shard_count = 3;
    shard_options.execution.journal_path =
        dir.file("shard" + std::to_string(shard) + ".journal");
    (void)rig.run(shard_options);
    journals.push_back(shard_options.execution.journal_path);
  }

  const auto merged = core::merge_campaign_journals(journals);
  EXPECT_EQ(fmeda_bytes(plain), fmeda_bytes(merged));
  EXPECT_EQ(plain.warnings, merged.warnings);
  EXPECT_EQ(plain.outcome_summary(), merged.outcome_summary());

  // A missing shard is an error, not a silently smaller FMEDA.
  EXPECT_THROW((void)core::merge_campaign_journals({journals[0], journals[2]}),
               AnalysisError);

  // An incomplete shard (journal missing one row) is an error too.
  std::vector<std::string> lines = file_lines(journals[1]);
  lines.pop_back();
  write_lines(journals[1], lines);
  EXPECT_THROW((void)core::merge_campaign_journals(journals), AnalysisError);
}

TEST(CampaignSharding, InvalidShardSpecThrows) {
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.execution.shard_index = 3;
  options.execution.shard_count = 3;
  EXPECT_THROW((void)rig.run(options), AnalysisError);
}

TEST(CampaignContainment, TaskCrashIsClassifiedNotFatal) {
  const EnvHook hook("DECISIVE_CAMPAIGN_TASK_THROW", "V1/Drift");
  core::CircuitFmeaOptions options;
  options.execution.max_retries = 0;
  const auto result = core::analyze_circuit(drifting_source_rig(), drifting_reliability(),
                                            nullptr, options);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].outcome, core::FaultOutcome::Crashed);
  EXPECT_TRUE(result.rows[0].safety_related);  // cannot be ruled benign
  EXPECT_EQ(result.rows[0].effect, core::EffectClass::None);
  EXPECT_EQ(result.rows[0].retries, 0);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("crashed its campaign worker"), std::string::npos);
  EXPECT_NE(result.warnings[0].find("conservatively marked safety-related"),
            std::string::npos);
  EXPECT_EQ(result.warnings[0], core::outcome_warning(result.rows[0]));
}

TEST(CampaignContainment, TransientCrashRecoversOnRetry) {
  // "@1": only attempt 0 throws — the deterministic transient failure. The
  // bounded retry must land the normal classification, annotated with the
  // retry count.
  const EnvHook hook("DECISIVE_CAMPAIGN_TASK_THROW", "V1/Drift@1");
  core::CircuitFmeaOptions options;
  options.execution.max_retries = 1;
  options.execution.retry_budget_scale = 1.0;
  const auto result = core::analyze_circuit(drifting_source_rig(), drifting_reliability(),
                                            nullptr, options);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].outcome, core::FaultOutcome::Converged);
  EXPECT_EQ(result.rows[0].effect, core::EffectClass::DVF);
  EXPECT_EQ(result.rows[0].retries, 1);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("took 1 containment retry"), std::string::npos);
  EXPECT_EQ(result.warnings[0], core::outcome_warning(result.rows[0]));
}

TEST(CampaignContainment, PersistentCrashExhaustsRetriesAndStaysCrashed) {
  const EnvHook hook("DECISIVE_CAMPAIGN_TASK_THROW", "V1/Drift");
  core::CircuitFmeaOptions options;
  options.execution.max_retries = 2;
  const auto result = core::analyze_circuit(drifting_source_rig(), drifting_reliability(),
                                            nullptr, options);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].outcome, core::FaultOutcome::Crashed);
  EXPECT_EQ(result.rows[0].retries, 2);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("took 2 containment retries"), std::string::npos);
}

TEST(CampaignContainment, WorkerDeathTripsBreakerAndCampaignStillCompletes) {
  const PowerRig rig;
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const auto plain = rig.run(options);

  const std::uint64_t trips_before =
      obs::Registry::global().counter("decisive_campaign_breaker_trips_total").value();
  const EnvHook hook("DECISIVE_CAMPAIGN_WORKER_DIE", "0");
  core::CircuitFmeaOptions parallel = options;
  parallel.jobs = 4;
  const auto survived = rig.run(parallel);
  EXPECT_EQ(fmeda_bytes(plain), fmeda_bytes(survived));
  EXPECT_EQ(plain.warnings, survived.warnings);
  EXPECT_GT(
      obs::Registry::global().counter("decisive_campaign_breaker_trips_total").value(),
      trips_before);
}

namespace {

/// Two ideal sources pinning one node to different voltages: the baseline is
/// singular on every ladder rung — the "unanalysable design" specimen.
sim::BuiltCircuit conflicting_baseline_rig() {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int a = c.node("a");
  c.add_vsource("V1", a, 0, 5.0);
  c.add_vsource("V2", a, 0, 3.0);
  c.add_resistor("R1", a, 0, 100.0);
  c.add_voltage_sensor("VS1", a, 0);
  built.observables.push_back("VS1");
  built.components.push_back({"V1", "Source", "V1"});
  return built;
}

}  // namespace

TEST(CampaignContainment, BestEffortDegradesUnanalysableBaseline) {
  const TempDir dir("besteffort");
  core::CircuitFmeaOptions options;
  EXPECT_THROW((void)core::analyze_circuit(conflicting_baseline_rig(),
                                           drifting_reliability(), nullptr, options),
               SimulationError);

  options.execution.best_effort = true;
  options.execution.journal_path = dir.file("degraded.journal");
  const auto degraded = core::analyze_circuit(conflicting_baseline_rig(),
                                              drifting_reliability(), nullptr, options);
  ASSERT_EQ(degraded.rows.size(), 1u);
  EXPECT_EQ(degraded.rows[0].outcome, core::FaultOutcome::NotApplicable);
  EXPECT_NE(degraded.rows[0].outcome_detail.find("best-effort"), std::string::npos);
  bool noted = false;
  for (const auto& warning : degraded.warnings) {
    if (warning.find("best-effort") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);

  // Degraded rows carry no computed result — they must NOT be checkpointed;
  // a rerun against a fixed baseline re-executes them.
  const auto replay =
      core::replay_campaign_journal(options.execution.journal_path, nullptr);
  ASSERT_TRUE(replay.compatible);
  EXPECT_TRUE(replay.rows.empty());
}
