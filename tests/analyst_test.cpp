// Tests for the manual-analyst cost model (the human-trial substitute).
#include <gtest/gtest.h>

#include <set>

#include "decisive/core/analyst.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;
using namespace decisive::core;

namespace {

struct Ground {
  FmedaResult fmea;
  size_t elements;
};

Ground ground_truth_a() {
  auto system = make_system_a();
  return {analyze_component(*system.model, system.system), system.element_count};
}

std::set<std::string> safety_set(const FmedaResult& fmea) {
  const auto v = fmea.safety_related_components();
  return {v.begin(), v.end()};
}

}  // namespace

TEST(ManualFmea, DeterministicBySeed) {
  const Ground g = ground_truth_a();
  AnalystProfile p;
  p.seed = 7;
  const auto first = simulate_manual_fmea(g.fmea, g.elements, p);
  const auto second = simulate_manual_fmea(g.fmea, g.elements, p);
  EXPECT_EQ(first.disagreeing_rows, second.disagreeing_rows);
  EXPECT_DOUBLE_EQ(first.minutes, second.minutes);
}

TEST(ManualFmea, ComponentLevelSafetySetInvariant) {
  // The paper: row-level differences exist, but the safety-related component
  // sets are always identical. Check across many seeds.
  const Ground g = ground_truth_a();
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    AnalystProfile p;
    p.seed = seed;
    const auto manual = simulate_manual_fmea(g.fmea, g.elements, p);
    EXPECT_EQ(safety_set(manual.result), safety_set(g.fmea)) << "seed " << seed;
  }
}

TEST(ManualFmea, DisagreementIsSmallButNonZeroOnAverage) {
  const Ground g = ground_truth_a();
  double total = 0.0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    AnalystProfile p;
    p.seed = seed;
    total += simulate_manual_fmea(g.fmea, g.elements, p).disagreement;
  }
  const double mean = total / 100.0;
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 0.10);  // low single digits, like the paper's 1.5-2.67%
}

TEST(ManualFmea, ZeroMisjudgeProbabilityMeansPerfectAgreement) {
  const Ground g = ground_truth_a();
  AnalystProfile p;
  p.equivocal_misjudge_prob = 0.0;
  const auto manual = simulate_manual_fmea(g.fmea, g.elements, p);
  EXPECT_EQ(manual.disagreeing_rows, 0u);
  EXPECT_DOUBLE_EQ(manual.disagreement, 0.0);
}

TEST(ManualFmea, MinutesScaleWithSystemSize) {
  const Ground small = ground_truth_a();
  auto system_b = make_system_b();
  const Ground large{analyze_component(*system_b.model, system_b.system),
                     system_b.element_count};
  AnalystProfile p;
  const auto small_run = simulate_manual_fmea(small.fmea, small.elements, p);
  const auto large_run = simulate_manual_fmea(large.fmea, large.elements, p);
  EXPECT_GT(large_run.minutes, 1.5 * small_run.minutes);
}

TEST(ManualDesign, ReachesTargetWithAdequateCatalogue) {
  const Ground g = ground_truth_a();
  AnalystProfile p;
  const auto session =
      simulate_manual_design(g.fmea, synthetic_sm_catalogue(), "ASIL-B", g.elements, p);
  EXPECT_TRUE(session.target_met);
  EXPECT_GE(session.final_spfm, 0.90);
  EXPECT_GE(session.iterations, 2);
  EXPECT_GT(session.minutes, 100.0);
}

TEST(ManualDesign, GivesUpWhenCatalogueIsEmpty) {
  const Ground g = ground_truth_a();
  AnalystProfile p;
  SafetyMechanismModel empty;
  const auto session = simulate_manual_design(g.fmea, empty, "ASIL-B", g.elements, p);
  EXPECT_FALSE(session.target_met);
}

TEST(AutomatedDesign, ReachesTargetAndIsMuchFaster) {
  const Ground g = ground_truth_a();
  AnalystProfile p;
  const auto manual =
      simulate_manual_design(g.fmea, synthetic_sm_catalogue(), "ASIL-B", g.elements, p);
  const auto automated = run_automated_design(
      [&] {
        auto system = make_system_a();
        return analyze_component(*system.model, system.system);
      },
      synthetic_sm_catalogue(), "ASIL-B", p);
  EXPECT_TRUE(automated.target_met);
  EXPECT_GE(automated.final_spfm, 0.90);
  // The paper's headline: about an order of magnitude faster.
  EXPECT_GT(manual.minutes / automated.minutes, 4.0);
}

TEST(AutomatedDesign, SpeedFactorScalesHumanTime) {
  const auto tool = [] {
    auto system = make_system_a();
    return analyze_component(*system.model, system.system);
  };
  AnalystProfile fast;
  fast.speed_factor = 0.5;
  AnalystProfile slow;
  slow.speed_factor = 2.0;
  const auto fast_run = run_automated_design(tool, synthetic_sm_catalogue(), "ASIL-B", fast);
  const auto slow_run = run_automated_design(tool, synthetic_sm_catalogue(), "ASIL-B", slow);
  EXPECT_LT(fast_run.minutes, slow_run.minutes);
}
