// Tests for runtime-monitor generation from dynamic SSAM components.
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/core/monitor.hpp"

using namespace decisive;
using namespace decisive::core;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

struct Fixture {
  SsamModel m;
  ObjectId sys;
  ObjectId sensor;
  ObjectId node;

  Fixture() {
    const auto pkg = m.create_component_package("design");
    sys = m.create_component(pkg, "sys");
    sensor = m.create_component(sys, "CS1");
    m.obj(sensor).set_bool("dynamic", true);
    node = m.add_io_node(sensor, "current", "out");
    m.obj(node).set_real("lowerLimit", 0.030);
    m.obj(node).set_real("upperLimit", 0.060);
  }
};

}  // namespace

TEST(Monitor, GeneratesChecksFromDynamicComponents) {
  Fixture f;
  const auto monitor = RuntimeMonitor::generate(f.m, f.sys);
  ASSERT_EQ(monitor.checks().size(), 1u);
  const auto& check = monitor.checks()[0];
  EXPECT_EQ(check.id, "CS1.current");
  EXPECT_DOUBLE_EQ(*check.lower, 0.030);
  EXPECT_DOUBLE_EQ(*check.upper, 0.060);
}

TEST(Monitor, StaticComponentsAreSkippedUnlessRequested) {
  Fixture f;
  f.m.obj(f.sensor).set_bool("dynamic", false);
  EXPECT_TRUE(RuntimeMonitor::generate(f.m, f.sys).checks().empty());
  EXPECT_EQ(RuntimeMonitor::generate(f.m, f.sys, /*include_static=*/true).checks().size(), 1u);
}

TEST(Monitor, NodesWithoutLimitsAreSkipped) {
  Fixture f;
  f.m.add_io_node(f.sensor, "unbounded", "in");  // no limits
  EXPECT_EQ(RuntimeMonitor::generate(f.m, f.sys).checks().size(), 1u);
}

TEST(Monitor, InRangeSamplesPass) {
  Fixture f;
  auto monitor = RuntimeMonitor::generate(f.m, f.sys);
  EXPECT_EQ(monitor.feed("CS1.current", 0.045), std::nullopt);
  EXPECT_EQ(monitor.feed("CS1.current", 0.030), std::nullopt);  // inclusive bounds
  EXPECT_EQ(monitor.feed("CS1.current", 0.060), std::nullopt);
  EXPECT_EQ(monitor.samples_seen(), 3u);
  EXPECT_EQ(monitor.violations_seen(), 0u);
}

TEST(Monitor, ViolationsReportBoundAndDirection) {
  Fixture f;
  auto monitor = RuntimeMonitor::generate(f.m, f.sys);
  const auto low = monitor.feed("CS1.current", 0.010);
  ASSERT_TRUE(low.has_value());
  EXPECT_TRUE(low->below_lower);
  EXPECT_DOUBLE_EQ(low->bound, 0.030);
  const auto high = monitor.feed("CS1.current", 0.100);
  ASSERT_TRUE(high.has_value());
  EXPECT_FALSE(high->below_lower);
  EXPECT_DOUBLE_EQ(high->bound, 0.060);
  EXPECT_EQ(monitor.violations_seen(), 2u);
}

TEST(Monitor, ViolationsCarryLinkedHazards) {
  Fixture f;
  const auto haz_pkg = f.m.create_hazard_package("hazards");
  const auto h1 = f.m.create_hazard(haz_pkg, "H1", "S2", 1e-6, "ASIL-B");
  const auto fm = f.m.add_failure_mode(f.sensor, "Drift", 0.4, "degraded");
  f.m.obj(fm).add_ref("hazards", h1);

  auto monitor = RuntimeMonitor::generate(f.m, f.sys);
  const auto violation = monitor.feed("CS1.current", 0.0);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->hazards, (std::vector<std::string>{"H1"}));
}

TEST(Monitor, UnknownCheckThrows) {
  Fixture f;
  auto monitor = RuntimeMonitor::generate(f.m, f.sys);
  EXPECT_THROW(monitor.feed("nope", 1.0), AnalysisError);
}

TEST(Monitor, FrameFeeding) {
  Fixture f;
  const auto mcu = f.m.create_component(f.sys, "MC1");
  f.m.obj(mcu).set_bool("dynamic", true);
  const auto status = f.m.add_io_node(mcu, "status", "out");
  f.m.obj(status).set_real("lowerLimit", 1.0);  // status must stay 1

  auto monitor = RuntimeMonitor::generate(f.m, f.sys);
  ASSERT_EQ(monitor.checks().size(), 2u);
  const auto violations =
      monitor.feed_frame({{"CS1.current", 0.045}, {"MC1.status", 0.0}});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check_id, "MC1.status");
}

TEST(Monitor, OneSidedLimits) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto sys = m.create_component(pkg, "sys");
  const auto comp = m.create_component(sys, "c");
  m.obj(comp).set_bool("dynamic", true);
  const auto only_upper = m.add_io_node(comp, "temp", "out");
  m.obj(only_upper).set_real("upperLimit", 85.0);

  auto monitor = RuntimeMonitor::generate(m, sys);
  ASSERT_EQ(monitor.checks().size(), 1u);
  EXPECT_FALSE(monitor.checks()[0].lower.has_value());
  EXPECT_EQ(monitor.feed("c.temp", -40.0), std::nullopt);  // no lower bound
  EXPECT_TRUE(monitor.feed("c.temp", 90.0).has_value());
}

TEST(Monitor, TextSpecListsChecksAndHazards) {
  Fixture f;
  const auto haz_pkg = f.m.create_hazard_package("hazards");
  const auto h1 = f.m.create_hazard(haz_pkg, "H1", "S2", 1e-6, "ASIL-B");
  const auto fm = f.m.add_failure_mode(f.sensor, "Drift", 0.4, "degraded");
  f.m.obj(fm).add_ref("hazards", h1);
  const auto text = RuntimeMonitor::generate(f.m, f.sys).to_text();
  EXPECT_NE(text.find("CS1.current"), std::string::npos);
  EXPECT_NE(text.find("0.03"), std::string::npos);
  EXPECT_NE(text.find("H1"), std::string::npos);
}
