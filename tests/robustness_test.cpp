// Robustness: every parser must reject arbitrary garbage with a library
// error (never crash, never accept silently), and must survive truncations
// of valid documents — the inputs come from users' external models, so the
// error path is a first-class interface. The same discipline applies one
// layer down: the fault-injection campaign feeds the DC solver deliberately
// broken circuits, so torture solves must end in a structured SolveFailure
// (or a ladder recovery), never a crash or a hang.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/base/table.hpp"
#include "decisive/base/xml.hpp"
#include "decisive/core/campaign.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/aadl.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/query/query.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/sim/solver.hpp"

using namespace decisive;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

std::string random_garbage(Rng& rng, size_t max_len) {
  const size_t len = rng.below(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Mix of structure characters and arbitrary bytes.
    static constexpr char kAlphabet[] =
        "{}<>()[]\"';:,.|->=& \n\t\\#abcdefXYZ0123456789_%@!";
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

}  // namespace

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, GarbageNeverCrashesOnlyThrows) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761ULL);
  for (int round = 0; round < 50; ++round) {
    const std::string input = random_garbage(rng, 200);
    // Each parser either succeeds or throws a decisive::Error; anything else
    // (crash, std::bad_alloc, infinite loop) fails the test harness.
    try { (void)xml::parse(input); } catch (const Error&) {}
    try { (void)json::parse(input); } catch (const Error&) {}
    try { (void)parse_csv(input); } catch (const Error&) {}
    try { (void)drivers::parse_mdl(input); } catch (const Error&) {}
    try { (void)drivers::parse_aadl(input); } catch (const Error&) {}
    try {
      query::Env env;
      (void)query::eval(input, env);
    } catch (const Error&) {}
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(1, 11));

TEST(ParserRobustness, TruncationsOfValidDocumentsThrowCleanly) {
  const std::string mdl =
      "Model { Name \"m\" System { Block { BlockType Ground Name \"G\" } "
      "Line { SrcBlock \"G\" SrcPort \"g\" DstBlock \"G\" DstPort \"g\" } } }";
  for (size_t cut = 1; cut < mdl.size(); cut += 3) {
    try {
      (void)drivers::parse_mdl(mdl.substr(0, cut));
    } catch (const Error&) {
    }
  }
  const std::string xml_doc = "<a x=\"1\"><b>text &amp; more</b><c/></a>";
  for (size_t cut = 1; cut < xml_doc.size(); ++cut) {
    try {
      (void)xml::parse(xml_doc.substr(0, cut));
    } catch (const Error&) {
    }
  }
  const std::string json_doc = R"({"a": [1, 2.5, "s", {"k": null}]})";
  for (size_t cut = 1; cut < json_doc.size(); ++cut) {
    try {
      (void)json::parse(json_doc.substr(0, cut));
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

namespace {

/// A diode reverse-biased at -`volts`: the junction-voltage estimate starts
/// at +0.6 V and the Newton voltage limiter moves it at most 0.1 V per
/// iteration, so plain Newton needs ~10*volts iterations. A tight iteration
/// budget makes this a deterministic "plain Newton fails, the warm-started
/// recovery ladder succeeds" specimen.
sim::Circuit reverse_diode(double volts) {
  sim::Circuit c;
  const int p = c.node("p");
  const int k = c.node("k");
  c.add_vsource("V1", p, 0, volts);
  c.add_resistor("R1", p, k, 1000.0);
  c.add_diode("D1", 0, k);
  return c;
}

}  // namespace

TEST(SolverTorture, ReverseDiodeRecoversViaLadderUnderTightIterationBudget) {
  sim::SolveOptions opt;
  opt.max_newton_iterations = 30;  // plain Newton needs ~130 to walk 0.6 -> -12
  sim::SolveDiagnostics diag;
  const auto op = sim::try_dc_operating_point(reverse_diode(12.0), opt, diag);
  ASSERT_TRUE(op.has_value());
  EXPECT_TRUE(diag.converged);
  EXPECT_EQ(diag.failure, sim::SolveFailure::None);
  EXPECT_GE(diag.ladder_rung, 1);
  EXPECT_NE(diag.strategy, sim::SolveStrategy::Newton);
  EXPECT_GT(diag.iterations, opt.max_newton_iterations);
  // The recovered point is the genuine solution of the requested system.
  EXPECT_NEAR(op->node_voltage[2], 12.0, 1e-3);  // node "k"
}

TEST(SolverTorture, TightBudgetWithoutLadderReportsIterationBudget) {
  sim::SolveOptions opt;
  opt.max_newton_iterations = 30;
  opt.recovery_ladder = false;
  sim::SolveDiagnostics diag;
  const auto op = sim::try_dc_operating_point(reverse_diode(12.0), opt, diag);
  EXPECT_FALSE(op.has_value());
  EXPECT_FALSE(diag.converged);
  EXPECT_EQ(diag.failure, sim::SolveFailure::IterationBudget);
  EXPECT_EQ(diag.ladder_rung, 0);
  // The throwing wrapper keeps its exception contract.
  EXPECT_THROW((void)sim::dc_operating_point(reverse_diode(12.0), opt), SimulationError);
}

TEST(SolverTorture, ContradictorySourcesReportSingularOnEveryRung) {
  // Two ideal voltage sources pinning the same node to different values: the
  // MNA system is singular, and stays singular under gmin stepping (leak
  // conductances do not touch the branch equations) and source stepping (both
  // sources scale together). Must classify, never crash.
  sim::Circuit c;
  const int a = c.node("a");
  c.add_vsource("V1", a, 0, 12.0);
  c.add_vsource("V2", a, 0, 5.0);
  c.add_resistor("R1", a, 0, 100.0);
  sim::SolveDiagnostics diag;
  const auto op = sim::try_dc_operating_point(c, sim::SolveOptions{}, diag);
  EXPECT_FALSE(op.has_value());
  EXPECT_FALSE(diag.converged);
  EXPECT_EQ(diag.failure, sim::SolveFailure::Singular);
  EXPECT_FALSE(diag.message.empty());
}

TEST(SolverTorture, NanSourceValueReportsNonFinite) {
  // A NaN element value poisons the Newton iterate; the non-finite guard must
  // catch it on the first iteration instead of letting it masquerade as
  // non-convergence (or worse, "converging" to NaN on a linear circuit).
  sim::Circuit c;
  const int a = c.node("a");
  c.add_vsource("V1", a, 0, std::numeric_limits<double>::quiet_NaN());
  c.add_resistor("R1", a, 0, 1000.0);
  c.add_diode("D1", a, 0);
  sim::SolveDiagnostics diag;
  const auto op = sim::try_dc_operating_point(c, sim::SolveOptions{}, diag);
  EXPECT_FALSE(op.has_value());
  EXPECT_EQ(diag.failure, sim::SolveFailure::NonFinite);
}

TEST(SolverTorture, ZeroResistanceInductorLoopReportsStructuredFailure) {
  // Two inductors in parallel are both ideal shorts at DC: a zero-resistance
  // loop whose current split is indeterminate (two identical branch
  // equations), the classic SPICE pathology. Must be a structured failure on
  // every ladder rung, not a crash or a silent garbage solution.
  sim::Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V1", a, 0, 12.0);
  c.add_inductor("L1", a, b, 1e-3);
  c.add_inductor("L2", a, b, 2e-3);
  c.add_resistor("R1", b, 0, 100.0);
  sim::SolveDiagnostics diag;
  const auto op = sim::try_dc_operating_point(c, sim::SolveOptions{}, diag);
  EXPECT_FALSE(op.has_value());
  EXPECT_EQ(diag.failure, sim::SolveFailure::Singular);
  EXPECT_FALSE(diag.message.empty());
}

TEST(SolverTorture, WallClockBudgetStopsTheLadder) {
  sim::SolveOptions opt;
  opt.max_wall_clock_seconds = 1e-12;  // expires before the first iterate
  sim::SolveDiagnostics diag;
  const auto op = sim::try_dc_operating_point(reverse_diode(12.0), opt, diag);
  EXPECT_FALSE(op.has_value());
  EXPECT_EQ(diag.failure, sim::SolveFailure::WallClockBudget);
}

namespace {

/// Campaign specimen whose baseline solves inside a 40-iteration budget
/// (diode walk 0.6 -> -1.2) but whose Drift fault (source x10 -> 12 V, walk
/// to -12) does not: the fault solve aborts without the recovery ladder and
/// recovers with it.
sim::BuiltCircuit drifting_source_rig() {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int p = c.node("p");
  const int k = c.node("k");
  c.add_vsource("V1", p, 0, 1.2);
  c.add_resistor("R1", p, k, 1000.0);
  c.add_diode("D1", 0, k);
  c.add_voltage_sensor("VS1", k, 0);
  built.observables.push_back("VS1");
  built.components.push_back({"V1", "Source", "V1"});
  return built;
}

}  // namespace

TEST(CampaignRobustness, AbortingFaultIsClassifiedNotFatal) {
  core::ReliabilityModel reliability;
  reliability.add("Source", 5.0, {{"Drift", 1.0}});
  core::CircuitFmeaOptions options;
  options.solver.max_newton_iterations = 40;
  options.solver.recovery_ladder = false;

  // Without the ladder the fault solve exhausts its budget; the campaign must
  // carry a structured outcome and conservatively mark the row, not abort.
  const auto budget =
      core::analyze_circuit(drifting_source_rig(), reliability, nullptr, options);
  ASSERT_EQ(budget.rows.size(), 1u);
  EXPECT_EQ(budget.rows[0].outcome, core::FaultOutcome::BudgetExhausted);
  EXPECT_TRUE(budget.rows[0].safety_related);
  EXPECT_EQ(budget.rows[0].effect, core::EffectClass::None);
  ASSERT_EQ(budget.warnings.size(), 1u);
  EXPECT_NE(budget.warnings[0].find("conservatively marked safety-related"),
            std::string::npos);

  // With the ladder the same fault converges and is classified normally.
  options.solver.recovery_ladder = true;
  const auto recovered =
      core::analyze_circuit(drifting_source_rig(), reliability, nullptr, options);
  ASSERT_EQ(recovered.rows.size(), 1u);
  EXPECT_EQ(recovered.rows[0].outcome, core::FaultOutcome::RecoveredViaLadder);
  EXPECT_GE(recovered.rows[0].ladder_rung, 1);
  EXPECT_GT(recovered.rows[0].solver_iterations, 40);
  EXPECT_EQ(recovered.rows[0].effect, core::EffectClass::DVF);
  EXPECT_TRUE(recovered.rows[0].safety_related);
}

TEST(CampaignRobustness, JobCountDoesNotChangeFmedaBytes) {
  // The paper's case study, serial vs 8 workers: the FMEDA table (CSV bytes)
  // and the warning list must be identical — results land in pre-assigned
  // slots, so ordering never depends on thread scheduling.
  const auto built =
      sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"));
  const auto workbook =
      drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  options.jobs = 1;
  const auto serial = core::analyze_circuit(built, reliability, nullptr, options);
  options.jobs = 8;
  const auto parallel = core::analyze_circuit(built, reliability, nullptr, options);
  EXPECT_EQ(write_csv(serial.to_csv()), write_csv(parallel.to_csv()));
  EXPECT_EQ(serial.warnings, parallel.warnings);
  EXPECT_FALSE(serial.rows.empty());
}

TEST(ParserRobustness, DeeplyNestedInputsDoNotOverflowQuickly) {
  // 2000 nested arrays: either parses or throws, within recursion limits a
  // test stack tolerates. (Documents parsed in practice are model files,
  // not adversarial payloads; this guards against accidental quadratic or
  // runaway behaviour.)
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  try {
    (void)json::parse(deep);
  } catch (const Error&) {
  }
  SUCCEED();
}
