// Robustness: every parser must reject arbitrary garbage with a library
// error (never crash, never accept silently), and must survive truncations
// of valid documents — the inputs come from users' external models, so the
// error path is a first-class interface.
#include <gtest/gtest.h>

#include <string>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/base/table.hpp"
#include "decisive/base/xml.hpp"
#include "decisive/drivers/aadl.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/query/query.hpp"

using namespace decisive;

namespace {

std::string random_garbage(Rng& rng, size_t max_len) {
  const size_t len = rng.below(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Mix of structure characters and arbitrary bytes.
    static constexpr char kAlphabet[] =
        "{}<>()[]\"';:,.|->=& \n\t\\#abcdefXYZ0123456789_%@!";
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

}  // namespace

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, GarbageNeverCrashesOnlyThrows) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761ULL);
  for (int round = 0; round < 50; ++round) {
    const std::string input = random_garbage(rng, 200);
    // Each parser either succeeds or throws a decisive::Error; anything else
    // (crash, std::bad_alloc, infinite loop) fails the test harness.
    try { (void)xml::parse(input); } catch (const Error&) {}
    try { (void)json::parse(input); } catch (const Error&) {}
    try { (void)parse_csv(input); } catch (const Error&) {}
    try { (void)drivers::parse_mdl(input); } catch (const Error&) {}
    try { (void)drivers::parse_aadl(input); } catch (const Error&) {}
    try {
      query::Env env;
      (void)query::eval(input, env);
    } catch (const Error&) {}
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(1, 11));

TEST(ParserRobustness, TruncationsOfValidDocumentsThrowCleanly) {
  const std::string mdl =
      "Model { Name \"m\" System { Block { BlockType Ground Name \"G\" } "
      "Line { SrcBlock \"G\" SrcPort \"g\" DstBlock \"G\" DstPort \"g\" } } }";
  for (size_t cut = 1; cut < mdl.size(); cut += 3) {
    try {
      (void)drivers::parse_mdl(mdl.substr(0, cut));
    } catch (const Error&) {
    }
  }
  const std::string xml_doc = "<a x=\"1\"><b>text &amp; more</b><c/></a>";
  for (size_t cut = 1; cut < xml_doc.size(); ++cut) {
    try {
      (void)xml::parse(xml_doc.substr(0, cut));
    } catch (const Error&) {
    }
  }
  const std::string json_doc = R"({"a": [1, 2.5, "s", {"k": null}]})";
  for (size_t cut = 1; cut < json_doc.size(); ++cut) {
    try {
      (void)json::parse(json_doc.substr(0, cut));
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, DeeplyNestedInputsDoNotOverflowQuickly) {
  // 2000 nested arrays: either parses or throws, within recursion limits a
  // test stack tolerates. (Documents parsed in practice are model files,
  // not adversarial payloads; this guards against accidental quadratic or
  // runaway behaviour.)
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  try {
    (void)json::parse(deep);
  } catch (const Error&) {
  }
  SUCCEED();
}
