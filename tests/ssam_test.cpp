// Unit tests for the SSAM metamodel, the typed facade, external-model
// federation and the component graph used by Algorithm 1.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "decisive/base/error.hpp"
#include "decisive/ssam/graph.hpp"
#include "decisive/ssam/metamodel.hpp"
#include "decisive/ssam/model.hpp"

using namespace decisive;
using namespace decisive::ssam;

// -------------------------------------------------------------- metamodel --

TEST(Metamodel, AllModulesPresent) {
  const auto& meta = metamodel();
  for (const char* name :
       {cls::ModelElement, cls::ImplementationConstraint, cls::ExternalReference,
        cls::Requirement, cls::SafetyRequirement, cls::RequirementPackage,
        cls::HazardousSituation, cls::Cause, cls::ControlMeasure, cls::HazardPackage,
        cls::Component, cls::IONode, cls::FailureMode, cls::FailureEffect,
        cls::SafetyMechanism, cls::Function, cls::ComponentRelationship,
        cls::ComponentPackage, cls::MBSAPackage}) {
    EXPECT_NE(meta.find(name), nullptr) << name;
  }
}

TEST(Metamodel, InheritanceFromModelElement) {
  const auto& meta = metamodel();
  const auto& element = meta.get(cls::ModelElement);
  EXPECT_TRUE(meta.get(cls::Component).is_kind_of(element));
  EXPECT_TRUE(meta.get(cls::SafetyRequirement).is_kind_of(meta.get(cls::Requirement)));
  EXPECT_TRUE(meta.get(cls::HazardousSituation).is_kind_of(element));
  // Every ModelElement supports citation.
  EXPECT_NE(meta.get(cls::Cause).find_reference("cites"), nullptr);
}

TEST(Metamodel, AbstractClassesAreAbstract) {
  SsamModel m;
  EXPECT_THROW(m.repo().create(m.meta().get(cls::ModelElement)), ModelError);
  EXPECT_THROW(m.repo().create(m.meta().get(cls::ComponentElement)), ModelError);
}

// ----------------------------------------------------------------- facade --

TEST(SsamFacade, PackagesAttachToMbsaRoot) {
  SsamModel m;
  const auto req = m.create_requirement_package("reqs");
  const auto haz = m.create_hazard_package("hazards");
  const auto comp = m.create_component_package("design");
  const auto& root = m.obj(m.mbsa_root());
  EXPECT_EQ(root.refs("requirementPackages"), (std::vector<ObjectId>{req}));
  EXPECT_EQ(root.refs("hazardPackages"), (std::vector<ObjectId>{haz}));
  EXPECT_EQ(root.refs("componentPackages"), (std::vector<ObjectId>{comp}));
}

TEST(SsamFacade, RequirementsAndRelationships) {
  SsamModel m;
  const auto pkg = m.create_requirement_package("reqs");
  const auto r1 = m.create_requirement(pkg, "FR1", "do the thing", "QM");
  const auto sr = m.create_safety_requirement(pkg, "SR1", "do it safely", "ASIL-B", "safety");
  const auto rel = m.relate_requirements(pkg, "derives", r1, sr);
  EXPECT_EQ(m.obj(rel).get_string("kind"), "derives");
  EXPECT_EQ(m.obj(rel).ref("source"), r1);
  EXPECT_EQ(m.obj(sr).get_string("integrityLevel"), "ASIL-B");
  EXPECT_EQ(m.obj(pkg).refs("elements").size(), 3u);
}

TEST(SsamFacade, HazardsWithCausesAndControls) {
  SsamModel m;
  const auto pkg = m.create_hazard_package("hazards");
  const auto h1 = m.create_hazard(pkg, "H1", "S2", 1e-6, "ASIL-B");
  m.add_cause(h1, "C1", "wear-out");
  const auto cm = m.add_control_measure(h1, "CM1", 0.95);
  EXPECT_EQ(m.obj(h1).refs("causes").size(), 1u);
  EXPECT_DOUBLE_EQ(m.obj(cm).get_real("effectivenessOfVerification"), 0.95);
  EXPECT_DOUBLE_EQ(m.obj(h1).get_real("probability"), 1e-6);
}

TEST(SsamFacade, ComponentsNestAndValidate) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto sys = m.create_component(pkg, "sys");
  const auto sub = m.create_component(sys, "sub");
  EXPECT_EQ(m.components_of(pkg), (std::vector<ObjectId>{sys}));
  EXPECT_EQ(m.components_of(sys), (std::vector<ObjectId>{sub}));
  EXPECT_EQ(m.all_components_under(pkg).size(), 2u);
  // Components cannot live in a hazard package.
  const auto haz = m.create_hazard_package("hazards");
  EXPECT_THROW(m.create_component(haz, "bad"), ModelError);
}

TEST(SsamFacade, FeatureValidation) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto comp = m.create_component(pkg, "c");
  EXPECT_THROW(m.add_io_node(comp, "x", "sideways"), ModelError);
  EXPECT_THROW(m.add_failure_mode(comp, "fm", 1.5, "lossOfFunction"), ModelError);
  EXPECT_THROW(m.add_safety_mechanism(comp, "sm", 2.0, 1.0, model::kNullObject), ModelError);
  EXPECT_THROW(m.add_function(comp, "f", "3oo7"), ModelError);
  EXPECT_NO_THROW(m.add_function(comp, "f", "2oo3"));
}

TEST(SsamFacade, ConnectRequiresIoNodes) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto sys = m.create_component(pkg, "sys");
  const auto a = m.add_io_node(sys, "a", "in");
  EXPECT_THROW(m.connect(sys, a, sys), ModelError);  // sys is not an IONode
  const auto b = m.add_io_node(sys, "b", "out");
  EXPECT_NO_THROW(m.connect(sys, a, b));
}

TEST(SsamFacade, CiteAndFind) {
  SsamModel m;
  const auto reqs = m.create_requirement_package("reqs");
  const auto haz = m.create_hazard_package("hazards");
  const auto r = m.create_requirement(reqs, "FR1", "text", "QM");
  const auto h = m.create_hazard(haz, "H1", "S1", 1e-6, "ASIL-A");
  m.cite(r, h);
  EXPECT_EQ(m.obj(r).refs("cites"), (std::vector<ObjectId>{h}));
  EXPECT_EQ(m.find_by_name(cls::HazardousSituation, "H1"), h);
  EXPECT_EQ(m.find_by_name(cls::HazardousSituation, "H9"), model::kNullObject);
}

// ------------------------------------------------------------- federation --

TEST(Federation, ExtractsFromExternalCsv) {
  // Write a small external reliability file and pull a value through an
  // ExternalReference extraction rule (REQ2).
  const auto dir = std::filesystem::temp_directory_path() / "decisive-ssam-fed";
  std::filesystem::create_directories(dir);
  const auto file = dir / "rel.csv";
  {
    std::ofstream out(file);
    out << "Component,FIT\nDiode,10\nMC,300\n";
  }

  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto comp = m.create_component(pkg, "MC1");
  const auto ext = m.add_external_reference(
      comp, file.string(), "csv",
      "rows().select(r | r.Component == 'MC').first().FIT");
  const auto value = run_extraction(m, ext);
  EXPECT_DOUBLE_EQ(value.as_number(), 300.0);
  std::filesystem::remove_all(dir);
}

TEST(Federation, MissingRuleOrWrongElementThrows) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto comp = m.create_component(pkg, "c");
  EXPECT_THROW(run_extraction(m, comp), ModelError);  // not an ExternalReference
}

// ------------------------------------------------------------------ graph --

namespace {

struct GraphFixture {
  SsamModel m;
  ObjectId sys, in, out;

  GraphFixture() {
    const auto pkg = m.create_component_package("design");
    sys = m.create_component(pkg, "sys");
    in = m.add_io_node(sys, "in", "in");
    out = m.add_io_node(sys, "out", "out");
  }

  struct Sub {
    ObjectId comp, in, out;
  };
  Sub leaf(const std::string& name) {
    Sub s;
    s.comp = m.create_component(sys, name);
    s.in = m.add_io_node(s.comp, name + ".in", "in");
    s.out = m.add_io_node(s.comp, name + ".out", "out");
    return s;
  }
};

}  // namespace

TEST(Graph, SerialChainHasSinglePath) {
  GraphFixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, f.out);

  const auto graph = build_graph(f.m, f.sys);
  const auto paths = enumerate_paths(graph);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(on_all_paths(graph, paths, a.comp));
  EXPECT_TRUE(on_all_paths(graph, paths, b.comp));
}

TEST(Graph, ParallelBranchesAreNotSinglePoint) {
  GraphFixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, f.in, b.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.connect(f.sys, b.out, f.out);

  const auto graph = build_graph(f.m, f.sys);
  const auto paths = enumerate_paths(graph);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_FALSE(on_all_paths(graph, paths, a.comp));
  EXPECT_FALSE(on_all_paths(graph, paths, b.comp));
}

TEST(Graph, DiamondMiddleIsNotSinglePointButEndsAre) {
  GraphFixture f;
  const auto head = f.leaf("head");
  const auto left = f.leaf("left");
  const auto right = f.leaf("right");
  const auto tail = f.leaf("tail");
  f.m.connect(f.sys, f.in, head.in);
  f.m.connect(f.sys, head.out, left.in);
  f.m.connect(f.sys, head.out, right.in);
  f.m.connect(f.sys, left.out, tail.in);
  f.m.connect(f.sys, right.out, tail.in);
  f.m.connect(f.sys, tail.out, f.out);

  const auto graph = build_graph(f.m, f.sys);
  const auto paths = enumerate_paths(graph);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(on_all_paths(graph, paths, head.comp));
  EXPECT_TRUE(on_all_paths(graph, paths, tail.comp));
  EXPECT_FALSE(on_all_paths(graph, paths, left.comp));
  EXPECT_FALSE(on_all_paths(graph, paths, right.comp));
}

TEST(Graph, CyclesDoNotHangEnumeration) {
  GraphFixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, a.in);  // feedback loop
  f.m.connect(f.sys, b.out, f.out);
  const auto graph = build_graph(f.m, f.sys);
  const auto paths = enumerate_paths(graph);
  EXPECT_EQ(paths.size(), 1u);  // simple paths only
}

TEST(Graph, MissingBoundaryNodesThrows) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto sys = m.create_component(pkg, "sys");
  m.add_io_node(sys, "in", "in");  // no output
  EXPECT_THROW(build_graph(m, sys), AnalysisError);
}

TEST(Graph, PathExplosionGuard) {
  // A ladder of parallel pairs: 2^n paths; the guard must fire.
  GraphFixture f;
  ObjectId previous = f.in;
  for (int stage = 0; stage < 20; ++stage) {
    const auto a = f.leaf("s" + std::to_string(stage) + "a");
    const auto b = f.leaf("s" + std::to_string(stage) + "b");
    f.m.connect(f.sys, previous, a.in);
    f.m.connect(f.sys, previous, b.in);
    const auto join = f.leaf("j" + std::to_string(stage));
    f.m.connect(f.sys, a.out, join.in);
    f.m.connect(f.sys, b.out, join.in);
    previous = join.out;
  }
  f.m.connect(f.sys, previous, f.out);
  const auto graph = build_graph(f.m, f.sys);
  EXPECT_THROW(enumerate_paths(graph, /*max_paths=*/1000), AnalysisError);
}

TEST(Graph, ParseDirectionAcceptsKnownSpellings) {
  EXPECT_EQ(parse_direction("in"), NodeDirection::In);
  EXPECT_EQ(parse_direction("out"), NodeDirection::Out);
  EXPECT_EQ(parse_direction("inout"), NodeDirection::InOut);
  EXPECT_EQ(parse_direction("in out"), NodeDirection::InOut);  // AADL spelling
  EXPECT_EQ(parse_direction("  In "), NodeDirection::In);
  EXPECT_EQ(parse_direction("OUT"), NodeDirection::Out);
  EXPECT_EQ(parse_direction(""), std::nullopt);
  EXPECT_EQ(parse_direction("input"), std::nullopt);
  EXPECT_EQ(parse_direction("Imput"), std::nullopt);
}

TEST(Graph, InoutBoundaryNodeIsBothInputAndOutput) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto sys = m.create_component(pkg, "sys");
  const auto io = m.add_io_node(sys, "bus", "inout");
  const auto graph = build_graph(m, sys);
  EXPECT_EQ(graph.inputs, std::vector<ObjectId>{io});
  EXPECT_EQ(graph.outputs, std::vector<ObjectId>{io});
  EXPECT_EQ(graph.direction.at(io), NodeDirection::InOut);
}

TEST(Graph, InoutSubNodeGetsNoSelfThroughEdge) {
  GraphFixture f;
  const auto x = f.m.create_component(f.sys, "X");
  const auto xio = f.m.add_io_node(x, "x.io", "inout");
  f.m.connect(f.sys, f.in, xio);
  f.m.connect(f.sys, xio, f.out);
  const auto graph = build_graph(f.m, f.sys);
  const auto it = graph.edges.find(xio);
  if (it != graph.edges.end()) {
    for (const ObjectId target : it->second) EXPECT_NE(target, xio);
  }
  const auto paths = enumerate_paths(graph);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(on_all_paths(graph, paths, x));
}

TEST(Graph, UnknownDirectionThrowsNamingTheNode) {
  GraphFixture f;
  const auto a = f.leaf("a");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.obj(a.out).set_string("direction", "downstream");  // typo'd import
  try {
    build_graph(f.m, f.sys);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("a.out"), std::string::npos) << message;
    EXPECT_NE(message.find("downstream"), std::string::npos) << message;
  }
}

TEST(Graph, EmptyDirectionThrowsInsteadOfBecomingAnOutput) {
  GraphFixture f;
  const auto a = f.leaf("a");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.obj(a.in).set_string("direction", "");
  EXPECT_THROW(build_graph(f.m, f.sys), AnalysisError);
}

TEST(SsamModel, AddIoNodeValidatesDirection) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto sys = m.create_component(pkg, "sys");
  EXPECT_NO_THROW(m.add_io_node(sys, "bus", "inout"));
  EXPECT_THROW(m.add_io_node(sys, "bad", "sideways"), ModelError);
}

TEST(SsamModel, MemoryBudgetPropagates) {
  SsamModel m(/*memory_budget_bytes=*/4096);
  const auto pkg = m.create_component_package("design");
  EXPECT_THROW(
      {
        for (int i = 0; i < 10000; ++i) {
          m.create_component(pkg, "c" + std::to_string(i));
        }
      },
      CapacityError);
}
