// Unit tests for the query language (the EOL substitute).
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/query/query.hpp"

using namespace decisive;
using namespace decisive::query;

namespace {

Value run(const std::string& source) {
  Env env;
  return eval(source, env);
}

double num(const std::string& source) { return run(source).as_number(); }
bool boolean(const std::string& source) { return run(source).as_bool(); }

/// A simple host object exposing two properties.
class Point final : public ObjectRef {
 public:
  Point(double x, double y) : x_(x), y_(y) {}
  [[nodiscard]] Value property(std::string_view name) const override {
    if (name == "x") return Value(x_);
    if (name == "y") return Value(y_);
    throw QueryError("no property");
  }
  [[nodiscard]] bool has_property(std::string_view name) const override {
    return name == "x" || name == "y";
  }
  [[nodiscard]] std::string type_name() const override { return "Point"; }

 private:
  double x_, y_;
};

}  // namespace

// --------------------------------------------------------------- literals --

TEST(Query, Literals) {
  EXPECT_DOUBLE_EQ(num("42"), 42.0);
  EXPECT_DOUBLE_EQ(num("3.5e2"), 350.0);
  EXPECT_EQ(run("'hi'").as_string(), "hi");
  EXPECT_EQ(run("\"double\"").as_string(), "double");
  EXPECT_TRUE(boolean("true"));
  EXPECT_FALSE(boolean("false"));
  EXPECT_TRUE(run("null").is_null());
}

TEST(Query, SequenceLiteral) {
  const auto v = run("Sequence{1, 2, 3}");
  ASSERT_TRUE(v.is_collection());
  EXPECT_EQ(v.as_collection().size(), 3u);
  EXPECT_TRUE(run("Sequence{}").as_collection().empty());
}

// ------------------------------------------------------------- arithmetic --

TEST(Query, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(num("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(num("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(num("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(num("7 % 3"), 1.0);
  EXPECT_DOUBLE_EQ(num("-3 + 1"), -2.0);
  EXPECT_DOUBLE_EQ(num("2 - -2"), 4.0);
}

TEST(Query, DivisionByZeroThrows) {
  EXPECT_THROW(run("1 / 0"), QueryError);
  EXPECT_THROW(run("1 % 0"), QueryError);
}

TEST(Query, StringConcatenation) {
  EXPECT_EQ(run("'a' + 'b'").as_string(), "ab");
  EXPECT_EQ(run("'n=' + 3").as_string(), "n=3");
}

// -------------------------------------------------------------- comparison --

TEST(Query, Comparisons) {
  EXPECT_TRUE(boolean("1 < 2"));
  EXPECT_TRUE(boolean("2 <= 2"));
  EXPECT_FALSE(boolean("1 > 2"));
  EXPECT_TRUE(boolean("3 >= 2"));
  EXPECT_TRUE(boolean("2 == 2"));
  EXPECT_TRUE(boolean("2 != 3"));
  EXPECT_TRUE(boolean("2 <> 3"));
  EXPECT_TRUE(boolean("'a' < 'b'"));
  EXPECT_TRUE(boolean("'x' == 'x'"));
}

TEST(Query, EolStyleSingleEqualsIsEquality) {
  EXPECT_TRUE(boolean("2 = 2"));
  EXPECT_FALSE(boolean("'a' = 'b'"));
}

TEST(Query, OrderingMixedTypesThrows) {
  EXPECT_THROW(run("1 < 'a'"), QueryError);
}

// ------------------------------------------------------------------ logic --

TEST(Query, BooleanOperators) {
  EXPECT_TRUE(boolean("true and true"));
  EXPECT_FALSE(boolean("true and false"));
  EXPECT_TRUE(boolean("false or true"));
  EXPECT_TRUE(boolean("not false"));
  EXPECT_TRUE(boolean("false implies true"));
  EXPECT_TRUE(boolean("false implies false"));
  EXPECT_FALSE(boolean("true implies false"));
}

TEST(Query, Ternary) {
  EXPECT_DOUBLE_EQ(num("1 < 2 ? 10 : 20"), 10.0);
  EXPECT_DOUBLE_EQ(num("1 > 2 ? 10 : 20"), 20.0);
  EXPECT_EQ(run("true ? 'yes' : 'no'").as_string(), "yes");
}

TEST(Query, NonBooleanConditionThrows) { EXPECT_THROW(run("1 ? 2 : 3"), QueryError); }

// -------------------------------------------------------------- variables --

TEST(Query, VarBindingsAndReturn) {
  EXPECT_DOUBLE_EQ(num("var x = 2; var y = x * 3; return x + y;"), 8.0);
  EXPECT_DOUBLE_EQ(num("var x = 1; x"), 1.0);
}

TEST(Query, UnknownVariableThrows) { EXPECT_THROW(run("nope"), QueryError); }

TEST(Query, EnvironmentVariables) {
  Env env;
  env.set("fit", Value(10.0));
  EXPECT_DOUBLE_EQ(eval("fit * 2", env).as_number(), 20.0);
}

// -------------------------------------------------------------- functions --

TEST(Query, BuiltinFunctions) {
  EXPECT_DOUBLE_EQ(num("abs(-3)"), 3.0);
  EXPECT_DOUBLE_EQ(num("sqrt(9)"), 3.0);
  EXPECT_DOUBLE_EQ(num("pow(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(num("min(2, 3)"), 2.0);
  EXPECT_DOUBLE_EQ(num("max(2, 3)"), 3.0);
  EXPECT_DOUBLE_EQ(num("round(2.5)"), 3.0);
}

TEST(Query, HostFunctions) {
  Env env;
  env.define_function("twice", [](const std::vector<Value>& args) {
    return Value(args.at(0).as_number() * 2.0);
  });
  EXPECT_DOUBLE_EQ(eval("twice(21)", env).as_number(), 42.0);
}

TEST(Query, UnknownFunctionThrows) { EXPECT_THROW(run("nope(1)"), QueryError); }

// ------------------------------------------------------------- collections --

TEST(Query, SelectRejectCollect) {
  EXPECT_DOUBLE_EQ(num("Sequence{1,2,3,4}.select(x | x > 2).size()"), 2.0);
  EXPECT_DOUBLE_EQ(num("Sequence{1,2,3,4}.reject(x | x > 2).size()"), 2.0);
  EXPECT_DOUBLE_EQ(num("Sequence{1,2,3}.collect(x | x * x).sum()"), 14.0);
}

TEST(Query, Aggregations) {
  EXPECT_DOUBLE_EQ(num("Sequence{1,2,3}.sum()"), 6.0);
  EXPECT_DOUBLE_EQ(num("Sequence{1,2,3}.avg()"), 2.0);
  EXPECT_DOUBLE_EQ(num("Sequence{3,1,2}.min()"), 1.0);
  EXPECT_DOUBLE_EQ(num("Sequence{3,1,2}.max()"), 3.0);
  EXPECT_DOUBLE_EQ(num("Sequence{}.size()"), 0.0);
}

TEST(Query, Quantifiers) {
  EXPECT_TRUE(boolean("Sequence{1,2,3}.exists(x | x == 2)"));
  EXPECT_FALSE(boolean("Sequence{1,2,3}.exists(x | x == 9)"));
  EXPECT_TRUE(boolean("Sequence{1,2,3}.forAll(x | x > 0)"));
  EXPECT_FALSE(boolean("Sequence{1,2,3}.forAll(x | x > 1)"));
  EXPECT_DOUBLE_EQ(num("Sequence{1,2,3,4}.count(x | x % 2 == 0)"), 2.0);
}

TEST(Query, AccessorsAndMembership) {
  EXPECT_DOUBLE_EQ(num("Sequence{5,6}.first()"), 5.0);
  EXPECT_DOUBLE_EQ(num("Sequence{5,6}.last()"), 6.0);
  EXPECT_DOUBLE_EQ(num("Sequence{5,6,7}.at(1)"), 6.0);
  EXPECT_TRUE(boolean("Sequence{5,6}.includes(6)"));
  EXPECT_FALSE(boolean("Sequence{5,6}.includes(7)"));
  EXPECT_TRUE(boolean("Sequence{}.isEmpty()"));
  EXPECT_TRUE(boolean("Sequence{1}.notEmpty()"));
}

TEST(Query, EmptyCollectionAccessThrows) {
  EXPECT_THROW(run("Sequence{}.first()"), QueryError);
  EXPECT_THROW(run("Sequence{}.avg()"), QueryError);
  EXPECT_THROW(run("Sequence{1}.at(5)"), QueryError);
}

TEST(Query, SortByAndDistinct) {
  EXPECT_DOUBLE_EQ(num("Sequence{3,1,2}.sortBy(x | x).first()"), 1.0);
  EXPECT_DOUBLE_EQ(num("Sequence{3,1,2}.sortBy(x | 0 - x).first()"), 3.0);
  EXPECT_DOUBLE_EQ(num("Sequence{1,2,1,3,2}.distinct().size()"), 3.0);
}

TEST(Query, Flatten) {
  EXPECT_DOUBLE_EQ(num("Sequence{Sequence{1,2}, Sequence{3}}.flatten().sum()"), 6.0);
  EXPECT_DOUBLE_EQ(num("Sequence{1, Sequence{2,3}}.flatten().size()"), 3.0);
  EXPECT_DOUBLE_EQ(
      num("Sequence{1,2}.collect(x | Sequence{x, x * 10}).flatten().sum()"), 33.0);
}

TEST(Query, NestedLambdas) {
  EXPECT_DOUBLE_EQ(
      num("Sequence{1,2}.collect(x | Sequence{10,20}.select(y | y > x * 10).size()).sum()"),
      1.0);
}

TEST(Query, LambdaOutsideCollectionOpThrows) {
  EXPECT_THROW(run("abs(x | x)"), QueryError);
}

// ----------------------------------------------------------------- strings --

TEST(Query, StringMethods) {
  EXPECT_DOUBLE_EQ(num("'hello'.size()"), 5.0);
  EXPECT_EQ(run("'HeLLo'.toLower()").as_string(), "hello");
  EXPECT_EQ(run("'hello'.toUpper()").as_string(), "HELLO");
  EXPECT_TRUE(boolean("'hello'.contains('ell')"));
  EXPECT_TRUE(boolean("'hello'.startsWith('he')"));
  EXPECT_TRUE(boolean("'hello'.endsWith('lo')"));
  EXPECT_EQ(run("'  x '.trim()").as_string(), "x");
  EXPECT_DOUBLE_EQ(num("'3.5'.toNumber()"), 3.5);
}

TEST(Query, NumberMethods) {
  EXPECT_DOUBLE_EQ(num("(2.4).round()"), 2.0);
  EXPECT_DOUBLE_EQ(num("(2.4).ceil()"), 3.0);
  EXPECT_DOUBLE_EQ(num("(2.6).floor()"), 2.0);
  EXPECT_DOUBLE_EQ(num("(-2.5).abs()"), 2.5);
  EXPECT_EQ(run("(1.5).toString()").as_string(), "1.5");
}

// ----------------------------------------------------------------- objects --

TEST(Query, ObjectPropertiesAndMethods) {
  Env env;
  env.set("p", Value(ObjectPtr(std::make_shared<Point>(3.0, 4.0))));
  EXPECT_DOUBLE_EQ(eval("sqrt(p.x * p.x + p.y * p.y)", env).as_number(), 5.0);
  EXPECT_TRUE(eval("p.hasProperty('x')", env).as_bool());
  EXPECT_FALSE(eval("p.hasProperty('z')", env).as_bool());
  EXPECT_TRUE(eval("p.isTypeOf('Point')", env).as_bool());
  EXPECT_THROW(eval("p.z", env), QueryError);
}

TEST(Query, ObjectCollections) {
  Env env;
  Collection points;
  points.push_back(Value(ObjectPtr(std::make_shared<Point>(1.0, 0.0))));
  points.push_back(Value(ObjectPtr(std::make_shared<Point>(2.0, 0.0))));
  points.push_back(Value(ObjectPtr(std::make_shared<Point>(3.0, 0.0))));
  env.set("points", Value::collection(std::move(points)));
  EXPECT_DOUBLE_EQ(eval("points.select(p | p.x > 1).collect(p | p.x).sum()", env).as_number(),
                   5.0);
}

// ------------------------------------------------------------------ errors --

TEST(Query, SyntaxErrors) {
  EXPECT_THROW(run("1 +"), QueryError);
  EXPECT_THROW(run("var = 3; 1"), QueryError);
  EXPECT_THROW(run("(1"), QueryError);
  EXPECT_THROW(run("'unterminated"), QueryError);
  EXPECT_THROW(run("1 2"), QueryError);
  EXPECT_THROW(run("@"), QueryError);
}

TEST(Query, CommentsAreIgnored) {
  EXPECT_DOUBLE_EQ(num("-- comment\n1 + 1 // more\n"), 2.0);
}

// A parameterised sweep of expression/expected pairs.
struct Sample {
  const char* source;
  double expected;
};

class ExpressionSweep : public ::testing::TestWithParam<Sample> {};

TEST_P(ExpressionSweep, Evaluates) {
  EXPECT_DOUBLE_EQ(num(GetParam().source), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExpressionSweep,
    ::testing::Values(Sample{"2 + 3 * 4 - 5", 9.0}, Sample{"2 * (3 + 4)", 14.0},
                      Sample{"100 / 10 / 2", 5.0}, Sample{"2 + 2 == 4 ? 1 : 0", 1.0},
                      Sample{"Sequence{1,2,3,4,5}.select(x | x % 2 == 1).sum()", 9.0},
                      Sample{"Sequence{10,20}.collect(x | x / 10).max()", 2.0},
                      Sample{"var a = 5; var b = a * a; b - a", 20.0},
                      Sample{"not (1 > 2) and 3 >= 3 ? 42 : 0", 42.0}));
