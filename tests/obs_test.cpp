// The instrumentation layer (src/obs/): registry semantics, Prometheus and
// JSON exposition, the leveled logger, RAII spans, and the Chrome trace
// collector — including the two properties the design leans on:
//  - traces from a multi-threaded campaign are balanced per thread, and
//  - analysis artefacts are byte-identical with tracing on or off.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/obs/log.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"
#include "decisive/obs/trace.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;

namespace {

/// A small multi-fault circuit (same shape as bench_campaign's rail): every
/// resistor and diode is an FMEA candidate, so a campaign over it exercises
/// the worker pool and the solver from several threads.
sim::BuiltCircuit make_rail(int stages) {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int vin = c.node("vin");
  const int rail = c.node("rail");
  c.add_vsource("V1", vin, 0, 12.0);
  c.add_current_sensor("CS", vin, rail);
  built.observables.push_back("CS");
  for (int s = 0; s < stages; ++s) {
    const std::string id = std::to_string(s);
    const int tap = c.node("tap" + id);
    c.add_resistor("R" + id, rail, tap, 100.0 + s);
    c.add_diode("D" + id, tap, 0);
    c.add_resistor("RL" + id, tap, 0, 1000.0);
    c.add_voltage_sensor("VS" + id, tap, 0);
    built.observables.push_back("VS" + id);
    built.components.push_back({"R" + id, "Resistor", "R" + id});
    built.components.push_back({"D" + id, "Diode", "D" + id});
  }
  return built;
}

core::ReliabilityModel make_reliability() {
  core::ReliabilityModel reliability;
  reliability.add("Resistor", 5.0, {{"Open", 0.5}, {"Short", 0.3}, {"Drift", 0.2}});
  reliability.add("Diode", 10.0, {{"Open", 0.3}, {"Short", 0.7}});
  return reliability;
}

std::string run_campaign_csv(int jobs) {
  core::CircuitFmeaOptions options;
  options.jobs = jobs;
  const auto result =
      core::analyze_circuit(make_rail(6), make_reliability(), nullptr, options);
  return write_csv(result.to_csv());
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, LookupIsIdempotentWithStableReferences) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x_total");
  a.add(2);
  obs::Counter& b = registry.counter("x_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 2u);

  obs::Histogram& h = registry.histogram("h_seconds", {1.0, 2.0});
  // Bounds are only consulted on first registration.
  obs::Histogram& h2 = registry.histogram("h_seconds", {9.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(ObsRegistry, HistogramBucketsAndPercentiles) {
  obs::Histogram h({0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket le=0.1
  h.observe(0.5);    // bucket le=1
  h.observe(0.5);    // bucket le=1
  h.observe(100.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 101.05, 1e-9);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 2, 0, 1}));
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
  // The overflow bucket has no upper bound; the estimate saturates at the
  // largest finite bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(ObsRegistry, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), AnalysisError);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), AnalysisError);
}

TEST(ObsRegistry, PrometheusExposition) {
  obs::Registry registry;
  registry.counter("t_total").add(3);
  registry.gauge("g").set(2.5);
  obs::Histogram& h = registry.histogram("h_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE t_total counter\nt_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge\ng 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE h_seconds histogram\n"), std::string::npos);
  // Bucket counts are cumulative, closed by the +Inf bucket.
  EXPECT_NE(text.find("h_seconds_bucket{le=\"0.1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("h_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("h_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("h_seconds_sum 5.55\n"), std::string::npos);
}

TEST(ObsRegistry, JsonSnapshotParsesAndCarriesPercentiles) {
  obs::Registry registry;
  registry.counter("c_total").add(7);
  obs::Histogram& h = registry.histogram("h_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);

  const json::Value doc = json::parse(registry.to_json());
  ASSERT_TRUE(doc.is_object());
  const json::Object& root = doc.as_object();
  EXPECT_DOUBLE_EQ(root.at("counters").as_object().at("c_total").as_number(), 7.0);
  const json::Object& hist = root.at("histograms").as_object().at("h_seconds").as_object();
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("p50").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("p99").as_number(), 2.0);
}

TEST(ObsRegistry, SanitizesHostileMetricNames) {
  // A quote/newline name must not be able to corrupt the Prometheus text or
  // a BENCH_*.json snapshot: registration canonicalises to [a-zA-Z0-9_:].
  EXPECT_EQ(obs::sanitize_metric_name("ok_name:v1"), "ok_name:v1");
  EXPECT_EQ(obs::sanitize_metric_name("evil\"} 999\ninjected 1"),
            "evil___999_injected_1");
  EXPECT_EQ(obs::sanitize_metric_name("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(obs::sanitize_metric_name(""), "_");

  obs::Registry registry;
  registry.counter("evil\"}\ntotal").add(1);
  const std::string text = registry.to_prometheus();
  EXPECT_EQ(text.find('"'), std::string::npos);
  EXPECT_NE(text.find("evil___total 1\n"), std::string::npos);
  // The JSON exposition stays parseable with the hostile name registered.
  const json::Value doc = json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(doc.as_object().at("counters").as_object().at("evil___total").as_number(),
                   1.0);
  // Two spellings that sanitize identically alias the same metric.
  EXPECT_EQ(&registry.counter("evil\"}\ntotal"), &registry.counter("evil___total"));
}

TEST(ObsRegistry, JsonSnapshotCarriesBucketLevelData) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("h_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  registry.gauge("g").set(4.0);

  const json::Value doc = json::parse(registry.to_json());
  const json::Object& root = doc.as_object();
  const json::Object& hist = root.at("histograms").as_object().at("h_seconds").as_object();
  const json::Array& bounds = hist.at("bounds").as_array();
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(bounds[1].as_number(), 2.0);
  const json::Array& buckets = hist.at("bucket_counts").as_array();
  ASSERT_EQ(buckets.size(), 3u);  // two finite buckets + overflow
  EXPECT_DOUBLE_EQ(buckets[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[2].as_number(), 1.0);
  // Gauges carry their last-write wall-clock stamp for cross-shard merging.
  const json::Object& gauge = root.at("gauges").as_object().at("g").as_object();
  EXPECT_DOUBLE_EQ(gauge.at("value").as_number(), 4.0);
  EXPECT_GT(gauge.at("updated_unix_ms").as_number(), 0.0);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("c_total");
  c.add(5);
  registry.gauge("g").set(1.0);
  registry.histogram("h_seconds").observe(0.1);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&registry.counter("c_total"), &c);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_EQ(registry.histogram("h_seconds").count(), 0u);
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

TEST(ObsLog, ParsesLevelsWithFallback) {
  EXPECT_EQ(obs::parse_log_level("debug", obs::LogLevel::Warn), obs::LogLevel::Debug);
  EXPECT_EQ(obs::parse_log_level("ERROR", obs::LogLevel::Warn), obs::LogLevel::Error);
  EXPECT_EQ(obs::parse_log_level("off", obs::LogLevel::Warn), obs::LogLevel::Off);
  EXPECT_EQ(obs::parse_log_level("bogus", obs::LogLevel::Info), obs::LogLevel::Info);
  EXPECT_EQ(obs::parse_log_level("", obs::LogLevel::Warn), obs::LogLevel::Warn);
}

TEST(ObsLog, ThresholdGatesLevels) {
  const obs::LogLevel before = obs::log_threshold();
  obs::set_log_threshold(obs::LogLevel::Warn);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Debug));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Info));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Warn));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Error));
  obs::set_log_threshold(obs::LogLevel::Off);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Error));
  obs::set_log_threshold(before);
}

// ---------------------------------------------------------------------------
// Spans and the trace collector
// ---------------------------------------------------------------------------

TEST(ObsSpan, FeedsLatencyHistogram) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("span_seconds");
  {
    obs::Span span("test.work", &h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ObsTrace, DisabledCollectorRecordsNothing) {
  auto& collector = obs::TraceCollector::global();
  collector.disable();
  const std::size_t before = collector.event_count();
  {
    obs::Span span("test.untraced");
  }
  EXPECT_EQ(collector.event_count(), before);
}

TEST(ObsTrace, SingleThreadSpansNestAndBalance) {
  auto& collector = obs::TraceCollector::global();
  collector.enable();
  {
    obs::Span outer("test.outer");
    obs::Span inner("test.inner");
  }
  collector.disable();
  EXPECT_EQ(collector.event_count(), 4u);
  const std::string trace = collector.to_chrome_json();
  EXPECT_EQ(obs::validate_chrome_trace(trace), "");
  EXPECT_NE(trace.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"test.inner\""), std::string::npos);
}

TEST(ObsTrace, EnableStartsANewTrace) {
  auto& collector = obs::TraceCollector::global();
  collector.enable();
  {
    obs::Span span("test.first");
  }
  collector.enable();  // drops the previous events
  {
    obs::Span span("test.second");
  }
  collector.disable();
  EXPECT_EQ(collector.event_count(), 2u);
  EXPECT_EQ(collector.to_chrome_json().find("test.first"), std::string::npos);
}

TEST(ObsTrace, MultiThreadedCampaignTraceIsBalanced) {
  auto& collector = obs::TraceCollector::global();
  collector.enable();
  (void)run_campaign_csv(/*jobs=*/4);
  collector.disable();
  const std::string trace = collector.to_chrome_json();
  EXPECT_EQ(obs::validate_chrome_trace(trace), "");
  EXPECT_NE(trace.find("\"name\":\"campaign.task\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"solver.dc\""), std::string::npos);
  // Worker threads show up as distinct timelines.
  EXPECT_NE(trace.find("\"tid\":2"), std::string::npos);
}

TEST(ObsTrace, ArtefactsAreByteIdenticalWithTracingOnOrOff) {
  auto& collector = obs::TraceCollector::global();
  collector.disable();
  const std::string untraced_serial = run_campaign_csv(1);
  const std::string untraced_parallel = run_campaign_csv(4);

  collector.enable();
  const std::string traced_serial = run_campaign_csv(1);
  const std::string traced_parallel = run_campaign_csv(4);
  collector.disable();

  EXPECT_EQ(untraced_serial, traced_serial);
  EXPECT_EQ(untraced_parallel, traced_parallel);
  EXPECT_EQ(untraced_serial, untraced_parallel);
}

// ---------------------------------------------------------------------------
// The trace validator itself
// ---------------------------------------------------------------------------

TEST(ObsTraceValidator, RejectsMalformedDocuments) {
  EXPECT_NE(obs::validate_chrome_trace("not json"), "");
  EXPECT_NE(obs::validate_chrome_trace("{}"), "");
  EXPECT_NE(obs::validate_chrome_trace("{\"traceEvents\": 3}"), "");
}

TEST(ObsTraceValidator, AcceptsAnEmptyTrace) {
  EXPECT_EQ(obs::validate_chrome_trace("{\"traceEvents\":[]}"), "");
}

TEST(ObsTraceValidator, RejectsUnbalancedEvents) {
  const char* unclosed =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1}"
      "]}";
  EXPECT_NE(obs::validate_chrome_trace(unclosed), "");

  const char* crossed =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1},"
      "{\"name\":\"b\",\"ph\":\"B\",\"ts\":2,\"pid\":1,\"tid\":1},"
      "{\"name\":\"a\",\"ph\":\"E\",\"ts\":3,\"pid\":1,\"tid\":1},"
      "{\"name\":\"b\",\"ph\":\"E\",\"ts\":4,\"pid\":1,\"tid\":1}"
      "]}";
  EXPECT_NE(obs::validate_chrome_trace(crossed), "");
}

TEST(ObsTraceValidator, RejectsNonMonotonicTimestampsPerThread) {
  const char* backwards =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"B\",\"ts\":5,\"pid\":1,\"tid\":1},"
      "{\"name\":\"a\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}"
      "]}";
  EXPECT_NE(obs::validate_chrome_trace(backwards), "");
}
