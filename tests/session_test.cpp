// Tests for the incremental analysis engine (src/session): content
// fingerprints, the fingerprint-keyed result cache (including corruption
// tolerance of the on-disk format), the AnalysisSession edit→reanalyze loop
// — property-tested byte-identical against cold runs under random edit
// sequences — and the `same session` line-protocol service.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/model/xmi.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/session/cache.hpp"
#include "decisive/session/fingerprint.hpp"
#include "decisive/session/incremental.hpp"
#include "decisive/session/service.hpp"

using namespace decisive;
using namespace decisive::session;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

std::string csv_of(const core::FmedaResult& result) { return write_csv(result.to_csv()); }

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(FingerprintTest, HexRoundTrip) {
  const Fingerprint fp{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(to_hex(fp), "0123456789abcdef:fedcba9876543210");
  EXPECT_EQ(fingerprint_from_hex(to_hex(fp)), fp);
  EXPECT_THROW((void)fingerprint_from_hex("no"), ParseError);
  EXPECT_THROW((void)fingerprint_from_hex("0123456789abcdef-fedcba9876543210"), ParseError);
  EXPECT_THROW((void)fingerprint_from_hex("0123456789abcdeX:fedcba9876543210"), ParseError);
}

TEST(FingerprintTest, DeterministicAcrossIdenticalRebuilds) {
  const auto a = core::make_scaled_architecture(3, 2);
  const auto b = core::make_scaled_architecture(3, 2);
  const core::GraphFmeaOptions options;
  const auto fa = fingerprint_model(*a.model, a.system, options);
  const auto fb = fingerprint_model(*b.model, b.system, options);
  ASSERT_FALSE(fa.unit.empty());
  EXPECT_EQ(fa.unit, fb.unit);
  EXPECT_EQ(fa.subtree, fb.subtree);
  EXPECT_EQ(fa.path, fb.path);
}

TEST(FingerprintTest, LeafEditDirtiesExactlyItsAnalysisUnit) {
  const auto sys = core::make_scaled_architecture(3, 2);
  SsamModel& m = *sys.model;
  const core::GraphFmeaOptions options;
  const auto before = fingerprint_model(m, sys.system, options);

  // A leaf's FIT is read by the analysis *of its parent unit*, so only that
  // unit's fingerprint may move.
  const ObjectId unit1 = m.find_by_name(ssam::cls::Component, "Unit1");
  const ObjectId leaf = m.find_by_name(ssam::cls::Component, "Unit1.Leaf0");
  ASSERT_NE(leaf, model::kNullObject);
  m.obj(leaf).set_real("fit", 999.0);
  const auto after = fingerprint_model(m, sys.system, options);

  const auto changed = fingerprint_diff(before, after);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed.front(), unit1);
  // The subtree hash still propagates to the root, so a root-level
  // comparison notices the edit.
  EXPECT_NE(before.subtree.at(sys.system), after.subtree.at(sys.system));
  EXPECT_EQ(before.unit.at(sys.system), after.unit.at(sys.system));
}

TEST(FingerprintTest, OptionsAreFoldedIntoEveryUnit) {
  const auto sys = core::make_scaled_architecture(2, 2);
  core::GraphFmeaOptions a;
  core::GraphFmeaOptions b;
  b.loss_natures.push_back("erroneous");
  const auto fa = fingerprint_model(*sys.model, sys.system, a);
  const auto fb = fingerprint_model(*sys.model, sys.system, b);
  // Different analysis settings must never share cache entries: every unit
  // hash moves.
  EXPECT_EQ(fingerprint_diff(fa, fb).size(), fa.unit.size());
}

// ---------------------------------------------------------------------------
// Incremental session vs cold oracle
// ---------------------------------------------------------------------------

TEST(IncrementalTest, FirstRunIsAllMissesAndMatchesCold) {
  auto sys = core::make_scaled_architecture(4, 3);
  AnalysisSession session(*sys.model, sys.system);
  const std::string incremental = csv_of(session.reanalyze());
  EXPECT_EQ(incremental, csv_of(session.cold_analyze()));
  EXPECT_EQ(session.last_stats().cache_hits, 0u);
  EXPECT_EQ(session.last_stats().cache_misses, session.last_stats().units);
}

TEST(IncrementalTest, UnchangedModelShortCircuits) {
  auto sys = core::make_scaled_architecture(4, 3);
  AnalysisSession session(*sys.model, sys.system);
  const std::string first = csv_of(session.reanalyze());
  const std::string second = csv_of(session.reanalyze());
  EXPECT_EQ(first, second);
  EXPECT_TRUE(session.last_stats().short_circuited);
  EXPECT_EQ(session.last_stats().cache_hits, session.last_stats().units);
}

TEST(IncrementalTest, SingleEditOnScalabilityModelHitsOverNinetyPercent) {
  // The ISSUE acceptance bar: one component edit on the Table-VI-scale
  // subject replays >90% of the units from the cache, byte-identically.
  auto sys = core::make_scaled_architecture(40, 16);
  AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();

  const ObjectId leaf = sys.model->find_by_name(ssam::cls::Component, "Unit20.Leaf3");
  ASSERT_NE(leaf, model::kNullObject);
  sys.model->obj(leaf).set_real("fit", 123.0);
  session.note_edit(leaf);

  const std::string incremental = csv_of(session.reanalyze());
  const auto& stats = session.last_stats();
  EXPECT_FALSE(stats.short_circuited);
  EXPECT_GT(stats.hit_rate(), 0.9) << "hits " << stats.cache_hits << "/" << stats.units;
  EXPECT_EQ(incremental, csv_of(session.cold_analyze()));
}

TEST(IncrementalTest, RandomEditSequencesStayByteIdenticalToCold) {
  // Seeded property test: whatever sequence of FIT edits, new failure
  // modes, mechanism deployments, rewires and renames is applied — with or
  // without note_edit announcements — the incremental FMEDA equals a cold
  // run on the same state, byte for byte.
  std::mt19937 rng(20260805u);
  auto sys = core::make_scaled_architecture(5, 4);
  SsamModel& m = *sys.model;
  AnalysisSession session(m, sys.system);
  session.reanalyze();

  std::vector<ObjectId> components;
  for (const ObjectId c : m.all_components_under(sys.system)) components.push_back(c);
  ASSERT_FALSE(components.empty());

  size_t total_hits = 0;
  for (int step = 0; step < 30; ++step) {
    const ObjectId target = components[rng() % components.size()];
    switch (rng() % 5) {
      case 0:
        m.obj(target).set_real("fit", static_cast<double>(1 + rng() % 500));
        break;
      case 1:
        m.add_failure_mode(target, "FM-" + std::to_string(step),
                           0.1 + static_cast<double>(rng() % 9) / 10.0, "lossOfFunction");
        break;
      case 2:
        m.add_safety_mechanism(target, "SM-" + std::to_string(step),
                               0.5 + static_cast<double>(rng() % 5) / 10.0, 1.0,
                               model::kNullObject);
        break;
      case 3: {
        // Rewire inside a random composite: duplicate one of its existing
        // relationships' endpoints into a fresh connection.
        const auto& rels = m.obj(target).refs("relationships");
        if (rels.empty()) continue;
        const auto& rel = m.obj(rels[rng() % rels.size()]);
        m.connect(target, rel.ref("source"), rel.ref("target"));
        break;
      }
      default:
        m.obj(target).set_string("name", "R" + std::to_string(step));
        break;
    }
    // Half the edits are "silent": the fingerprint diff must catch them
    // without an announcement.
    if (rng() % 2 == 0) session.note_edit(target);

    const std::string incremental = csv_of(session.reanalyze());
    ASSERT_EQ(incremental, csv_of(session.cold_analyze())) << "diverged at step " << step;
    total_hits += session.last_stats().cache_hits;
  }
  // The loop must actually exercise the cache, not just bypass it.
  EXPECT_GT(total_hits, 0u);
}

// ---------------------------------------------------------------------------
// Cache persistence + poisoning
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, PersistedCacheWarmsAFreshSession) {
  const std::string path = temp_path("decisive_session_cache_warm.txt");
  {
    auto sys = core::make_scaled_architecture(4, 3);
    AnalysisSession session(*sys.model, sys.system);
    session.reanalyze();
    EXPECT_GT(session.cache().size(), 0u);
    session.cache().save_file(path);
  }

  // An identically rebuilt model (deterministic object ids) in a new
  // process-equivalent: every unit replays from the loaded cache.
  auto sys = core::make_scaled_architecture(4, 3);
  AnalysisSession session(*sys.model, sys.system);
  const auto report = session.cache().load_file(path);
  ASSERT_TRUE(report.loaded) << report.note;
  EXPECT_GT(report.entries, 0u);

  const std::string incremental = csv_of(session.reanalyze());
  EXPECT_EQ(session.last_stats().cache_misses, 0u);
  EXPECT_EQ(session.last_stats().cache_hits, session.last_stats().units);
  EXPECT_EQ(incremental, csv_of(session.cold_analyze()));
  std::remove(path.c_str());
}

TEST(ResultCacheTest, TruncatedFileIsRejectedAndRebuilt) {
  const std::string path = temp_path("decisive_session_cache_trunc.txt");
  auto sys = core::make_scaled_architecture(3, 2);
  AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();
  session.cache().save_file(path);

  const std::string content = read_file(path);
  ASSERT_GT(content.size(), 40u);
  write_file(path, content.substr(0, content.size() - 40));

  ResultCache cache;
  const auto report = cache.load_file(path);
  EXPECT_FALSE(report.loaded);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(report.note.find("rebuilding"), std::string::npos) << report.note;
  std::remove(path.c_str());
}

TEST(ResultCacheTest, GarbledByteIsRejectedAndRebuilt) {
  const std::string path = temp_path("decisive_session_cache_flip.txt");
  auto sys = core::make_scaled_architecture(3, 2);
  AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();
  session.cache().save_file(path);

  std::string content = read_file(path);
  content[content.size() / 2] ^= 0x20;  // one bit flip mid-payload
  write_file(path, content);

  ResultCache cache;
  const auto report = cache.load_file(path);
  EXPECT_FALSE(report.loaded);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

TEST(ResultCacheTest, ForeignContentAndMissingFileAreHandled) {
  const std::string path = temp_path("decisive_session_cache_foreign.txt");
  write_file(path, "hello, I am definitely not a result cache\n");
  ResultCache cache;
  EXPECT_FALSE(cache.load_file(path).loaded);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());

  EXPECT_FALSE(cache.load_file(temp_path("decisive_no_such_cache.txt")).loaded);
}

TEST(ResultCacheTest, PoisonedCacheNeverCorruptsTheAnalysis) {
  // Even if a poisoned file somehow carried a valid checksum, the session
  // must still produce a correct FMEDA — corrupt *content* is discarded at
  // load, and a discarded cache only costs misses.
  const std::string path = temp_path("decisive_session_cache_poison.txt");
  auto sys = core::make_scaled_architecture(3, 2);
  AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();
  session.cache().save_file(path);

  std::string content = read_file(path);
  write_file(path, content.substr(0, content.size() / 2));  // hard truncation

  auto fresh_sys = core::make_scaled_architecture(3, 2);
  AnalysisSession fresh(*fresh_sys.model, fresh_sys.system);
  const auto report = fresh.cache().load_file(path);
  EXPECT_FALSE(report.loaded);
  EXPECT_EQ(csv_of(fresh.reanalyze()), csv_of(fresh.cold_analyze()));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Service protocol
// ---------------------------------------------------------------------------

TEST(ServiceTest, ScriptedEditLoopOverOneResidentModel) {
  ServiceOptions options;
  options.model_path = DECISIVE_ASSETS_DIR "/brake_chain.ssam";
  options.component = "BrakeChain";

  std::istringstream in(
      "# comment lines and blanks are ignored\n"
      "\n"
      "reanalyze\n"
      "set-fit Sensor 120\n"
      "reanalyze\n"
      "impact Sensor\n"
      "result\n"
      "metrics\n"
      "stats\n"
      "bogus-command\n"
      "quit\n");
  std::ostringstream out;
  EXPECT_EQ(run_service(in, out, options), 0);

  const std::string text = out.str();
  EXPECT_NE(text.find("same session ready"), std::string::npos);
  EXPECT_NE(text.find("fit(Sensor) = 120"), std::string::npos);
  EXPECT_NE(text.find("hit-rate"), std::string::npos);
  EXPECT_NE(text.find("Impact of changing 'Sensor'"), std::string::npos);
  // `result` replays the last SPFM / ASIL summary.
  EXPECT_NE(text.find("\nspfm "), std::string::npos);
  EXPECT_NE(text.find("\nasil "), std::string::npos);
  // `metrics` answers a Prometheus dump of the instrumentation registry,
  // cache hit/miss counters and request latency histogram included.
  EXPECT_NE(text.find("# TYPE decisive_session_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("decisive_session_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE decisive_session_request_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("decisive_session_request_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("error: unknown command 'bogus-command'"), std::string::npos);
  // Every non-error request ends in an ok status line.
  EXPECT_NE(text.find("\nok\n"), std::string::npos);
}

TEST(ServiceTest, FtaRequestIsFingerprintCached) {
  ServiceOptions options;
  options.model_path = DECISIVE_ASSETS_DIR "/brake_chain.ssam";
  options.component = "BrakeChain";

  auto& registry = obs::Registry::global();
  const auto hits0 = registry.counter("decisive_fta_request_cache_hits_total").value();
  const auto misses0 = registry.counter("decisive_fta_request_cache_misses_total").value();

  // Same request twice → one synthesis, one replay. An edit invalidates the
  // subtree fingerprint, so the third request recomputes; so does a changed
  // parameter set.
  std::istringstream in(
      "fta\n"
      "fta\n"
      "set-fit Sensor 120\n"
      "fta\n"
      "fta 5000\n"
      "quit\n");
  std::ostringstream out;
  EXPECT_EQ(run_service(in, out, options), 0);

  EXPECT_EQ(registry.counter("decisive_fta_request_cache_hits_total").value() - hits0, 1u);
  EXPECT_EQ(registry.counter("decisive_fta_request_cache_misses_total").value() - misses0,
            3u);
  const std::string text = out.str();
  EXPECT_NE(text.find("cut-sets "), std::string::npos);
  EXPECT_NE(text.find("importance "), std::string::npos);
  EXPECT_NE(text.find("mission 5000h"), std::string::npos);
}

TEST(ServiceTest, RequestsWithoutAModelFailSoftly) {
  std::istringstream in("reanalyze\nload nowhere.ssam Nothing\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(run_service(in, out, {}), 0);
  EXPECT_NE(out.str().find("error: no model loaded"), std::string::npos);
}

TEST(ServiceTest, FailedInitialLoadReturnsTwo) {
  ServiceOptions options;
  options.model_path = temp_path("decisive_no_such_model.ssam");
  options.component = "X";
  std::istringstream in("quit\n");
  std::ostringstream out;
  EXPECT_EQ(run_service(in, out, options), 2);
}

TEST(ServiceTest, CacheSurvivesAcrossServiceRuns) {
  const std::string model_path = temp_path("decisive_service_model.ssam");
  const std::string cache_path = temp_path("decisive_service_cache.txt");
  {
    auto sys = core::make_scaled_architecture(3, 2);
    model::save_xmi_file(model_path, sys.model->repo(), sys.model->meta());
  }

  std::ostringstream first_out;
  {
    ServiceOptions options;
    options.model_path = model_path;
    options.component = "System";
    std::istringstream in("reanalyze\nsave-cache " + cache_path + "\nquit\n");
    EXPECT_EQ(run_service(in, first_out, options), 0);
    EXPECT_NE(first_out.str().find("cache saved"), std::string::npos);
  }

  ServiceOptions options;
  options.model_path = model_path;
  options.component = "System";
  options.cache_path = cache_path;
  std::istringstream in("reanalyze\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(run_service(in, out, options), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("cache loaded"), std::string::npos);
  EXPECT_NE(text.find("misses 0"), std::string::npos) << text;
  std::remove(model_path.c_str());
  std::remove(cache_path.c_str());
}

TEST(ServiceTest, ParetoAnswersTheDeploymentFront) {
  const auto catalogue_path = temp_path("decisive-service-catalogue.csv");
  write_file(catalogue_path,
             "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\n"
             "Sensor,No output,Redundant sensor,95%,4.0\n"
             "Sensor,No output,Heartbeat check,80%,1.0\n"
             "Driver,Open,Duplex driver,90%,2.0\n");

  ServiceOptions options;
  options.model_path = DECISIVE_ASSETS_DIR "/brake_chain.ssam";
  options.component = "BrakeChain";

  // `pareto` works without an explicit reanalyze: the service runs one
  // itself when no FMEA result is resident yet.
  std::istringstream in("pareto " + catalogue_path + "\n" +
                        "pareto " + catalogue_path + " 0.5\n" +
                        "pareto\n"
                        "quit\n");
  std::ostringstream out;
  EXPECT_EQ(run_service(in, out, options), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("Cost(hrs),SPFM,ASIL,Choices,Deployment"), std::string::npos) << text;
  EXPECT_NE(text.find("Sensor/No output=Redundant sensor; Driver/Open=Duplex driver"),
            std::string::npos);
  EXPECT_NE(text.find("front: 4 deployment(s)"), std::string::npos);
  // Epsilon coarsening may only shrink the front; the zero-cost point stays.
  EXPECT_NE(text.find("\n0,"), std::string::npos);
  // Missing catalogue argument is a soft request error, not a crash.
  EXPECT_NE(text.find("usage: pareto"), std::string::npos);
  std::remove(catalogue_path.c_str());
}

TEST(ResultCacheTest, SaveIsWriteTempThenRenameNeverInPlace) {
  // The cache persists via atomic_write_file: the payload lands in a
  // sibling temp file first and replaces the target in one rename, so a
  // reader (or a crash — see the CLI-level SIGKILL test) can never observe a
  // half-written cache. After a successful save no temp sibling remains.
  const std::string dir = temp_path("decisive_cache_atomic_dir");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/cache.txt";
  write_file(path, "previous generation\n");

  auto sys = core::make_scaled_architecture(3, 2);
  AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();
  session.cache().save_file(path);

  size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    entries++;
    EXPECT_EQ(entry.path().filename().string(), "cache.txt") << entry.path();
  }
  EXPECT_EQ(entries, 1u);

  // The replacement is complete (old bytes fully gone) and checksummed: the
  // last line seals everything above it.
  const std::string content = read_file(path);
  EXPECT_EQ(content.find("previous generation"), std::string::npos);
  const auto last_line = content.rfind("checksum ", content.size() - 2);
  ASSERT_NE(last_line, std::string::npos);
  ResultCache cache;
  EXPECT_TRUE(cache.load_file(path).loaded);
  std::filesystem::remove_all(dir);
}

TEST(ServiceTest, CampaignRequestLeavesTheResidentSessionUntouched) {
  ServiceOptions options;
  options.model_path = DECISIVE_ASSETS_DIR "/brake_chain.ssam";
  options.component = "BrakeChain";

  const std::string journal = temp_path("decisive_service_campaign.journal");
  std::remove(journal.c_str());
  const std::string mdl = DECISIVE_ASSETS_DIR "/power_supply.mdl";
  const std::string workbook = DECISIVE_ASSETS_DIR "/reliability_workbook";

  // Two journaled campaigns (the second replays every task from the first's
  // checkpoints) plus a plain one, interleaved with the resident incremental
  // session — which must keep answering reanalyze as if no campaign ran.
  std::istringstream in("reanalyze\n"
                        "campaign " + mdl + " " + workbook + " " + journal + "\n" +
                        "campaign " + mdl + " " + workbook + " " + journal + "\n" +
                        "campaign " + mdl + " " + workbook + "\n" +
                        "campaign too-few\n"
                        "reanalyze\nstats\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(run_service(in, out, options), 0);
  const std::string text = out.str();

  const auto first = text.find("rows 9 spfm");
  const auto second = text.find("rows 9 spfm", first + 1);
  const auto third = text.find("rows 9 spfm", second + 1);
  EXPECT_NE(first, std::string::npos) << text;
  EXPECT_NE(second, std::string::npos) << text;
  EXPECT_NE(third, std::string::npos) << text;
  // Replayed and fresh campaigns answer identically (same summary lines).
  EXPECT_NE(text.find("campaign 9 converged"), std::string::npos) << text;
  EXPECT_NE(text.find("usage: campaign"), std::string::npos);
  // The resident session still reanalyzes (campaigns bypass its cache).
  EXPECT_NE(text.find("spfm"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(journal));
  std::remove(journal.c_str());
}
