// Tests for GSN rendering of assurance cases and the workbook report export.
#include <gtest/gtest.h>

#include <filesystem>

#include "decisive/assurance/gsn.hpp"
#include "decisive/core/report.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/query/query.hpp"

using namespace decisive;
using namespace decisive::assurance;

namespace {

AssuranceCase sample_case() {
  AssuranceCase ac("demo");
  ac.add_claim("G1", "System is acceptably safe");
  ac.add_context("C1", "Operating context", "G1");
  ac.add_strategy("S1", "Argue over metrics", "G1");
  ac.add_claim("G2", "SPFM target met", "S1");
  ac.add_artifact("E1", "FMEDA evidence", "G2", "/tmp/nonexistent.csv", "csv", "true");
  return ac;
}

}  // namespace

TEST(Gsn, DotContainsAllNodesAndShapes) {
  const auto dot = to_gsn_dot(sample_case());
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("\"G1\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"S1\" [shape=parallelogram"), std::string::npos);
  EXPECT_NE(dot.find("\"E1\" [shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("rounded"), std::string::npos);  // context styling
  EXPECT_NE(dot.find("\"G1\" -> \"S1\""), std::string::npos);
  // InContextOf edges are hollow/dashed.
  EXPECT_NE(dot.find("\"G1\" -> \"C1\" [arrowhead=empty"), std::string::npos);
}

TEST(Gsn, DotColorsByEvaluationState) {
  const auto ac = sample_case();
  const auto report = evaluate(ac);  // E1's file is missing -> defeated chain
  const auto dot = to_gsn_dot(ac, &report);
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);
}

TEST(Gsn, DotEscapesQuotes) {
  AssuranceCase ac("q");
  ac.add_claim("G1", "claim with \"quotes\"");
  const auto dot = to_gsn_dot(ac);
  EXPECT_NE(dot.find("\\\"quotes\\\""), std::string::npos);
}

TEST(Gsn, TextOutlineShowsHierarchyAndStates) {
  const auto ac = sample_case();
  const auto text = to_gsn_text(ac);
  EXPECT_NE(text.find("[G] G1"), std::string::npos);
  EXPECT_NE(text.find("  [S] S1"), std::string::npos);
  EXPECT_NE(text.find("    [G] G2"), std::string::npos);
  EXPECT_NE(text.find("(Sn) E1"), std::string::npos);

  const auto report = evaluate(ac);
  const auto annotated = to_gsn_text(ac, &report);
  EXPECT_NE(annotated.find("<Defeated>"), std::string::npos);
}

TEST(Gsn, TextSurvivesCyclesAndDanglingRefs) {
  AssuranceCase ac("odd");
  Node& g1 = ac.add_claim("G1", "top");
  g1.children.push_back("G1");     // self-cycle
  g1.children.push_back("ghost");  // dangling
  const auto text = to_gsn_text(ac);
  EXPECT_NE(text.find("dangling"), std::string::npos);
}

// ------------------------------------------------------------------ report --

TEST(Report, MetricsTableValues) {
  core::FmedaResult result;
  core::FmedaRow row;
  row.component = "D1";
  row.component_type = "Diode";
  row.fit = 10;
  row.failure_mode = "Open";
  row.distribution = 0.3;
  row.safety_related = true;
  result.rows.push_back(row);
  const auto metrics = core::metrics_table(result);
  EXPECT_EQ(metrics.at(2, "Value"), core::achieved_asil(result.spfm()));
  EXPECT_EQ(metrics.at(5, "Value"), "1");  // one safety-related component
}

TEST(Report, WorkbookRoundTripsThroughDriverAndQueries) {
  core::FmedaResult result;
  result.warnings.push_back("something to review");
  core::FmedaRow row;
  row.component = "MC1";
  row.component_type = "MC";
  row.fit = 300;
  row.failure_mode = "RAM Failure";
  row.distribution = 1.0;
  row.safety_related = true;
  row.safety_mechanism = "ECC";
  row.sm_coverage = 0.99;
  result.rows.push_back(row);

  const auto dir = std::filesystem::temp_directory_path() / "decisive-report-test";
  std::filesystem::remove_all(dir);
  core::write_report_workbook(dir.string(), result);

  const auto workbook = drivers::DriverRegistry::global().open(dir.string());
  EXPECT_EQ(workbook->table_names().size(), 3u);
  query::Env env;
  workbook->bind(env);
  EXPECT_DOUBLE_EQ(
      query::eval("rows('FMEDA').first().Single_Point_FIT", env).as_number(), 3.0);
  // SPFM = 1 - 3/300 = 99% -> ASIL-D territory.
  EXPECT_EQ(query::eval("rows('Metrics').select(m | m.Metric == 'Achieved_ASIL')"
                        ".first().Value",
                        env)
                .as_string(),
            "ASIL-D");
  EXPECT_DOUBLE_EQ(query::eval("rows('Warnings').size()", env).as_number(), 1.0);
  std::filesystem::remove_all(dir);
}
