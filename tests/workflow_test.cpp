// Tests for the DECISIVE process engine (Steps 1-5 and the iteration loop).
#include <gtest/gtest.h>

#include "decisive/core/workflow.hpp"

using namespace decisive;
using namespace decisive::core;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

struct ProcessFixture {
  SsamModel model;
  DecisiveProcess process{model, "demo-system"};
  ObjectId in = model::kNullObject;
  ObjectId out = model::kNullObject;

  struct Sub {
    ObjectId comp, in, out;
  };
  Sub leaf(const std::string& name, const std::string& block_type) {
    Sub s;
    s.comp = model.create_component(process.system(), name);
    model.obj(s.comp).set_string("blockType", block_type);
    s.in = model.add_io_node(s.comp, name + ".in", "in");
    s.out = model.add_io_node(s.comp, name + ".out", "out");
    return s;
  }

  /// A serial two-component design: sensor -> mcu.
  void build_serial_design() {
    in = model.add_io_node(process.system(), "in", "in");
    out = model.add_io_node(process.system(), "out", "out");
    const auto sensor = leaf("S1", "Sensor");
    const auto mcu = leaf("M1", "MC");
    model.connect(process.system(), in, sensor.in);
    model.connect(process.system(), sensor.out, mcu.in);
    model.connect(process.system(), mcu.out, out);
  }

  static ReliabilityModel reliability() {
    ReliabilityModel r;
    r.add("Sensor", 50, {{"No output", 0.6}, {"Drift", 0.4}});
    r.add("MC", 300, {{"RAM Failure", 1.0}});
    return r;
  }

  static SafetyMechanismModel catalogue() {
    SafetyMechanismModel c;
    c.add({"Sensor", "No output", "Redundant sensor", 0.95, 4.0});
    c.add({"MC", "RAM Failure", "ECC", 0.99, 2.0});
    return c;
  }
};

}  // namespace

TEST(NatureForMode, MapsFailureModeNames) {
  EXPECT_EQ(nature_for_mode("Open"), "lossOfFunction");
  EXPECT_EQ(nature_for_mode("no output"), "lossOfFunction");
  EXPECT_EQ(nature_for_mode("Crash"), "lossOfFunction");
  EXPECT_EQ(nature_for_mode("Short"), "erroneous");
  EXPECT_EQ(nature_for_mode("RAM Failure"), "erroneous");
  EXPECT_EQ(nature_for_mode("Drift"), "degraded");
  EXPECT_EQ(nature_for_mode("lower frequency"), "degraded");
  EXPECT_EQ(nature_for_mode("jitter"), "degraded");
}

TEST(Process, Step1ArtefactsLand) {
  ProcessFixture f;
  f.process.define_system("a demo system boundary");
  const auto fr = f.process.add_function_requirement("FR1", "do the thing");
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  const auto sr = f.process.derive_safety_requirement(h1, "SR1", "do it safely", "ASIL-B");

  EXPECT_EQ(f.model.obj(f.process.system()).get_string("description"),
            "a demo system boundary");
  EXPECT_EQ(f.model.obj(fr).get_string("integrityLevel"), "QM");
  EXPECT_EQ(f.model.obj(h1).get_string("integrityLevel"), "ASIL-B");
  EXPECT_EQ(f.model.obj(sr).refs("cites"), (std::vector<ObjectId>{h1}));
  EXPECT_EQ(f.model.obj(f.process.requirement_package()).refs("elements").size(), 2u);
}

TEST(Process, Step3AggregatesReliability) {
  ProcessFixture f;
  f.build_serial_design();
  const size_t populated = f.process.aggregate_reliability(ProcessFixture::reliability());
  EXPECT_EQ(populated, 2u);

  const auto sensor = f.model.find_by_name(ssam::cls::Component, "S1");
  EXPECT_DOUBLE_EQ(f.model.obj(sensor).get_real("fit"), 50.0);
  EXPECT_EQ(f.model.obj(sensor).refs("failureModes").size(), 2u);

  // RAM-style modes get affected-component traceability.
  const auto mcu = f.model.find_by_name(ssam::cls::Component, "M1");
  const auto fms = f.model.obj(mcu).refs("failureModes");
  ASSERT_EQ(fms.size(), 1u);
  EXPECT_EQ(f.model.obj(fms[0]).refs("affectedComponents"), (std::vector<ObjectId>{mcu}));
  EXPECT_EQ(f.model.obj(fms[0]).get_string("nature"), "erroneous");
}

TEST(Process, Step3IsIdempotentAcrossIterations) {
  ProcessFixture f;
  f.build_serial_design();
  f.process.aggregate_reliability(ProcessFixture::reliability());
  f.process.aggregate_reliability(ProcessFixture::reliability());
  const auto sensor = f.model.find_by_name(ssam::cls::Component, "S1");
  EXPECT_EQ(f.model.obj(sensor).refs("failureModes").size(), 2u);  // not duplicated
}

TEST(Process, Step4aEvaluates) {
  ProcessFixture f;
  f.build_serial_design();
  f.process.aggregate_reliability(ProcessFixture::reliability());
  const auto fmea = f.process.evaluate();
  EXPECT_EQ(fmea.system, "demo-system");
  // S1 "No output" (loss, serial) and M1 "RAM Failure" (affected=self,
  // serial) are both safety-related.
  EXPECT_EQ(fmea.safety_related_components(), (std::vector<std::string>{"S1", "M1"}));
  EXPECT_LT(fmea.spfm(), 0.90);
}

TEST(Process, Step4bRefinesAndWritesMechanismsBack) {
  ProcessFixture f;
  f.build_serial_design();
  f.process.aggregate_reliability(ProcessFixture::reliability());
  f.process.evaluate();
  const auto deployment = f.process.refine(ProcessFixture::catalogue(), "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  EXPECT_GE(f.process.last_result().spfm(), 0.90);

  // Mechanisms are now modelled on the components.
  const auto mcu = f.model.find_by_name(ssam::cls::Component, "M1");
  const auto sms = f.model.obj(mcu).refs("safetyMechanisms");
  ASSERT_EQ(sms.size(), 1u);
  EXPECT_EQ(f.model.obj(sms[0]).get_string("name"), "ECC");
  // And the SM covers the failure mode (traceability).
  EXPECT_EQ(f.model.obj(sms[0]).refs("covers").size(), 1u);
}

TEST(Process, RefineUnreachableReturnsNullopt) {
  ProcessFixture f;
  f.build_serial_design();
  f.process.aggregate_reliability(ProcessFixture::reliability());
  f.process.evaluate();
  SafetyMechanismModel empty;
  EXPECT_EQ(f.process.refine(empty, "ASIL-B"), std::nullopt);
}

TEST(Process, IterateUntilConvergesAndReEvaluates) {
  ProcessFixture f;
  f.build_serial_design();
  f.process.aggregate_reliability(ProcessFixture::reliability());
  const auto report = f.process.iterate_until("ASIL-B", ProcessFixture::catalogue());
  EXPECT_TRUE(report.target_met);
  EXPECT_GE(report.spfm, 0.90);
  EXPECT_GE(report.iterations, 2);  // evaluate + confirmation re-evaluation
  // The confirmation pass recomputed from the model (with written-back SMs).
  EXPECT_GE(f.process.last_result().spfm(), 0.90);
}

TEST(Process, IterateUnreachableStops) {
  ProcessFixture f;
  f.build_serial_design();
  f.process.aggregate_reliability(ProcessFixture::reliability());
  SafetyMechanismModel empty;
  const auto report = f.process.iterate_until("ASIL-D", empty, /*max_iterations=*/5);
  EXPECT_FALSE(report.target_met);
  EXPECT_LE(report.iterations, 5);
}

TEST(Process, SafetyConceptListsEverything) {
  ProcessFixture f;
  f.build_serial_design();
  const auto h1 = f.process.identify_hazard("H1", "S2", 1e-6, "ASIL-B");
  f.process.derive_safety_requirement(h1, "SR1", "stay safe", "ASIL-B");
  f.process.aggregate_reliability(ProcessFixture::reliability());
  f.process.iterate_until("ASIL-B", ProcessFixture::catalogue());

  const std::string concept_text = f.process.synthesise_safety_concept();
  EXPECT_NE(concept_text.find("SR1"), std::string::npos);
  EXPECT_NE(concept_text.find("H1"), std::string::npos);
  EXPECT_NE(concept_text.find("ECC"), std::string::npos);
  EXPECT_NE(concept_text.find("SPFM"), std::string::npos);
  EXPECT_NE(concept_text.find("ASIL-B"), std::string::npos);
}
