// End-to-end tests of the `same` command-line tool (subprocess driven).
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "decisive/base/json.hpp"
#include "decisive/obs/snapshot.hpp"

namespace {

const std::string kCli = SAME_CLI_PATH;
const std::string kAssets = DECISIVE_ASSETS_DIR;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// `env_prefix` is prepended verbatim (e.g. "VAR=1 ") so crash-injection
/// hooks can be enabled for a single subprocess invocation.
RunResult run(const std::string& arguments, const std::string& env_prefix = "") {
  const std::string command = env_prefix + kCli + " " + arguments + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("decisive-cli-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

}  // namespace

TEST(Cli, HelpShowsUsage) {
  const auto result = run("help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("same fmea"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto result = run("frobnicate");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown command"), std::string::npos);
}

TEST(Cli, FmeaReproducesTheCaseStudy) {
  const auto result = run("fmea " + kAssets + "/power_supply.mdl --reliability " + kAssets +
                          "/reliability_workbook --sm-model --goals CS1,MC1");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("96.77%"), std::string::npos);
  EXPECT_NE(result.output.find("ASIL-B"), std::string::npos);
  EXPECT_NE(result.output.find("ECC"), std::string::npos);
}

TEST(Cli, FmeaWithoutMechanismsFailsAsilB) {
  const auto result = run("fmea " + kAssets + "/power_supply.mdl --reliability " + kAssets +
                          "/reliability_workbook --goals CS1,MC1");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("5.38%"), std::string::npos);
}

TEST(Cli, FmeaRequiresReliability) {
  const auto result = run("fmea " + kAssets + "/power_supply.mdl");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("--reliability"), std::string::npos);
}

TEST(Cli, FmeaWritesCsv) {
  TempDir tmp;
  const auto out = (tmp.path / "fmeda.csv").string();
  const auto result = run("fmea " + kAssets + "/power_supply.mdl --reliability " + kAssets +
                          "/reliability_workbook --out " + out);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_TRUE(std::filesystem::exists(out));
}

TEST(Cli, ImportExportRoundTrip) {
  TempDir tmp;
  const auto ssam = (tmp.path / "design.ssam").string();
  const auto mdl = (tmp.path / "back.mdl").string();

  auto result = run("import " + kAssets + "/power_supply.mdl --out " + ssam);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("lossless"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(ssam));

  result = run("export " + ssam + " --out " + mdl);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  ASSERT_TRUE(std::filesystem::exists(mdl));

  // The regenerated model analyses identically.
  result = run("fmea " + mdl + " --reliability " + kAssets +
               "/reliability_workbook --goals CS1,MC1");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("5.38%"), std::string::npos);
}

TEST(Cli, QueryAgainstWorkbook) {
  const auto result =
      run("query " + kAssets +
          "/reliability_workbook \"rows('Reliability').select(r | r.Component == "
          "'Diode').first().FIT\"");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("10"), std::string::npos);
}

TEST(Cli, QueryErrorsAreReported) {
  const auto result = run("query " + kAssets + "/reliability_workbook \"rows('Nope')\"");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("Nope"), std::string::npos);
}

TEST(Cli, ScalabilityBothBackends) {
  const auto result = run("scalability 5000");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("full-load"), std::string::npos);
  EXPECT_NE(result.output.find("indexed"), std::string::npos);
}

TEST(Cli, ScalabilityRefusesOversizedFullLoad) {
  // 5M elements project to ~1 GiB, over the 128 MiB budget: full-load must
  // refuse up front while the indexed back-end streams them.
  const auto result = run("scalability 5000000 --budget-mib 128");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("N/A"), std::string::npos);
}

TEST(Cli, ValidateWellFormedModel) {
  const auto result = run("validate " + kAssets + "/brake_chain.ssam");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("well-formed"), std::string::npos);
}

TEST(Cli, FtaOnSsamModel) {
  const auto result =
      run("fta " + kAssets + "/brake_chain.ssam --component BrakeChain --mission-hours 1000");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("[OR]"), std::string::npos);
  EXPECT_NE(result.output.find("minimal cut sets: 2"), std::string::npos);
  EXPECT_NE(result.output.find("Fussell-Vesely"), std::string::npos);
  EXPECT_NE(result.output.find("loss of 'Sensor'"), std::string::npos);
}

TEST(Cli, FtaUnknownComponentFails) {
  const auto result = run("fta " + kAssets + "/brake_chain.ssam --component Ghost");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("Ghost"), std::string::npos);
}

TEST(Cli, GraphFmeaAnalysesSsamArchitecture) {
  const auto result = run("graph-fmea " + kAssets + "/brake_chain.ssam --component BrakeChain");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Sensor"), std::string::npos);
  EXPECT_NE(result.output.find("Driver"), std::string::npos);
  EXPECT_NE(result.output.find("SPFM"), std::string::npos);
}

TEST(Cli, GraphFmeaOutputIdenticalAcrossJobCounts) {
  TempDir tmp;
  const auto serial = (tmp.path / "serial.csv").string();
  const auto parallel = (tmp.path / "parallel.csv").string();
  const auto run1 = run("graph-fmea " + kAssets +
                        "/brake_chain.ssam --component BrakeChain --jobs 1 --out " + serial);
  const auto run2 = run("graph-fmea " + kAssets +
                        "/brake_chain.ssam --component BrakeChain --jobs 4 --out " + parallel);
  EXPECT_EQ(run1.exit_code, 0) << run1.output;
  EXPECT_EQ(run2.exit_code, 0) << run2.output;
  std::ifstream a(serial), b(parallel);
  const std::string serial_bytes((std::istreambuf_iterator<char>(a)),
                                 std::istreambuf_iterator<char>());
  const std::string parallel_bytes((std::istreambuf_iterator<char>(b)),
                                   std::istreambuf_iterator<char>());
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

TEST(Cli, GraphFmeaUnknownComponentFails) {
  const auto result = run("graph-fmea " + kAssets + "/brake_chain.ssam --component Ghost");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("Ghost"), std::string::npos);
}

TEST(Cli, MonitorGeneratesAndReplaysFrames) {
  TempDir tmp;
  const auto frames = (tmp.path / "frames.csv").string();
  {
    FILE* f = fopen(frames.c_str(), "w");
    fputs("Sensor.Sensor.out\n1.0\n2.0\n9.0\n", f);  // last frame violates
    fclose(f);
  }
  const auto result =
      run("monitor " + kAssets + "/brake_chain.ssam --samples " + frames);
  EXPECT_EQ(result.exit_code, 3) << result.output;  // violations present
  EXPECT_NE(result.output.find("Runtime monitor (1 checks)"), std::string::npos);
  EXPECT_NE(result.output.find("frame 2"), std::string::npos);
  EXPECT_NE(result.output.find("above bound"), std::string::npos);
  EXPECT_NE(result.output.find("3 frame(s), 1 violation(s)"), std::string::npos);
}

TEST(Cli, MonitorCleanReplayExitsZero) {
  TempDir tmp;
  const auto frames = (tmp.path / "frames.csv").string();
  {
    FILE* f = fopen(frames.c_str(), "w");
    fputs("Sensor.Sensor.out\n1.0\n2.0\n", f);
    fclose(f);
  }
  const auto result =
      run("monitor " + kAssets + "/brake_chain.ssam --samples " + frames);
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(Cli, MonitorWithNothingDynamicExitsZero) {
  // A valid model with no dynamic components is a clean outcome (exit 0 +
  // note), distinguishable from violations (3) and errors (1/2).
  TempDir tmp;
  const auto ssam = (tmp.path / "ps.ssam").string();
  ASSERT_EQ(run("import " + kAssets + "/power_supply.mdl --out " + ssam).exit_code, 0);
  const auto result = run("monitor " + ssam);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("nothing to monitor"), std::string::npos);
}

TEST(Cli, ImpactPrintsTheChangeReport) {
  const auto result = run("impact " + kAssets + "/brake_chain.ssam Sensor");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Impact of changing 'Sensor'"), std::string::npos);
  EXPECT_NE(result.output.find("connected components"), std::string::npos);
}

TEST(Cli, ImpactUnknownComponentFails) {
  const auto result = run("impact " + kAssets + "/brake_chain.ssam NoSuch");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("no component named"), std::string::npos);
}

TEST(Cli, SessionRunsAScriptedLoop) {
  TempDir tmp;
  const auto script = (tmp.path / "script.txt").string();
  {
    FILE* f = fopen(script.c_str(), "w");
    fputs("reanalyze\nset-fit Sensor 120\nreanalyze\nresult\nmetrics\nquit\n", f);
    fclose(f);
  }
  const auto result = run("session " + kAssets +
                          "/brake_chain.ssam --component BrakeChain < " + script);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("same session ready"), std::string::npos);
  EXPECT_NE(result.output.find("hit-rate"), std::string::npos);
  EXPECT_NE(result.output.find("spfm"), std::string::npos);
  // The `metrics` request answers Prometheus text from the process-wide
  // instrumentation registry.
  EXPECT_NE(result.output.find("decisive_session_cache_hits_total"), std::string::npos);
  EXPECT_NE(result.output.find("decisive_session_request_seconds_bucket"),
            std::string::npos);
}

TEST(Cli, CampaignIsAnAliasForFmea) {
  const auto result = run("campaign " + kAssets + "/power_supply.mdl --reliability " +
                          kAssets + "/reliability_workbook --goals CS1,MC1");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("5.38%"), std::string::npos);
}

TEST(Cli, TraceFlagWritesAValidChromeTrace) {
  TempDir tmp;
  const auto trace = (tmp.path / "trace.json").string();
  const auto result = run("campaign " + kAssets + "/power_supply.mdl --reliability " +
                          kAssets + "/reliability_workbook --jobs 2 --trace " + trace);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("trace:"), std::string::npos);
  const auto check = run("check-trace " + trace);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  EXPECT_NE(check.output.find("well-formed"), std::string::npos);
}

TEST(Cli, GraphFmeaSupportsTracingToo) {
  TempDir tmp;
  const auto trace = (tmp.path / "trace.json").string();
  const auto result = run("graph-fmea " + kAssets +
                          "/brake_chain.ssam --component BrakeChain --trace " + trace);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  const auto check = run("check-trace " + trace);
  EXPECT_EQ(check.exit_code, 0) << check.output;
}

TEST(Cli, CheckTraceRejectsGarbage) {
  TempDir tmp;
  const auto bogus = (tmp.path / "bogus.json").string();
  {
    std::ofstream out(bogus);
    out << "this is not a trace\n";
  }
  const auto result = run("check-trace " + bogus);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("invalid trace"), std::string::npos);
}

TEST(Cli, TraceRequiresAnOutputPath) {
  const auto result = run("campaign " + kAssets + "/power_supply.mdl --trace");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--trace requires"), std::string::npos);
}

TEST(Cli, MetricsDumpListsEngineCounters) {
  TempDir tmp;
  const auto metrics = (tmp.path / "metrics.txt").string();
  const auto result = run("graph-fmea " + kAssets +
                          "/brake_chain.ssam --component BrakeChain --metrics " + metrics);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  std::ifstream in(metrics);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("decisive_graph_fmea_runs_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE decisive_graph_fmea_unit_seconds histogram"),
            std::string::npos);
}

TEST(Cli, FmedaIsByteIdenticalWithAndWithoutTrace) {
  TempDir tmp;
  const auto plain_csv = (tmp.path / "plain.csv").string();
  const auto traced_csv = (tmp.path / "traced.csv").string();
  const auto trace = (tmp.path / "trace.json").string();
  const std::string base = "campaign " + kAssets + "/power_supply.mdl --reliability " +
                           kAssets + "/reliability_workbook --jobs 2 --goals CS1,MC1";
  const auto plain = run(base + " --out " + plain_csv);
  const auto traced = run(base + " --out " + traced_csv + " --trace " + trace);
  EXPECT_EQ(plain.exit_code, 0) << plain.output;
  EXPECT_EQ(traced.exit_code, 0) << traced.output;

  const auto read = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string plain_bytes = read(plain_csv);
  EXPECT_FALSE(plain_bytes.empty());
  EXPECT_EQ(plain_bytes, read(traced_csv));
}

TEST(Cli, SessionRequiresComponentWithModelPath) {
  const auto result = run("session " + kAssets + "/brake_chain.ssam < /dev/null");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--component"), std::string::npos);
}

TEST(Cli, AssuranceEvaluatesCaseXml) {
  TempDir tmp;
  // Evidence + case referencing it.
  const auto evidence = (tmp.path / "evidence.csv").string();
  {
    FILE* f = fopen(evidence.c_str(), "w");
    fputs("metric\n0.97\n", f);
    fclose(f);
  }
  const auto case_path = (tmp.path / "case.xml").string();
  {
    FILE* f = fopen(case_path.c_str(), "w");
    fprintf(f,
            "<assuranceCase name=\"t\">"
            "<node kind=\"Claim\" id=\"G1\" statement=\"ok\">"
            "<supportedBy ref=\"E1\"/></node>"
            "<node kind=\"ArtifactReference\" id=\"E1\" statement=\"ev\" "
            "location=\"%s\" type=\"csv\">"
            "<query>rows().first().metric &gt;= 0.9</query></node>"
            "</assuranceCase>",
            evidence.c_str());
    fclose(f);
  }
  const auto result = run("assurance " + case_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("SUPPORTED"), std::string::npos);
}

// ---------------------------------------------------------------------------
// sm-search: deployment search over a safety-mechanism catalogue
// ---------------------------------------------------------------------------

namespace {

/// Writes the brake-chain test catalogue and returns its path.
std::string write_catalogue(const TempDir& tmp) {
  const auto path = (tmp.path / "catalogue.csv").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs(
      "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\n"
      "Sensor,No output,Redundant sensor,95%,4.0\n"
      "Sensor,No output,Heartbeat check,80%,1.0\n"
      "Driver,Open,Duplex driver,90%,2.0\n",
      f);
  fclose(f);
  return path;
}

std::string sm_search_args(const std::string& catalogue) {
  return "sm-search " + kAssets + "/brake_chain.ssam --component BrakeChain --catalogue " +
         catalogue;
}

}  // namespace

TEST(Cli, SmSearchPrintsTheParetoFront) {
  TempDir tmp;
  const auto result = run(sm_search_args(write_catalogue(tmp)) + " --pareto");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Cost(hrs),SPFM,ASIL,Choices,Deployment"), std::string::npos);
  EXPECT_NE(result.output.find("Sensor/No output=Heartbeat check"), std::string::npos);
  EXPECT_NE(result.output.find(
                "6,95.6667%,ASIL-B,2,"
                "Sensor/No output=Redundant sensor; Driver/Open=Duplex driver"),
            std::string::npos);
  EXPECT_NE(result.output.find("front: 4 deployment(s)"), std::string::npos);
}

TEST(Cli, SmSearchOutputIdenticalAcrossJobCounts) {
  TempDir tmp;
  const auto catalogue = write_catalogue(tmp);
  const auto serial = run(sm_search_args(catalogue) + " --pareto --jobs 1");
  const auto parallel = run(sm_search_args(catalogue) + " --pareto --jobs 4");
  EXPECT_EQ(serial.exit_code, 0) << serial.output;
  // The merge tree's shape depends only on the row count, so any job count
  // must produce byte-identical output.
  EXPECT_EQ(serial.output, parallel.output);
}

TEST(Cli, SmSearchReachesTargetAsil) {
  TempDir tmp;
  const auto catalogue = write_catalogue(tmp);
  const auto reached = run(sm_search_args(catalogue) + " --target-asil ASIL-B --optimal");
  EXPECT_EQ(reached.exit_code, 0) << reached.output;
  EXPECT_NE(reached.output.find("2 mechanism(s), 6 h total"), std::string::npos);
  EXPECT_NE(reached.output.find("ASIL-B"), std::string::npos);

  const auto unreachable = run(sm_search_args(catalogue) + " --target-asil ASIL-D");
  EXPECT_EQ(unreachable.exit_code, 3) << unreachable.output;
  EXPECT_NE(unreachable.output.find("unreachable"), std::string::npos);
}

TEST(Cli, SmSearchWritesCsvAndJson) {
  TempDir tmp;
  const auto csv_path = (tmp.path / "front.csv").string();
  const auto json_path = (tmp.path / "front.json").string();
  const auto result = run(sm_search_args(write_catalogue(tmp)) + " --pareto --out " +
                          csv_path + " --json " + json_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  std::ifstream csv(csv_path);
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "Cost(hrs),SPFM,ASIL,Choices,Deployment");
  std::ifstream json(json_path);
  std::string json_text((std::istreambuf_iterator<char>(json)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(json_text.find("\"front\""), std::string::npos);
  EXPECT_NE(json_text.find("\"Duplex driver\""), std::string::npos);
}

TEST(Cli, SessionParetoMatchesSmSearchCli) {
  TempDir tmp;
  const auto catalogue = write_catalogue(tmp);
  const auto cli = run(sm_search_args(catalogue) + " --pareto");
  ASSERT_EQ(cli.exit_code, 0) << cli.output;
  // The front block is everything before the trailing "front: N" summary.
  const auto cut = cli.output.find("front:");
  ASSERT_NE(cut, std::string::npos);
  const std::string front_csv = cli.output.substr(0, cut);
  EXPECT_FALSE(front_csv.empty());

  const auto script = (tmp.path / "script").string();
  {
    FILE* f = fopen(script.c_str(), "w");
    fprintf(f, "pareto %s\nquit\n", catalogue.c_str());
    fclose(f);
  }
  const auto session = run("session " + kAssets +
                           "/brake_chain.ssam --component BrakeChain < " + script);
  EXPECT_EQ(session.exit_code, 0) << session.output;
  // The session's pareto request emits the same CSV block as the CLI.
  EXPECT_NE(session.output.find(front_csv), std::string::npos);
  EXPECT_NE(session.output.find("front: 4 deployment(s)"), std::string::npos);
}

TEST(Cli, SmSearchRequiresCatalogue) {
  const auto result = run("sm-search " + kAssets +
                          "/brake_chain.ssam --component BrakeChain --pareto");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("--catalogue"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Resilient campaigns: crash-safe journals, shard merging, failure
// containment (end-to-end, subprocess-level — the SIGKILL is real).
// ---------------------------------------------------------------------------

namespace {

constexpr int kSigkillExit = 137;  // what the shell reports for SIGKILL

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string fmea_args() {
  return "fmea " + kAssets + "/power_supply.mdl --reliability " + kAssets +
         "/reliability_workbook --sm-model --goals CS1,MC1";
}

/// A model whose baseline cannot solve: two ideal sources forcing different
/// voltages onto the same node. Fault tasks exist (the capacitor has
/// reliability data) but the baseline operating point does not.
std::string write_conflicting_model(const TempDir& tmp) {
  const auto path = (tmp.path / "conflict.mdl").string();
  std::ofstream out(path);
  out << "Model {\n"
         "  Name \"conflicting_sources\"\n"
         "  System {\n"
         "    Block { BlockType DCVoltageSource Name \"DC1\" Voltage \"5\" }\n"
         "    Block { BlockType DCVoltageSource Name \"DC2\" Voltage \"3\" }\n"
         "    Block { BlockType Capacitor Name \"C1\" Capacitance \"1e-6\" }\n"
         "    Block { BlockType Ground Name \"GND1\" }\n"
         "    Line { SrcBlock \"DC1\" SrcPort \"p\" DstBlock \"C1\" DstPort \"p\" }\n"
         "    Line { SrcBlock \"DC2\" SrcPort \"p\" DstBlock \"C1\" DstPort \"p\" }\n"
         "    Line { SrcBlock \"DC1\" SrcPort \"n\" DstBlock \"GND1\" DstPort \"g\" }\n"
         "    Line { SrcBlock \"DC2\" SrcPort \"n\" DstBlock \"GND1\" DstPort \"g\" }\n"
         "    Line { SrcBlock \"C1\" SrcPort \"n\" DstBlock \"GND1\" DstPort \"g\" }\n"
         "  }\n"
         "}\n";
  return path;
}

}  // namespace

TEST(Cli, JournaledRunSurvivesSigkillAndResumesByteIdentical) {
  TempDir tmp;
  const auto plain_csv = (tmp.path / "plain.csv").string();
  const auto resumed_csv = (tmp.path / "resumed.csv").string();
  const auto dead_csv = (tmp.path / "dead.csv").string();
  const auto journal = (tmp.path / "campaign.journal").string();

  const auto plain = run(fmea_args() + " --out " + plain_csv);
  ASSERT_EQ(plain.exit_code, 0) << plain.output;

  // SIGKILL mid-campaign, after the 4th checkpoint append: no CSV, but the
  // journal holds the completed prefix.
  const auto killed = run(fmea_args() + " --journal " + journal + " --out " + dead_csv,
                          "DECISIVE_CAMPAIGN_CRASH_AFTER_APPENDS=4 ");
  EXPECT_EQ(killed.exit_code, kSigkillExit);
  EXPECT_FALSE(std::filesystem::exists(dead_csv));
  ASSERT_TRUE(std::filesystem::exists(journal));

  // The resumed run replays the journal, finishes the remainder, and its
  // FMEDA is byte-identical to the uninterrupted run.
  const auto resumed = run(fmea_args() + " --journal " + journal + " --out " + resumed_csv);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  const std::string plain_bytes = slurp(plain_csv);
  ASSERT_FALSE(plain_bytes.empty());
  EXPECT_EQ(plain_bytes, slurp(resumed_csv));
}

TEST(Cli, ShardedJournalsMergeToTheUnshardedFmeda) {
  TempDir tmp;
  const auto plain_csv = (tmp.path / "plain.csv").string();
  ASSERT_EQ(run(fmea_args() + " --out " + plain_csv).exit_code, 0);

  std::string journals;
  for (int shard = 0; shard < 3; ++shard) {
    const auto journal = (tmp.path / ("shard" + std::to_string(shard) + ".journal")).string();
    const auto result = run(fmea_args() + " --shard " + std::to_string(shard) +
                            "/3 --journal " + journal);
    ASSERT_EQ(result.exit_code, 0) << result.output;
    journals += " " + journal;
  }

  const auto merged_csv = (tmp.path / "merged.csv").string();
  const auto merged = run("merge-journals" + journals + " --out " + merged_csv);
  EXPECT_EQ(merged.exit_code, 0) << merged.output;
  EXPECT_NE(merged.output.find("SPFM"), std::string::npos);
  const std::string plain_bytes = slurp(plain_csv);
  ASSERT_FALSE(plain_bytes.empty());
  EXPECT_EQ(plain_bytes, slurp(merged_csv));
}

TEST(Cli, MergeJournalsReportsAMissingShard) {
  TempDir tmp;
  std::string journals;
  for (int shard = 0; shard < 3; ++shard) {
    if (shard == 1) continue;  // shard 1 never ran
    const auto journal = (tmp.path / ("shard" + std::to_string(shard) + ".journal")).string();
    ASSERT_EQ(run(fmea_args() + " --shard " + std::to_string(shard) + "/3 --journal " +
                  journal).exit_code, 0);
    journals += " " + journal;
  }
  const auto merged = run("merge-journals" + journals);
  EXPECT_EQ(merged.exit_code, 1) << merged.output;
  EXPECT_NE(merged.output.find("shard 1/3 has no journal"), std::string::npos);
}

TEST(Cli, UnanalysableBaselineExitsFourAndBestEffortDegrades) {
  TempDir tmp;
  const auto model = write_conflicting_model(tmp);
  const std::string base = "fmea " + model + " --reliability " + kAssets +
                           "/reliability_workbook";

  const auto strict = run(base);
  EXPECT_EQ(strict.exit_code, 4) << strict.output;
  EXPECT_NE(strict.output.find("baseline"), std::string::npos);
  EXPECT_NE(strict.output.find("--best-effort"), std::string::npos);

  const auto degraded = run(base + " --best-effort");
  EXPECT_EQ(degraded.exit_code, 0) << degraded.output;
  EXPECT_NE(degraded.output.find("best-effort"), std::string::npos);
  EXPECT_NE(degraded.output.find("NotApplicable"), std::string::npos);
}

TEST(Cli, InterruptedCacheSaveLeavesThePreviousCacheIntact) {
  TempDir tmp;
  const auto cache = (tmp.path / "session.cache").string();
  const auto script = (tmp.path / "script").string();
  const std::string session_args =
      "session " + kAssets + "/brake_chain.ssam --component BrakeChain < " + script;

  {
    std::ofstream out(script);
    out << "reanalyze\nsave-cache " << cache << "\nquit\n";
  }
  ASSERT_EQ(run(session_args).exit_code, 0);
  const std::string original = slurp(cache);
  ASSERT_FALSE(original.empty());

  // A save that dies between writing the temp file and the rename must leave
  // the previous cache untouched — the window where a straight-through write
  // would already have truncated it.
  {
    std::ofstream out(script);
    out << "reanalyze\nset-fit Sensor 120\nreanalyze\nsave-cache " << cache << "\nquit\n";
  }
  const auto killed = run(session_args, "DECISIVE_CRASH_BEFORE_RENAME=1 ");
  EXPECT_EQ(killed.exit_code, kSigkillExit);
  EXPECT_EQ(slurp(cache), original);

  // And the surviving cache still loads cleanly.
  {
    std::ofstream out(script);
    out << "load-cache " << cache << "\nquit\n";
  }
  const auto reload = run(session_args);
  EXPECT_EQ(reload.exit_code, 0) << reload.output;
  EXPECT_NE(reload.output.find("cache"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder: heartbeats + status, cross-shard metrics/trace merging
// (end-to-end: 4 real shard processes, one real SIGKILL).
// ---------------------------------------------------------------------------

namespace {

/// The per-task campaign counters that must fold exactly across shards.
/// Process-scoped counters (runs_total, the baseline solver counters) run
/// once per shard process and legitimately differ; these do not.
const std::vector<std::string> kPerTaskCounters = {
    "decisive_campaign_tasks_total",
    "decisive_campaign_journal_appends_total",
    "decisive_campaign_outcome_converged_total",
    "decisive_campaign_outcome_recovered_total",
    "decisive_campaign_outcome_singular_total",
    "decisive_campaign_outcome_budget_exhausted_total",
    "decisive_campaign_outcome_not_applicable_total",
    "decisive_campaign_outcome_crashed_total",
};

}  // namespace

TEST(Cli, ShardedFlightRecorderFoldsToTheUnshardedArtefacts) {
  TempDir tmp;
  const auto shard_dir = tmp.path / "shards";
  std::filesystem::create_directories(shard_dir);

  // Unsharded reference run (journaled, so journal_appends is comparable).
  const auto whole_metrics = (tmp.path / "whole.metrics.json").string();
  ASSERT_EQ(run(fmea_args() + " --journal " + (tmp.path / "whole.journal").string() +
                " --metrics-json " + whole_metrics).exit_code, 0);

  std::string metric_files;
  std::string trace_files;
  for (int shard = 0; shard < 4; ++shard) {
    const auto stem = (shard_dir / ("shard" + std::to_string(shard))).string();
    const auto result = run(fmea_args() + " --shard " + std::to_string(shard) +
                            "/4 --journal " + stem + ".journal --metrics-json " + stem +
                            ".metrics.json --trace " + stem + ".trace.json");
    ASSERT_EQ(result.exit_code, 0) << result.output;
    metric_files += " " + stem + ".metrics.json";
    trace_files += " " + stem + ".trace.json";
  }

  // One live view over the four heartbeat files: everything finished.
  const auto status = run("status " + shard_dir.string());
  EXPECT_EQ(status.exit_code, 0) << status.output;
  EXPECT_NE(status.output.find("0 running, 4 done, 0 dead"), std::string::npos)
      << status.output;
  EXPECT_NE(status.output.find("9/9 tasks"), std::string::npos) << status.output;

  // Merged metrics: the per-task campaign counters are byte-identical to the
  // unsharded snapshot's.
  const auto merged_metrics = (tmp.path / "merged.metrics.json").string();
  const auto merge = run("merge-metrics" + metric_files + " --out " + merged_metrics);
  ASSERT_EQ(merge.exit_code, 0) << merge.output;
  const decisive::json::Value merged_doc =
      decisive::obs::parse_registry_snapshot(slurp(merged_metrics));
  const decisive::json::Value whole_doc =
      decisive::obs::parse_registry_snapshot(slurp(whole_metrics));
  const auto& merged_counters = merged_doc.as_object().at("counters").as_object();
  const auto& whole_counters = whole_doc.as_object().at("counters").as_object();
  for (const std::string& name : kPerTaskCounters) {
    ASSERT_TRUE(merged_counters.count(name)) << name;
    ASSERT_TRUE(whole_counters.count(name)) << name;
    EXPECT_EQ(decisive::json::write(merged_counters.at(name)),
              decisive::json::write(whole_counters.at(name)))
        << name;
  }

  // Merged trace: one document, one process lane per shard, still valid.
  const auto merged_trace = (tmp.path / "merged.trace.json").string();
  const auto trace_merge = run("merge-traces" + trace_files + " --out " + merged_trace);
  ASSERT_EQ(trace_merge.exit_code, 0) << trace_merge.output;
  const auto check = run("check-trace " + merged_trace);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  EXPECT_NE(check.output.find("well-formed"), std::string::npos);
}

TEST(Cli, StatusFlagsASigkilledShardDeadWhileOthersFinish) {
  TempDir tmp;
  const auto dir = tmp.path / "dead";
  std::filesystem::create_directories(dir);

  auto shard_args = [&](int shard) {
    const auto stem = (dir / ("shard" + std::to_string(shard))).string();
    return fmea_args() + " --shard " + std::to_string(shard) + "/4 --journal " + stem +
           ".journal";
  };

  ASSERT_EQ(run(shard_args(0)).exit_code, 0);
  // Shard 1 is SIGKILLed after its first journal append: its heartbeat file
  // survives in state "running" and simply stops refreshing.
  const auto killed = run(shard_args(1), "DECISIVE_CAMPAIGN_CRASH_AFTER_APPENDS=1 ");
  EXPECT_EQ(killed.exit_code, kSigkillExit);
  ASSERT_TRUE(std::filesystem::exists(dir / "shard1.journal.heartbeat.json"));
  ASSERT_EQ(run(shard_args(2)).exit_code, 0);
  ASSERT_EQ(run(shard_args(3)).exit_code, 0);

  // Let the dead shard's heartbeat go stale past the threshold; the finished
  // shards stay "done" forever regardless of age.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto status = run("status " + dir.string() + " --stale-seconds 0.05");
  EXPECT_EQ(status.exit_code, 3) << status.output;
  EXPECT_NE(status.output.find("DEAD"), std::string::npos) << status.output;
  EXPECT_NE(status.output.find("shard 1/4"), std::string::npos) << status.output;
  EXPECT_NE(status.output.find("3 done, 1 dead"), std::string::npos) << status.output;
}
