// The factor-once batched campaign solver (sim/campaign_solver.hpp) and its
// integration with the campaign engine. The load-bearing property is
// byte-identity: a batched campaign must emit exactly the bytes the classic
// one-solve-per-fault campaign emits — same CSV, same warnings — for any job
// count, shard spec, or journal state, because every gate in the batched
// path falls back to the naive ladder the moment a result could differ.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/campaign.hpp"
#include "decisive/core/campaign_journal.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/sim/campaign_solver.hpp"
#include "decisive/sim/dense.hpp"
#include "decisive/sim/fault.hpp"
#include "decisive/sim/solver.hpp"

using namespace decisive;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

/// The bench's supply-rail specimen: the rail is pinned by the source, so
/// most faults perturb only their own decoupled tap — prime low-rank
/// territory with diodes in the loop.
sim::BuiltCircuit make_rail(int stages) {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int vin = c.node("vin");
  const int rail = c.node("rail");
  c.add_vsource("V1", vin, 0, 12.0);
  c.add_current_sensor("CS", vin, rail);
  built.observables.push_back("CS");
  for (int s = 0; s < stages; ++s) {
    const std::string id = std::to_string(s);
    const int tap = c.node("tap" + id);
    c.add_resistor("R" + id, rail, tap, 100.0 + s);
    c.add_diode("D" + id, tap, 0);
    c.add_resistor("RL" + id, tap, 0, 1000.0);
    c.add_voltage_sensor("VS" + id, tap, 0);
    built.observables.push_back("VS" + id);
    built.components.push_back({"R" + id, "Resistor", "R" + id});
    built.components.push_back({"D" + id, "Diode", "D" + id});
  }
  return built;
}

core::ReliabilityModel rail_reliability() {
  core::ReliabilityModel reliability;
  reliability.add("Resistor", 5.0, {{"Open", 0.5}, {"Short", 0.3}, {"Drift", 0.2}});
  reliability.add("Diode", 10.0, {{"Open", 0.3}, {"Short", 0.7}});
  return reliability;
}

/// Torture specimen from robustness_test: the baseline solves inside the
/// iteration budget, the Drift fault only converges via the recovery ladder
/// — so the batched path must hand it back to the naive solver (NotConverged
/// fallback) and the row must still say RecoveredViaLadder.
sim::BuiltCircuit drifting_source_rig() {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int p = c.node("p");
  const int k = c.node("k");
  c.add_vsource("V1", p, 0, 1.2);
  c.add_resistor("R1", p, k, 1000.0);
  c.add_diode("D1", 0, k);
  c.add_voltage_sensor("VS1", k, 0);
  built.observables.push_back("VS1");
  built.components.push_back({"V1", "Source", "V1"});
  return built;
}

/// An MCU monitoring a divided-down supply: Drift faults on the supply move
/// the MCU across its brown-out threshold, exercising the RHS-only update,
/// the MCU knife-edge guard, and the structural VSource Open/Short faults.
sim::BuiltCircuit mcu_rig() {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int vin = c.node("vin");
  const int vdd = c.node("vdd");
  c.add_vsource("V1", vin, 0, 5.0);
  c.add_resistor("R1", vin, vdd, 1000.0);
  c.add_resistor("R2", vdd, 0, 2200.0);
  c.add_mcu("MC1", vdd, 0, 10000.0);
  c.add_voltage_sensor("VS1", vdd, 0);
  built.observables.push_back("MC1");
  built.observables.push_back("VS1");
  built.components.push_back({"V1", "Source", "V1"});
  built.components.push_back({"R1", "Resistor", "R1"});
  built.components.push_back({"MC1", "Mcu", "MC1"});
  return built;
}

core::ReliabilityModel mcu_reliability() {
  core::ReliabilityModel reliability;
  reliability.add("Source", 5.0, {{"Open", 0.3}, {"Short", 0.2}, {"Drift", 0.5}});
  reliability.add("Resistor", 5.0, {{"Open", 0.5}, {"Short", 0.3}, {"Drift", 0.2}});
  reliability.add("Mcu", 20.0, {{"RamFailure", 0.6}, {"Drift", 0.4}});
  return reliability;
}

struct CampaignOutput {
  std::string csv;
  std::vector<std::string> warnings;
};

CampaignOutput run_campaign(const sim::BuiltCircuit& built,
                            const core::ReliabilityModel& reliability, bool batch, int jobs,
                            core::CircuitFmeaOptions options = {}) {
  options.batch = batch;
  options.jobs = jobs;
  const auto result = core::analyze_circuit(built, reliability, nullptr, options);
  return CampaignOutput{write_csv(result.to_csv()), result.warnings};
}

/// The property behind every acceptance gate: for this subject, batched and
/// naive campaigns produce identical bytes at every job count.
void expect_batched_matches_naive(const sim::BuiltCircuit& built,
                                  const core::ReliabilityModel& reliability,
                                  core::CircuitFmeaOptions options = {}) {
  const CampaignOutput naive = run_campaign(built, reliability, false, 1, options);
  for (const int jobs : {1, 4, 8}) {
    const CampaignOutput batched = run_campaign(built, reliability, true, jobs, options);
    EXPECT_EQ(batched.csv, naive.csv) << "batched FMEDA diverged at jobs=" << jobs;
    EXPECT_EQ(batched.warnings, naive.warnings) << "warnings diverged at jobs=" << jobs;
  }
}

}  // namespace

// ------------------------------------------------- campaign byte-identity --

TEST(BatchCampaign, RailSubjectByteIdenticalAcrossJobCounts) {
  expect_batched_matches_naive(make_rail(8), rail_reliability());
}

TEST(BatchCampaign, LadderTortureSubjectByteIdentical) {
  // The Drift fault needs the recovery ladder; the batched path must fall
  // back, keeping the RecoveredViaLadder row (whose detail embeds iteration
  // counts) byte-identical.
  core::ReliabilityModel reliability;
  reliability.add("Source", 5.0, {{"Drift", 1.0}});
  core::CircuitFmeaOptions options;
  options.solver.max_newton_iterations = 40;
  expect_batched_matches_naive(drifting_source_rig(), reliability, options);
}

TEST(BatchCampaign, McuKnifeEdgeSubjectByteIdentical) {
  expect_batched_matches_naive(mcu_rig(), mcu_reliability());
}

TEST(BatchCampaign, ReferenceSubjectByteIdentical) {
  const auto built = sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"));
  const auto workbook = drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  expect_batched_matches_naive(built, reliability, options);
}

// ------------------------------------------- journal + shard determinism --

TEST(BatchCampaign, JournalsInterchangeBetweenBatchedAndNaiveRuns) {
  // The batch flag is excluded from the campaign fingerprint, so a journal
  // written by a naive run must resume under a batched run (and vice versa)
  // and still reproduce the uninterrupted bytes.
  const auto built = make_rail(6);
  const auto reliability = rail_reliability();
  const auto dir = std::filesystem::temp_directory_path() / "decisive_batch_journal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const CampaignOutput uninterrupted = run_campaign(built, reliability, true, 1);

  core::CircuitFmeaOptions options;
  options.execution.journal_path = (dir / "campaign.journal").string();
  // Pass 1: naive run writes the full journal.
  const CampaignOutput naive = run_campaign(built, reliability, false, 1, options);
  // Pass 2: batched run replays it (everything checkpointed, nothing re-run).
  const CampaignOutput replayed = run_campaign(built, reliability, true, 1, options);
  EXPECT_EQ(naive.csv, uninterrupted.csv);
  EXPECT_EQ(replayed.csv, uninterrupted.csv);
  EXPECT_EQ(replayed.warnings, uninterrupted.warnings);
  std::filesystem::remove_all(dir);
}

TEST(BatchCampaign, ShardedBatchedJournalsMergeToNaiveBytes) {
  const auto built = make_rail(6);
  const auto reliability = rail_reliability();
  const CampaignOutput whole = run_campaign(built, reliability, false, 1);
  const auto dir = std::filesystem::temp_directory_path() / "decisive_batch_shard_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::vector<std::string> journals;
  for (int shard = 0; shard < 4; ++shard) {
    core::CircuitFmeaOptions options;
    options.batch = true;
    options.execution.shard_index = shard;
    options.execution.shard_count = 4;
    options.execution.journal_path = (dir / ("s" + std::to_string(shard) + ".journal")).string();
    journals.push_back(options.execution.journal_path);
    (void)core::analyze_circuit(built, reliability, nullptr, options);
  }
  const auto merged = core::merge_campaign_journals(journals);
  EXPECT_EQ(write_csv(merged.to_csv()), whole.csv);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------ context-level behaviour --

TEST(BatchContext, NominalPointMatchesClassicSolve) {
  const auto built = make_rail(4);
  const sim::CampaignSolveContext context(built.circuit, sim::SolveOptions{});
  ASSERT_TRUE(context.usable());
  const auto classic = sim::dc_operating_point(built.circuit);
  for (const auto& [name, value] : classic.readings) {
    EXPECT_NEAR(context.nominal_point().reading(name), value, 1e-9) << name;
  }
}

TEST(BatchContext, EligibilityFollowsTheFaultTaxonomy) {
  const auto built = mcu_rig();
  const sim::CampaignSolveContext context(built.circuit, sim::SolveOptions{});
  ASSERT_TRUE(context.usable());
  // Conductance-delta faults on two-terminal passives are low-rank.
  EXPECT_TRUE(context.eligible({"R1", sim::FaultKind::Open}));
  EXPECT_TRUE(context.eligible({"R1", sim::FaultKind::Short}));
  EXPECT_TRUE(context.eligible({"R1", sim::FaultKind::Drift}));
  // VSource Open/Short delete the branch unknown: structural.
  EXPECT_FALSE(context.eligible({"V1", sim::FaultKind::Open}));
  EXPECT_FALSE(context.eligible({"V1", sim::FaultKind::Short}));
  // ...but value-only faults on the same source keep the structure.
  EXPECT_TRUE(context.eligible({"V1", sim::FaultKind::Drift}));
  EXPECT_TRUE(context.eligible({"V1", sim::FaultKind::StuckOff}));
  // MCU faults never touch the matrix (reading-only / RHS-only).
  EXPECT_TRUE(context.eligible({"MC1", sim::FaultKind::RamFailure}));
  EXPECT_TRUE(context.eligible({"MC1", sim::FaultKind::Drift}));
}

TEST(BatchContext, SolvedFaultAgreesWithFreshSolve) {
  const auto built = make_rail(4);
  const sim::SolveOptions options;
  const sim::CampaignSolveContext context(built.circuit, options);
  ASSERT_TRUE(context.usable());
  sim::CampaignSolveContext::Workspace ws;
  for (const sim::Fault& fault : {sim::Fault{"R2", sim::FaultKind::Open},
                                  sim::Fault{"R2", sim::FaultKind::Short},
                                  sim::Fault{"RL1", sim::FaultKind::Drift},
                                  sim::Fault{"D3", sim::FaultKind::Short}}) {
    const sim::Circuit faulted = sim::inject_fault(built.circuit, fault);
    sim::SolveDiagnostics diagnostics;
    sim::BatchOutcome outcome = sim::BatchOutcome::Disabled;
    const auto batched = context.try_solve(faulted, fault, ws, diagnostics, outcome);
    ASSERT_TRUE(batched.has_value())
        << fault.element << "/" << to_string(fault.kind) << ": " << to_string(outcome);
    EXPECT_EQ(outcome, sim::BatchOutcome::Solved);
    EXPECT_TRUE(diagnostics.converged);
    const auto fresh = sim::dc_operating_point(faulted, options);
    for (const auto& [name, value] : fresh.readings) {
      EXPECT_NEAR(batched->reading(name), value, 1e-6)
          << fault.element << "/" << to_string(fault.kind) << " reading " << name;
    }
  }
}

TEST(BatchContext, StructuralFaultReportsStructuralFallback) {
  const auto built = make_rail(4);
  const sim::CampaignSolveContext context(built.circuit, sim::SolveOptions{});
  ASSERT_TRUE(context.usable());
  const sim::Fault fault{"V1", sim::FaultKind::Short};
  const sim::Circuit faulted = sim::inject_fault(built.circuit, fault);
  sim::CampaignSolveContext::Workspace ws;
  sim::SolveDiagnostics diagnostics;
  sim::BatchOutcome outcome = sim::BatchOutcome::Solved;
  const auto batched = context.try_solve(faulted, fault, ws, diagnostics, outcome);
  EXPECT_FALSE(batched.has_value());
  EXPECT_EQ(outcome, sim::BatchOutcome::Structural);
}

TEST(BatchContext, UnsolvableNominalDisablesTheContext) {
  // Contradictory sources: the nominal system is singular, so the context
  // must construct unusable and refuse every solve instead of throwing.
  sim::Circuit c;
  const int a = c.node("a");
  c.add_vsource("V1", a, 0, 12.0);
  c.add_vsource("V2", a, 0, 5.0);
  c.add_resistor("R1", a, 0, 100.0);
  const sim::CampaignSolveContext context(c, sim::SolveOptions{});
  EXPECT_FALSE(context.usable());
}

// ------------------------------------- Sherman–Morrison numerical ground --

TEST(ShermanMorrison, AgreesWithFreshFactorisationOnRandomRankOneUpdates) {
  // For randomized diagonally-dominant systems and random rank-1 node-pair
  // perturbations g*u*u^T (u = e_a - e_b, the shape every conductance delta
  // takes), the update formula against the nominal factorisation must match
  // a fresh factorisation of the perturbed matrix.
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 3 + rng.below(8);
    std::vector<std::vector<double>> a(n, std::vector<double>(n));
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (size_t j = 0; j < n; ++j) {
        a[i][j] = rng.uniform(-1.0, 1.0);
        row_sum += std::abs(a[i][j]);
      }
      a[i][i] = row_sum + 1.0;  // strict diagonal dominance: never singular
      b[i] = rng.uniform(-5.0, 5.0);
    }
    const size_t pa = rng.below(n);
    size_t pb = rng.below(n);
    while (pb == pa) pb = rng.below(n);
    const double g = rng.uniform(0.1, 10.0);

    // Fresh factorisation of the perturbed system.
    auto perturbed = a;
    perturbed[pa][pa] += g;
    perturbed[pb][pb] += g;
    perturbed[pa][pb] -= g;
    perturbed[pb][pa] -= g;
    const auto fresh = sim::solve_linear(perturbed, b);

    // Sherman–Morrison against the nominal factorisation.
    sim::dense::LuFactorization<double> lu;
    auto& buffer = lu.reset(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) buffer[i * n + j] = a[i][j];
    }
    lu.factor("singular test system");
    std::vector<double> u(n, 0.0);
    u[pa] = 1.0;
    u[pb] = -1.0;
    std::vector<double> z = lu.solve(u);
    std::vector<double> zb = lu.solve(b);
    const double denom = 1.0 + g * (z[pa] - z[pb]);
    ASSERT_GT(std::abs(denom), 1e-12);
    const double w = g * (zb[pa] - zb[pb]) / denom;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(zb[i] - w * z[i], fresh[i], 1e-8 * (1.0 + std::abs(fresh[i])))
          << "trial " << trial << " component " << i;
    }
  }
}
