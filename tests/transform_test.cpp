// Tests for the Simulink <-> SSAM transformation: forward losslessness,
// traceability, audit, and the reverse round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "decisive/base/error.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/transform/simulink.hpp"

using namespace decisive;
using namespace decisive::drivers;
using namespace decisive::transform;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

MdlModel case_study() { return parse_mdl_file(kAssets + "/power_supply.mdl"); }

MdlModel nested_model() {
  return parse_mdl(R"(
    Model { Name "nested"
      System {
        Block { BlockType DCVoltageSource Name "V1" Voltage "12" }
        Block { BlockType SubSystem Name "F" Comment "filter stage"
          System {
            Block { BlockType Port Name "vin" }
            Block { BlockType Port Name "vout" }
            Block { BlockType Inductor Name "L1" Inductance "0.002" }
            Line { SrcBlock "vin" SrcPort "p" DstBlock "L1" DstPort "p" }
            Line { SrcBlock "L1" SrcPort "n" DstBlock "vout" DstPort "p" }
          }
        }
        Block { BlockType SubSystem Name "U1" AnnotatedType "MCU" Variant "X7" }
        Block { BlockType Ground Name "G" }
        Line { SrcBlock "V1" SrcPort "p" DstBlock "F" DstPort "vin" }
        Line { SrcBlock "F" SrcPort "vout" DstBlock "U1" DstPort "vdd" }
        Line { SrcBlock "U1" SrcPort "gnd" DstBlock "G" DstPort "g" }
        Line { SrcBlock "V1" SrcPort "n" DstBlock "G" DstPort "g" }
      }
    })");
}

/// Order-insensitive structural comparison of two MDL systems.
void expect_equivalent(const MdlSystem& a, const MdlSystem& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (const auto& block : a.blocks) {
    const MdlBlock* other = b.block(block.name);
    ASSERT_NE(other, nullptr) << "missing block " << block.name;
    EXPECT_EQ(block.type, other->type) << block.name;
    EXPECT_EQ(block.params, other->params) << block.name;
    EXPECT_EQ(block.subsystem != nullptr, other->subsystem != nullptr) << block.name;
    if (block.subsystem != nullptr && other->subsystem != nullptr) {
      expect_equivalent(*block.subsystem, *other->subsystem);
    }
  }
  auto line_key = [](const MdlLine& line) {
    return line.src_block + ":" + line.src_port + "->" + line.dst_block + ":" + line.dst_port;
  };
  std::vector<std::string> la, lb;
  for (const auto& line : a.lines) la.push_back(line_key(line));
  for (const auto& line : b.lines) lb.push_back(line_key(line));
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  EXPECT_EQ(la, lb);
}

}  // namespace

TEST(Forward, CountsAndPackage) {
  ssam::SsamModel m;
  const auto result = simulink_to_ssam(case_study(), m);
  EXPECT_EQ(result.blocks, 13u);
  EXPECT_EQ(result.lines, 14u);
  EXPECT_GT(result.params, 0u);
  EXPECT_NE(result.root, model::kNullObject);
  EXPECT_NE(result.component_package, model::kNullObject);
  // Root component carries the model name.
  EXPECT_EQ(m.obj(result.root).get_string("name"), "sensor_power_supply");
}

TEST(Forward, ParametersBecomeConstraints) {
  ssam::SsamModel m;
  const auto result = simulink_to_ssam(case_study(), m);
  const auto mc1 = result.resolve("sensor_power_supply/MC1");
  ASSERT_NE(mc1, model::kNullObject);
  bool found = false;
  for (const auto c : m.obj(mc1).refs("implementationConstraints")) {
    if (m.obj(c).get_string("language") == "simulink-param" &&
        m.obj(c).get_string("name") == "SupplyResistance") {
      EXPECT_EQ(m.obj(c).get_string("body"), "100");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(m.obj(mc1).get_string("blockType"), "MCU");
}

TEST(Forward, InfrastructureBlocksMarked) {
  ssam::SsamModel m;
  const auto result = simulink_to_ssam(case_study(), m);
  const auto scope = result.resolve("sensor_power_supply/Scope1");
  ASSERT_NE(scope, model::kNullObject);
  EXPECT_EQ(m.obj(scope).get_string("componentType"), "simulation");
}

TEST(Forward, AnnotatedSubsystemGetsAnnotatedBlockType) {
  ssam::SsamModel m;
  const auto result = simulink_to_ssam(nested_model(), m);
  const auto u1 = result.resolve("nested/U1");
  ASSERT_NE(u1, model::kNullObject);
  EXPECT_EQ(m.obj(u1).get_string("blockType"), "MCU");
}

TEST(Forward, SubsystemPortsBecomeBoundaryIoNodes) {
  ssam::SsamModel m;
  const auto result = simulink_to_ssam(nested_model(), m);
  const auto filter = result.resolve("nested/F");
  ASSERT_NE(filter, model::kNullObject);
  const auto nodes = m.obj(filter).refs("ioNodes");
  ASSERT_EQ(nodes.size(), 2u);
  std::vector<std::string> names;
  for (const auto node : nodes) names.push_back(m.obj(node).get_string("name"));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"vin", "vout"}));
  // Port trace links exist too.
  EXPECT_NE(result.resolve("nested/F/vin"), model::kNullObject);
}

TEST(Audit, CaseStudyIsLossless) {
  ssam::SsamModel m;
  const auto mdl = case_study();
  const auto result = simulink_to_ssam(mdl, m);
  EXPECT_TRUE(audit_information_loss(mdl, m, result).empty());
}

TEST(Audit, NestedModelIsLossless) {
  ssam::SsamModel m;
  const auto mdl = nested_model();
  const auto result = simulink_to_ssam(mdl, m);
  const auto missing = audit_information_loss(mdl, m, result);
  EXPECT_TRUE(missing.empty()) << (missing.empty() ? "" : missing.front());
}

TEST(Audit, DetectsTamperedParameters) {
  ssam::SsamModel m;
  const auto mdl = case_study();
  const auto result = simulink_to_ssam(mdl, m);
  // Corrupt one preserved parameter and expect the audit to notice.
  const auto mc1 = result.resolve("sensor_power_supply/MC1");
  for (const auto c : m.obj(mc1).refs("implementationConstraints")) {
    if (m.obj(c).get_string("name") == "SupplyResistance") {
      m.obj(c).set_string("body", "tampered");
    }
  }
  const auto missing = audit_information_loss(mdl, m, result);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_NE(missing[0].find("SupplyResistance"), std::string::npos);
}

TEST(Audit, DetectsMissingBlocks) {
  ssam::SsamModel m;
  const auto mdl = case_study();
  auto result = simulink_to_ssam(mdl, m);
  // Drop a trace link: the audit reports the block as untransformed.
  std::erase_if(result.trace, [](const TraceLink& link) {
    return link.source == "sensor_power_supply/L1";
  });
  const auto missing = audit_information_loss(mdl, m, result);
  ASSERT_FALSE(missing.empty());
  EXPECT_NE(missing[0].find("L1"), std::string::npos);
}

TEST(RoundTrip, CaseStudy) {
  ssam::SsamModel m;
  const auto mdl = case_study();
  const auto result = simulink_to_ssam(mdl, m);
  const auto regenerated = ssam_to_simulink(m, result.root);
  EXPECT_EQ(regenerated.name, mdl.name);
  expect_equivalent(mdl.root, regenerated.root);
}

TEST(RoundTrip, NestedAndAnnotatedSubsystems) {
  ssam::SsamModel m;
  const auto mdl = nested_model();
  const auto result = simulink_to_ssam(mdl, m);
  const auto regenerated = ssam_to_simulink(m, result.root);
  expect_equivalent(mdl.root, regenerated.root);
  // The regenerated MDL still parses and rebuilds.
  const auto reparsed = parse_mdl(write_mdl(regenerated));
  expect_equivalent(mdl.root, reparsed.root);
}

TEST(Reverse, RefusesModelsWithoutTraceability) {
  ssam::SsamModel m;
  const auto pkg = m.create_component_package("hand-made");
  const auto sys = m.create_component(pkg, "sys");
  const auto a = m.add_io_node(sys, "a", "in");
  const auto b = m.add_io_node(sys, "b", "out");
  m.connect(sys, a, b);  // relationship without simulink-src/dst constraints
  EXPECT_THROW(ssam_to_simulink(m, sys), TransformError);
}

TEST(Forward, LineToUnknownBlockThrows) {
  const auto mdl = parse_mdl(R"(
    Model { Name "bad"
      System {
        Block { BlockType Ground Name "G" }
        Line { SrcBlock "ghost" SrcPort "p" DstBlock "G" DstPort "g" }
      }
    })");
  ssam::SsamModel m;
  EXPECT_THROW(simulink_to_ssam(mdl, m), TransformError);
}

TEST(Trace, ResolveFindsLinksByPath) {
  ssam::SsamModel m;
  const auto result = simulink_to_ssam(case_study(), m);
  EXPECT_NE(result.resolve("sensor_power_supply/D1"), model::kNullObject);
  EXPECT_EQ(result.resolve("sensor_power_supply/ghost"), model::kNullObject);
  // Every trace link has a rule name.
  for (const auto& link : result.trace) {
    EXPECT_FALSE(link.rule.empty());
    EXPECT_NE(link.target, model::kNullObject);
  }
}
