// Tests for Algorithm 1 (graph-based automated FMEA on SSAM models),
// including a property-based equivalence check against a brute-force
// single-point-failure oracle on random layered architectures.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/ssam/graph.hpp"

using namespace decisive;
using namespace decisive::core;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

struct Fixture {
  SsamModel m;
  ObjectId sys, in, out;

  Fixture() {
    const auto pkg = m.create_component_package("design");
    sys = m.create_component(pkg, "sys");
    in = m.add_io_node(sys, "in", "in");
    out = m.add_io_node(sys, "out", "out");
  }

  struct Sub {
    ObjectId comp, in, out;
  };
  Sub leaf(const std::string& name, double fit = 100.0) {
    Sub s;
    s.comp = m.create_component(sys, name);
    m.obj(s.comp).set_real("fit", fit);
    s.in = m.add_io_node(s.comp, name + ".in", "in");
    s.out = m.add_io_node(s.comp, name + ".out", "out");
    return s;
  }
};

const FmedaRow* find_row(const FmedaResult& result, const std::string& component,
                         const std::string& mode) {
  for (const auto& row : result.rows) {
    if (row.component == component && row.failure_mode == mode) return &row;
  }
  return nullptr;
}

bool has_warning(const FmedaResult& result, const std::string& needle) {
  for (const auto& warning : result.warnings) {
    if (warning.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

TEST(GraphFmea, SerialLossModesAreSinglePoint) {
  Fixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, f.out);
  f.m.add_failure_mode(a.comp, "Open", 0.5, "lossOfFunction");
  f.m.add_failure_mode(b.comp, "Open", 0.5, "lossOfFunction");

  const auto result = analyze_component(f.m, f.sys);
  EXPECT_TRUE(find_row(result, "a", "Open")->safety_related);
  EXPECT_TRUE(find_row(result, "b", "Open")->safety_related);
  EXPECT_EQ(find_row(result, "a", "Open")->effect, EffectClass::DVF);
}

TEST(GraphFmea, RedundantBranchIsNotSinglePoint) {
  Fixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, f.in, b.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.connect(f.sys, b.out, f.out);
  f.m.add_failure_mode(a.comp, "Open", 1.0, "lossOfFunction");
  f.m.add_failure_mode(b.comp, "Open", 1.0, "lossOfFunction");

  const auto result = analyze_component(f.m, f.sys);
  EXPECT_FALSE(find_row(result, "a", "Open")->safety_related);
  EXPECT_FALSE(find_row(result, "b", "Open")->safety_related);
  EXPECT_DOUBLE_EQ(result.spfm(), 1.0);  // nothing safety-related
}

TEST(GraphFmea, NonLossModeWithoutTraceabilityWarns) {
  Fixture f;
  const auto a = f.leaf("a");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.add_failure_mode(a.comp, "Short", 0.7, "erroneous");

  const auto result = analyze_component(f.m, f.sys);
  EXPECT_TRUE(has_warning(result, "manual review"));
  EXPECT_FALSE(find_row(result, "a", "Short")->safety_related);
}

TEST(GraphFmea, AffectedComponentTraceabilityInfersCriticality) {
  Fixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, f.out);
  // "Short" of a affects b (which is on all paths) -> safety-related, IVF.
  const auto fm = f.m.add_failure_mode(a.comp, "Short", 0.7, "erroneous");
  f.m.obj(fm).add_ref("affectedComponents", b.comp);

  const auto result = analyze_component(f.m, f.sys);
  const auto* row = find_row(result, "a", "Short");
  EXPECT_TRUE(row->safety_related);
  EXPECT_EQ(row->effect, EffectClass::IVF);
  EXPECT_TRUE(result.warnings.empty());
}

TEST(GraphFmea, AffectedRedundantComponentIsNotCritical) {
  Fixture f;
  const auto a = f.leaf("a");
  const auto b1 = f.leaf("b1");
  const auto b2 = f.leaf("b2");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b1.in);
  f.m.connect(f.sys, a.out, b2.in);
  f.m.connect(f.sys, b1.out, f.out);
  f.m.connect(f.sys, b2.out, f.out);
  const auto fm = f.m.add_failure_mode(a.comp, "Glitch", 0.2, "erroneous");
  f.m.obj(fm).add_ref("affectedComponents", b1.comp);  // b1 is redundant

  const auto result = analyze_component(f.m, f.sys);
  EXPECT_FALSE(find_row(result, "a", "Glitch")->safety_related);
}

TEST(GraphFmea, VerdictsWrittenBackIntoModel) {
  Fixture f;
  const auto a = f.leaf("a");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto fm = f.m.add_failure_mode(a.comp, "Open", 1.0, "lossOfFunction");

  analyze_component(f.m, f.sys);
  EXPECT_TRUE(f.m.obj(fm).get_bool("safetyRelated"));
  ASSERT_EQ(f.m.obj(fm).refs("effects").size(), 1u);
  EXPECT_EQ(f.m.obj(f.m.obj(fm).refs("effects")[0]).get_string("classification"), "DVF");
}

TEST(GraphFmea, ModelledMechanismBestCoverageApplies) {
  Fixture f;
  const auto a = f.leaf("a");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto fm = f.m.add_failure_mode(a.comp, "Open", 1.0, "lossOfFunction");
  f.m.add_safety_mechanism(a.comp, "weak", 0.5, 1.0, fm);
  f.m.add_safety_mechanism(a.comp, "strong", 0.95, 2.0, fm);
  f.m.add_safety_mechanism(a.comp, "blanket", 0.7, 0.5, model::kNullObject);  // covers all

  const auto result = analyze_component(f.m, f.sys);
  const auto* row = find_row(result, "a", "Open");
  EXPECT_EQ(row->safety_mechanism, "strong");
  EXPECT_DOUBLE_EQ(row->sm_coverage, 0.95);

  GraphFmeaOptions no_sm;
  no_sm.apply_modelled_mechanisms = false;
  const auto plain = analyze_component(f.m, f.sys, no_sm);
  EXPECT_TRUE(find_row(plain, "a", "Open")->safety_mechanism.empty());
}

TEST(GraphFmea, RecursesIntoCompositeSubcomponents) {
  Fixture f;
  const auto outer = f.leaf("outer");
  f.m.connect(f.sys, f.in, outer.in);
  f.m.connect(f.sys, outer.out, f.out);
  // outer contains a serial inner component.
  const auto inner = f.m.create_component(outer.comp, "inner");
  f.m.obj(inner).set_real("fit", 50.0);
  const auto inner_in = f.m.add_io_node(inner, "inner.in", "in");
  const auto inner_out = f.m.add_io_node(inner, "inner.out", "out");
  f.m.connect(outer.comp, outer.in, inner_in);
  f.m.connect(outer.comp, inner_out, outer.out);
  f.m.add_failure_mode(inner, "Open", 1.0, "lossOfFunction");

  const auto result = analyze_component(f.m, f.sys);
  const auto* row = find_row(result, "inner", "Open");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->safety_related);
}

TEST(GraphFmea, CompositeWithoutIoNodesWarnsInsteadOfThrowing) {
  Fixture f;
  const auto outer = f.leaf("outer");
  f.m.connect(f.sys, f.in, outer.in);
  f.m.connect(f.sys, outer.out, f.out);
  const auto inner = f.m.create_component(outer.comp, "inner");
  (void)inner;
  // outer has io nodes (it is a leaf fixture) but inner exists -> recursion
  // works; now strip outer's nodes scenario: create a second composite with
  // no io nodes at all.
  const auto bare = f.m.create_component(f.sys, "bare");
  f.m.create_component(bare, "bare.inner");

  const auto result = analyze_component(f.m, f.sys);
  bool warned = false;
  for (const auto& warning : result.warnings) {
    if (warning.find("cannot recurse") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(GraphFmea, ReRunningIsIdempotent) {
  Fixture f;
  const auto a = f.leaf("a");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto fm = f.m.add_failure_mode(a.comp, "Open", 1.0, "lossOfFunction");

  const auto first = analyze_component(f.m, f.sys);
  const size_t size_after_first = f.m.size();
  const auto second = analyze_component(f.m, f.sys);
  const auto third = analyze_component(f.m, f.sys);

  // Re-running must not accumulate FailureEffect objects on the model.
  EXPECT_EQ(f.m.size(), size_after_first);
  ASSERT_EQ(f.m.obj(fm).refs("effects").size(), 1u);
  EXPECT_EQ(write_csv(first.to_csv()), write_csv(second.to_csv()));
  EXPECT_EQ(write_csv(second.to_csv()), write_csv(third.to_csv()));
}

TEST(GraphFmea, ReRunningUpdatesStaleEffectClassification) {
  Fixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto fm = f.m.add_failure_mode(a.comp, "Open", 1.0, "lossOfFunction");

  analyze_component(f.m, f.sys);
  ASSERT_EQ(f.m.obj(f.m.obj(fm).refs("effects")[0]).get_string("classification"), "DVF");

  // Design change: add a redundant branch; a is no longer a single point.
  f.m.connect(f.sys, f.in, b.in);
  f.m.connect(f.sys, b.out, f.out);
  analyze_component(f.m, f.sys);
  ASSERT_EQ(f.m.obj(fm).refs("effects").size(), 1u);
  EXPECT_EQ(f.m.obj(f.m.obj(fm).refs("effects")[0]).get_string("classification"), "");
  EXPECT_FALSE(f.m.obj(fm).get_bool("safetyRelated"));
}

TEST(GraphFmea, DuplicateNamesAcrossLevelsAggregateByIdentity) {
  // Two distinct components both named "Regulator": one at the top level,
  // one nested inside a composite. Metrics must count both FITs.
  Fixture f;
  const auto reg1 = f.leaf("Regulator", 100.0);
  const auto outer = f.leaf("outer", 10.0);
  f.m.connect(f.sys, f.in, reg1.in);
  f.m.connect(f.sys, reg1.out, outer.in);
  f.m.connect(f.sys, outer.out, f.out);
  f.m.add_failure_mode(reg1.comp, "Open", 1.0, "lossOfFunction");

  const auto reg2 = f.m.create_component(outer.comp, "Regulator");
  f.m.obj(reg2).set_real("fit", 40.0);
  const auto reg2_in = f.m.add_io_node(reg2, "reg2.in", "in");
  const auto reg2_out = f.m.add_io_node(reg2, "reg2.out", "out");
  f.m.connect(outer.comp, outer.in, reg2_in);
  f.m.connect(outer.comp, reg2_out, outer.out);
  f.m.add_failure_mode(reg2, "Open", 1.0, "lossOfFunction");

  const auto result = analyze_component(f.m, f.sys);
  // Both Regulators are single points; the denominator counts each identity.
  EXPECT_DOUBLE_EQ(result.total_safety_related_fit(), 140.0);
  EXPECT_EQ(result.safety_related_components().size(), 2u);
  EXPECT_EQ(result.rows_of("Regulator").size(), 2u);
  EXPECT_EQ(result.rows_of(static_cast<std::uint64_t>(reg1.comp)).size(), 1u);
  EXPECT_EQ(result.rows_of(static_cast<std::uint64_t>(reg2)).size(), 1u);
  // Qualified paths disambiguate the display name.
  EXPECT_EQ(result.rows_of(static_cast<std::uint64_t>(reg1.comp))[0]->component_path,
            "sys/Regulator");
  EXPECT_EQ(result.rows_of(static_cast<std::uint64_t>(reg2))[0]->component_path,
            "sys/outer/Regulator");
}

TEST(GraphFmea, DegenerateSpfmIsSurfacedNotClaimedAsAsilD) {
  Fixture f;
  const auto a = f.leaf("a");
  const auto b = f.leaf("b");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, f.in, b.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.connect(f.sys, b.out, f.out);
  f.m.add_failure_mode(a.comp, "Open", 1.0, "lossOfFunction");

  const auto result = analyze_component(f.m, f.sys);
  ASSERT_FALSE(result.has_safety_related());
  EXPECT_DOUBLE_EQ(result.spfm(), 1.0);  // documented convention
  EXPECT_EQ(result.asil_label(), "no safety-related hardware");
  EXPECT_TRUE(has_warning(result, "not an ASIL-D claim"));
}

TEST(GraphFmea, InoutNodesActAsBothDirections) {
  // A subcomponent exposing a single inout node still carries the signal:
  // in -> x (inout) -> out makes X a single point.
  Fixture f;
  const auto x = f.m.create_component(f.sys, "X");
  f.m.obj(x).set_real("fit", 25.0);
  const auto xio = f.m.add_io_node(x, "x.io", "inout");
  f.m.connect(f.sys, f.in, xio);
  f.m.connect(f.sys, xio, f.out);
  f.m.add_failure_mode(x, "Open", 1.0, "lossOfFunction");

  const auto result = analyze_component(f.m, f.sys);
  const auto* row = find_row(result, "X", "Open");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->safety_related);
}

TEST(GraphFmea, GarbageDirectionRaisesAnalysisError) {
  Fixture f;
  const auto a = f.leaf("a");
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.add_failure_mode(a.comp, "Open", 1.0, "lossOfFunction");
  // add_io_node validates, so corrupt the attribute directly (e.g. an
  // imported model with a typo).
  f.m.obj(a.in).set_string("direction", "Imput");

  try {
    analyze_component(f.m, f.sys);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("Imput"), std::string::npos) << message;
    EXPECT_NE(message.find("a.in"), std::string::npos) << message;
  }
}

TEST(GraphFmea, DenseComponentNoLongerThrowsPathExplosion) {
  // 8 fully-connected layers of width 6: 6^8 ≈ 1.7M simple paths — far past
  // the old enumeration guard. The dominator engine decides without
  // materialising any of them.
  Fixture f;
  std::vector<std::vector<Fixture::Sub>> grid;
  for (int layer = 0; layer < 8; ++layer) {
    std::vector<Fixture::Sub> row;
    for (int i = 0; i < 6; ++i) {
      row.push_back(f.leaf("L" + std::to_string(layer) + "C" + std::to_string(i)));
      f.m.add_failure_mode(row.back().comp, "Open", 1.0, "lossOfFunction");
    }
    grid.push_back(std::move(row));
  }
  for (const auto& sub : grid.front()) f.m.connect(f.sys, f.in, sub.in);
  for (size_t layer = 0; layer + 1 < grid.size(); ++layer) {
    for (const auto& from : grid[layer]) {
      for (const auto& to : grid[layer + 1]) f.m.connect(f.sys, from.out, to.in);
    }
  }
  for (const auto& sub : grid.back()) f.m.connect(f.sys, sub.out, f.out);

  const auto graph = ssam::build_graph(f.m, f.sys);
  EXPECT_THROW(ssam::enumerate_paths(graph), AnalysisError);  // the old engine

  const auto result = analyze_component(f.m, f.sys);  // the new one completes
  EXPECT_EQ(result.rows.size(), 48u);
  for (const auto& row : result.rows) {
    EXPECT_FALSE(row.safety_related) << row.component;  // every layer is redundant
  }
}

TEST(GraphFmea, DeepChainDoesNotOverflowTheStack) {
  // A 10k-deep serial chain: every link is a single point. Recursive DFS
  // would blow the call stack here; the engine must stay iterative.
  constexpr int kDepth = 10000;
  Fixture f;
  ObjectId previous = f.in;
  ObjectId first = model::kNullObject;
  ObjectId last = model::kNullObject;
  for (int i = 0; i < kDepth; ++i) {
    const auto link = f.leaf("link" + std::to_string(i), 1.0);
    f.m.connect(f.sys, previous, link.in);
    previous = link.out;
    if (i == 0) first = link.comp;
    if (i == kDepth - 1) last = link.comp;
  }
  f.m.connect(f.sys, previous, f.out);
  f.m.add_failure_mode(first, "Open", 1.0, "lossOfFunction");
  f.m.add_failure_mode(last, "Open", 1.0, "lossOfFunction");

  const auto graph = ssam::build_graph(f.m, f.sys);
  const ssam::SinglePointAnalysis analysis(graph);
  EXPECT_TRUE(analysis.has_path());
  EXPECT_TRUE(analysis.is_single_point(first));
  EXPECT_TRUE(analysis.is_single_point(last));

  const auto result = analyze_component(f.m, f.sys);
  EXPECT_TRUE(find_row(result, "link0", "Open")->safety_related);
  EXPECT_TRUE(find_row(result, "link" + std::to_string(kDepth - 1), "Open")->safety_related);
}

TEST(GraphFmea, OutputIsByteIdenticalForAnyJobCount) {
  // Nested architecture with several units so the pool actually has work.
  Fixture f;
  ObjectId previous = f.in;
  for (int i = 0; i < 6; ++i) {
    const auto outer = f.leaf("outer" + std::to_string(i), 10.0 + i);
    f.m.connect(f.sys, previous, outer.in);
    previous = outer.out;
    const auto inner = f.m.create_component(outer.comp, "inner" + std::to_string(i));
    f.m.obj(inner).set_real("fit", 5.0 + i);
    const auto inner_in = f.m.add_io_node(inner, "i" + std::to_string(i) + ".in", "in");
    const auto inner_out = f.m.add_io_node(inner, "i" + std::to_string(i) + ".out", "out");
    f.m.connect(outer.comp, outer.in, inner_in);
    f.m.connect(outer.comp, inner_out, outer.out);
    f.m.add_failure_mode(outer.comp, "Open", 0.6, "lossOfFunction");
    f.m.add_failure_mode(inner, "Open", 1.0, "lossOfFunction");
  }
  f.m.connect(f.sys, previous, f.out);

  GraphFmeaOptions serial;
  serial.jobs = 1;
  const auto baseline = analyze_component(f.m, f.sys, serial);
  for (const int jobs : {2, 4, 0}) {
    GraphFmeaOptions options;
    options.jobs = jobs;
    const auto parallel = analyze_component(f.m, f.sys, options);
    EXPECT_EQ(write_csv(baseline.to_csv()), write_csv(parallel.to_csv())) << jobs;
    EXPECT_EQ(baseline.warnings, parallel.warnings) << jobs;
  }
}

// ------------------------------------------------- brute-force equivalence --

namespace {

/// Oracle: component c is a single point of failure iff removing c's through
/// edges disconnects every input->output path.
bool oracle_single_point(const ssam::ComponentGraph& graph, ObjectId component) {
  // BFS over edges, skipping any node owned by `component`.
  std::set<ObjectId> visited;
  std::vector<ObjectId> stack;
  const std::set<ObjectId> outputs(graph.outputs.begin(), graph.outputs.end());
  auto blocked = [&](ObjectId node) {
    const auto it = graph.owner.find(node);
    return it != graph.owner.end() && it->second == component;
  };
  for (const ObjectId input : graph.inputs) {
    if (!blocked(input)) stack.push_back(input);
  }
  while (!stack.empty()) {
    const ObjectId node = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    if (outputs.contains(node)) return false;  // still reachable
    const auto it = graph.edges.find(node);
    if (it == graph.edges.end()) continue;
    for (const ObjectId next : it->second) {
      if (!blocked(next)) stack.push_back(next);
    }
  }
  return true;  // no output reachable without the component
}

}  // namespace

class Algorithm1Property : public ::testing::TestWithParam<int> {};

TEST_P(Algorithm1Property, MatchesBruteForceOracleOnRandomArchitectures) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Fixture f;

  // Random layered architecture: 2-5 layers, 1-3 components per layer,
  // random forward wiring that keeps every component reachable.
  const int layers = 2 + static_cast<int>(rng.below(4));
  std::vector<std::vector<Fixture::Sub>> grid;
  for (int layer = 0; layer < layers; ++layer) {
    const int width = 1 + static_cast<int>(rng.below(3));
    std::vector<Fixture::Sub> row;
    for (int i = 0; i < width; ++i) {
      row.push_back(f.leaf("L" + std::to_string(layer) + "C" + std::to_string(i)));
      f.m.add_failure_mode(row.back().comp, "Open", 1.0, "lossOfFunction");
    }
    grid.push_back(std::move(row));
  }
  // Wire inputs -> layer0; each component to >=1 component of the next
  // layer; last layer -> output.
  for (const auto& sub : grid.front()) f.m.connect(f.sys, f.in, sub.in);
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (const auto& from : grid[static_cast<size_t>(layer)]) {
      bool connected = false;
      for (const auto& to : grid[static_cast<size_t>(layer) + 1]) {
        if (rng.chance(0.6) || (!connected && &to == &grid[static_cast<size_t>(layer) + 1].back())) {
          f.m.connect(f.sys, from.out, to.in);
          connected = true;
        }
      }
    }
  }
  for (const auto& sub : grid.back()) f.m.connect(f.sys, sub.out, f.out);

  // The dominator engine vs brute-force path enumeration vs the
  // reachability oracle — all three must agree on every subcomponent.
  const auto graph = ssam::build_graph(f.m, f.sys);
  const auto paths = ssam::enumerate_paths(graph);
  const ssam::SinglePointAnalysis analysis(graph);
  for (const auto& layer : grid) {
    for (const auto& sub : layer) {
      EXPECT_EQ(analysis.is_single_point(sub.comp),
                ssam::on_all_paths(graph, paths, sub.comp))
          << "component " << sub.comp;
    }
  }

  const auto result = analyze_component(f.m, f.sys);
  for (const auto& row : result.rows) {
    const ObjectId comp = f.m.find_by_name(ssam::cls::Component, row.component);
    ASSERT_NE(comp, model::kNullObject);
    // A component with no path through it at all can never be safety-
    // related by Algorithm 1; the oracle agrees unless the component is
    // unreachable (then removing it changes nothing).
    EXPECT_EQ(row.safety_related, oracle_single_point(graph, comp) &&
                                      ssam::on_all_paths(graph, paths, comp))
        << row.component;
    // And the two formulations must agree whenever the component lies on at
    // least one path.
    bool on_some_path = false;
    for (const auto& path : paths) {
      for (const ObjectId node : path) {
        const auto it = graph.owner.find(node);
        if (it != graph.owner.end() && it->second == comp) on_some_path = true;
      }
    }
    if (on_some_path) {
      EXPECT_EQ(ssam::on_all_paths(graph, paths, comp), oracle_single_point(graph, comp))
          << row.component;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Algorithm1Property, ::testing::Range(1, 31));
