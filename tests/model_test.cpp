// Unit tests for the reflective model framework (the EMF substitute):
// metamodel, dynamic objects, repositories and XMI persistence.
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/model/meta.hpp"
#include "decisive/model/object.hpp"
#include "decisive/model/repository.hpp"
#include "decisive/model/xmi.hpp"

using namespace decisive;
using namespace decisive::model;

namespace {

/// A small test metamodel: Element <- Part; Part has attrs + refs.
struct TestMeta {
  MetaPackage pkg{"test"};
  MetaClass* element;
  MetaClass* part;
  MetaClass* port;

  TestMeta() {
    element = &pkg.define_abstract("Element");
    element->add_attribute("name", AttrType::String);
    port = &pkg.define("Port", element);
    port->add_attribute("direction", AttrType::String);
    part = &pkg.define("Part", element);
    part->add_attribute("fit", AttrType::Real);
    part->add_attribute("count", AttrType::Int);
    part->add_attribute("critical", AttrType::Bool);
    part->add_reference("ports", *port, /*containment=*/true, /*many=*/true);
    part->add_reference("next", *part, /*containment=*/false, /*many=*/false);
  }
};

}  // namespace

// ------------------------------------------------------------------- meta --

TEST(Meta, InheritanceLookup) {
  TestMeta meta;
  EXPECT_NE(meta.part->find_attribute("name"), nullptr);  // inherited
  EXPECT_NE(meta.part->find_attribute("fit"), nullptr);
  EXPECT_EQ(meta.port->find_attribute("fit"), nullptr);
  EXPECT_TRUE(meta.part->is_kind_of(*meta.element));
  EXPECT_FALSE(meta.element->is_kind_of(*meta.part));
}

TEST(Meta, DuplicateFeatureThrows) {
  TestMeta meta;
  EXPECT_THROW(meta.part->add_attribute("fit", AttrType::Real), ModelError);
  EXPECT_THROW(meta.part->add_attribute("name", AttrType::String), ModelError);  // inherited
  EXPECT_THROW(meta.part->add_reference("ports", *meta.port, true, true), ModelError);
}

TEST(Meta, DuplicateClassThrows) {
  TestMeta meta;
  EXPECT_THROW(meta.pkg.define("Part"), ModelError);
}

TEST(Meta, CheckedLookupThrows) {
  TestMeta meta;
  EXPECT_THROW((void)meta.part->attribute("nope"), ModelError);
  EXPECT_THROW((void)meta.part->reference("nope"), ModelError);
  EXPECT_THROW((void)meta.pkg.get("Nope"), ModelError);
  EXPECT_NO_THROW((void)meta.pkg.get("Part"));
}

TEST(Meta, AllFeaturesIncludeInherited) {
  TestMeta meta;
  const auto attrs = meta.part->all_attributes();
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs.front()->name, "name");  // inherited first
}

// ----------------------------------------------------------------- object --

TEST(Object, AbstractClassCannotBeInstantiated) {
  TestMeta meta;
  EXPECT_THROW(ModelObject(*meta.element, 1), ModelError);
}

TEST(Object, TypedAttributeAccess) {
  TestMeta meta;
  ModelObject obj(*meta.part, 1);
  obj.set_string("name", "D1");
  obj.set_real("fit", 10.0);
  obj.set_int("count", 3);
  obj.set_bool("critical", true);
  EXPECT_EQ(obj.get_string("name"), "D1");
  EXPECT_DOUBLE_EQ(obj.get_real("fit"), 10.0);
  EXPECT_EQ(obj.get_int("count"), 3);
  EXPECT_TRUE(obj.get_bool("critical"));
  EXPECT_TRUE(obj.has("name"));
  EXPECT_FALSE(obj.has("direction"));  // not a Part feature at all
}

TEST(Object, UnsetAttributesReturnFallback) {
  TestMeta meta;
  const ModelObject obj(*meta.part, 1);
  EXPECT_EQ(obj.get_string("name", "default"), "default");
  EXPECT_DOUBLE_EQ(obj.get_real("fit", -1.0), -1.0);
  EXPECT_FALSE(obj.has("fit"));
}

TEST(Object, TypeMismatchThrows) {
  TestMeta meta;
  ModelObject obj(*meta.part, 1);
  EXPECT_THROW(obj.set("fit", Value(std::string("ten"))), ModelError);
  EXPECT_THROW(obj.set("name", Value(true)), ModelError);
  EXPECT_THROW(obj.set("unknown", Value(1.0)), ModelError);
}

TEST(Object, IntWidensToReal) {
  TestMeta meta;
  ModelObject obj(*meta.part, 1);
  obj.set("fit", Value(static_cast<long long>(5)));
  EXPECT_DOUBLE_EQ(obj.get_real("fit"), 5.0);
}

TEST(Object, SingleReferenceRejectsSecondTarget) {
  TestMeta meta;
  ModelObject obj(*meta.part, 1);
  obj.add_ref("next", 7);
  EXPECT_THROW(obj.add_ref("next", 8), ModelError);
  obj.set_ref("next", 9);  // replace is fine
  EXPECT_EQ(obj.ref("next"), 9u);
}

TEST(Object, ManyReferenceAccumulatesAndRemoves) {
  TestMeta meta;
  ModelObject obj(*meta.part, 1);
  obj.add_ref("ports", 2);
  obj.add_ref("ports", 3);
  EXPECT_EQ(obj.refs("ports").size(), 2u);
  EXPECT_TRUE(obj.remove_ref("ports", 2));
  EXPECT_FALSE(obj.remove_ref("ports", 2));
  EXPECT_EQ(obj.refs("ports"), (std::vector<ObjectId>{3}));
  EXPECT_EQ(obj.ref("next"), kNullObject);
}

// ------------------------------------------------------------- repository --

TEST(FullLoadRepository, CreateFindIterate) {
  TestMeta meta;
  FullLoadRepository repo;
  const ObjectId a = repo.create(*meta.part).id();
  const ObjectId b = repo.create(*meta.port).id();
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_NE(repo.find(a), nullptr);
  EXPECT_EQ(repo.find(999), nullptr);
  EXPECT_THROW((void)repo.get(999), ModelError);
  size_t parts = 0;
  repo.for_each_of(*meta.part, [&](const ModelObject&) { ++parts; });
  EXPECT_EQ(parts, 1u);
  EXPECT_EQ(repo.all_of(*meta.element).size(), 2u);  // kind-of matching
  (void)b;
}

TEST(FullLoadRepository, MemoryBudgetEnforced) {
  TestMeta meta;
  FullLoadRepository repo(/*memory_budget_bytes=*/2000);
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) repo.create(*meta.part);
      },
      CapacityError);
}

namespace {

class CountingSource final : public ElementSource {
 public:
  CountingSource(const MetaClass& cls, std::uint64_t count) : cls_(&cls), count_(count) {}
  [[nodiscard]] std::uint64_t size_hint() const override { return count_; }
  bool next(const std::function<void(const MetaClass&,
                                     const std::function<void(ModelObject&)>&)>& emit)
      override {
    if (emitted_ >= count_) return false;
    const auto i = emitted_++;
    emit(*cls_, [i](ModelObject& obj) {
      obj.set_real("fit", static_cast<double>(i));
      obj.set_bool("critical", i % 2 == 0);
    });
    return true;
  }

 private:
  const MetaClass* cls_;
  std::uint64_t count_;
  std::uint64_t emitted_ = 0;
};

}  // namespace

TEST(FullLoadRepository, LoadFromSource) {
  TestMeta meta;
  FullLoadRepository repo;
  CountingSource source(*meta.part, 10);
  repo.load_from(source);
  EXPECT_EQ(repo.size(), 10u);
}

TEST(FullLoadRepository, AdmissionControlRefusesHugeLoads) {
  TestMeta meta;
  FullLoadRepository repo(/*memory_budget_bytes=*/1024 * 1024);
  CountingSource source(*meta.part, 100'000'000);  // projected ~19 GB
  EXPECT_THROW(repo.load_from(source), CapacityError);
  EXPECT_EQ(repo.size(), 0u);  // refused up front, not mid-way
}

TEST(IndexedRepository, AggregatesMatchFullLoad) {
  TestMeta meta;
  IndexedRepository indexed;
  indexed.index_attribute(*meta.part, "fit");
  indexed.index_attribute(*meta.part, "critical");
  CountingSource source(*meta.part, 100);
  indexed.load_from(source);
  EXPECT_EQ(indexed.element_count(), 100u);
  EXPECT_EQ(indexed.count_of(*meta.part), 100u);
  EXPECT_EQ(indexed.count_of(*meta.element), 100u);  // kind-of
  EXPECT_DOUBLE_EQ(indexed.sum(*meta.part, "fit"), 99.0 * 100.0 / 2.0);
  EXPECT_EQ(indexed.count_true(*meta.part, "critical"), 50u);
}

TEST(IndexedRepository, AggregateOnlyModeSavesMemoryButForbidsPerValue) {
  TestMeta meta;
  IndexedRepository indexed;
  indexed.index_attribute(*meta.part, "fit", /*retain_values=*/false);
  CountingSource source(*meta.part, 1000);
  indexed.load_from(source);
  EXPECT_DOUBLE_EQ(indexed.sum(*meta.part, "fit"), 999.0 * 1000.0 / 2.0);
  EXPECT_THROW(indexed.for_each_value(*meta.part, "fit", [](double) {}), ModelError);
  EXPECT_LT(indexed.approx_bytes(), 4096u);
}

TEST(IndexedRepository, UnindexedAttributeThrows) {
  TestMeta meta;
  IndexedRepository indexed;
  EXPECT_THROW((void)indexed.sum(*meta.part, "fit"), ModelError);
}

// -------------------------------------------------------------------- XMI --

TEST(Xmi, RoundTripPreservesAttributesAndReferences) {
  TestMeta meta;
  FullLoadRepository repo;
  ModelObject& d1 = repo.create(*meta.part);
  d1.set_string("name", "D1");
  d1.set_real("fit", 10.5);
  d1.set_bool("critical", true);
  ModelObject& p1 = repo.create(*meta.port);
  p1.set_string("direction", "in");
  d1.add_ref("ports", p1.id());
  ModelObject& d2 = repo.create(*meta.part);
  d2.set_string("name", "D2");
  d1.set_ref("next", d2.id());

  const std::string text = save_xmi(repo, meta.pkg);
  FullLoadRepository loaded;
  load_xmi(loaded, meta.pkg, text);
  ASSERT_EQ(loaded.size(), 3u);

  const ModelObject* d1_loaded = nullptr;
  loaded.for_each([&](const ModelObject& obj) {
    if (obj.get_string("name") == "D1") d1_loaded = &obj;
  });
  ASSERT_NE(d1_loaded, nullptr);
  EXPECT_DOUBLE_EQ(d1_loaded->get_real("fit"), 10.5);
  EXPECT_TRUE(d1_loaded->get_bool("critical"));
  ASSERT_EQ(d1_loaded->refs("ports").size(), 1u);
  EXPECT_EQ(loaded.get(d1_loaded->refs("ports")[0]).get_string("direction"), "in");
  EXPECT_EQ(loaded.get(d1_loaded->ref("next")).get_string("name"), "D2");
}

TEST(Xmi, LoadAppendsAndRemapsIds) {
  TestMeta meta;
  FullLoadRepository repo;
  repo.create(*meta.part).set_string("name", "first");
  const std::string text = save_xmi(repo, meta.pkg);
  load_xmi(repo, meta.pkg, text);  // append the same content again
  EXPECT_EQ(repo.size(), 2u);
}

TEST(Xmi, UnknownClassThrows) {
  TestMeta meta;
  FullLoadRepository repo;
  EXPECT_THROW(
      load_xmi(repo, meta.pkg,
               "<model package=\"test\"><object id=\"1\" class=\"Nope\"/></model>"),
      ModelError);
}

TEST(Xmi, DanglingReferenceThrows) {
  TestMeta meta;
  FullLoadRepository repo;
  EXPECT_THROW(load_xmi(repo, meta.pkg,
                        "<model package=\"test\">"
                        "<object id=\"1\" class=\"Part\">"
                        "<ref name=\"next\" targets=\"99\"/></object></model>"),
               ModelError);
}

TEST(Xmi, ValueFromStringParsesEachType) {
  EXPECT_EQ(std::get<std::string>(value_from_string(AttrType::String, "x")), "x");
  EXPECT_EQ(std::get<long long>(value_from_string(AttrType::Int, "4")), 4);
  EXPECT_DOUBLE_EQ(std::get<double>(value_from_string(AttrType::Real, "4.5")), 4.5);
  EXPECT_TRUE(std::get<bool>(value_from_string(AttrType::Bool, "true")));
  EXPECT_THROW(value_from_string(AttrType::Int, "x"), ParseError);
}
