// Unit tests for the circuit simulator: MNA solver vs analytic solutions,
// transient integration, fault injection, and the MDL circuit builder.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <new>

#include "decisive/base/error.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/sim/circuit.hpp"
#include "decisive/sim/fault.hpp"
#include "decisive/sim/solver.hpp"

using namespace decisive;
using namespace decisive::sim;

// Global allocation counter for the workspace-reuse regression test below.
// Only the plain (unaligned) overloads are replaced; each keeps malloc/free
// pairing consistent with its matching delete.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

// The compiler cannot see that new and delete below pair malloc with free
// consistently, and flags the free() calls as mismatched.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

// ---------------------------------------------------------------- circuit --

TEST(Circuit, NamedNodesAndGroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), 0);
  EXPECT_EQ(c.node("gnd"), 0);
  EXPECT_EQ(c.node("GND"), 0);
  const int n1 = c.node("n1");
  EXPECT_EQ(c.node("n1"), n1);
  EXPECT_NE(c.node("n2"), n1);
}

TEST(Circuit, RejectsInvalidElements) {
  Circuit c;
  const int n = c.node("n");
  EXPECT_THROW(c.add_resistor("R1", n, 0, -5.0), SimulationError);
  EXPECT_THROW(c.add_resistor("", n, 0, 5.0), SimulationError);
  c.add_resistor("R1", n, 0, 5.0);
  EXPECT_THROW(c.add_resistor("R1", n, 0, 5.0), SimulationError);  // duplicate
  EXPECT_THROW(c.add_capacitor("C1", n, 99, 1e-6), SimulationError);  // bad node
}

TEST(Circuit, LookupByName) {
  Circuit c;
  c.add_resistor("R1", c.node("a"), 0, 100.0);
  EXPECT_NE(c.find("R1"), nullptr);
  EXPECT_EQ(c.find("R2"), nullptr);
  EXPECT_THROW((void)c.get("R2"), SimulationError);
  EXPECT_EQ(c.get("R1").value, 100.0);
}

// --------------------------------------------------------------- dc solve --

TEST(Solver, LinearSolveAgainstKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  const auto x = solve_linear({{2, 1}, {1, 3}}, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solver, SingularSystemThrows) {
  EXPECT_THROW(solve_linear({{1, 1}, {2, 2}}, {1, 2}), SimulationError);
}

TEST(Solver, ComplexLinearSolveAgainstKnownSystem) {
  using C = std::complex<double>;
  // A = [[2, i], [-i, 3]], x = (1, 1+i)  ->  b = (1+i, 3+2i).
  const auto x = solve_linear_complex({{C(2, 0), C(0, 1)}, {C(0, -1), C(3, 0)}},
                                      {C(1, 1), C(3, 2)});
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), 0.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), 1.0, 1e-12);
}

TEST(Solver, ComplexSingularSystemThrows) {
  using C = std::complex<double>;
  EXPECT_THROW(solve_linear_complex({{C(1, 1), C(1, 1)}, {C(2, 2), C(2, 2)}}, {C(1, 0), C(2, 0)}),
               SimulationError);
}

// Malformed systems must throw SimulationError instead of reading out of
// bounds — the historical complex kernel skipped the height check entirely
// and neither kernel validated row widths. Both now share one validator.
TEST(Solver, RejectsMismatchedSystemHeight) {
  EXPECT_THROW(solve_linear({{1, 0}, {0, 1}}, {1, 2, 3}), SimulationError);
  EXPECT_THROW(solve_linear({{1, 0, 0}, {0, 1, 0}}, {1, 2, 3}), SimulationError);
  using C = std::complex<double>;
  EXPECT_THROW(solve_linear_complex({{C(1, 0)}}, {C(1, 0), C(2, 0)}), SimulationError);
  EXPECT_THROW(solve_linear_complex({{C(1, 0), C(0, 0)}, {C(0, 0), C(1, 0)}}, {C(1, 0)}),
               SimulationError);
}

TEST(Solver, RejectsRaggedRows) {
  EXPECT_THROW(solve_linear({{1, 0, 0}, {0, 1}, {0, 0, 1}}, {1, 2, 3}), SimulationError);
  EXPECT_THROW(solve_linear({{1, 0, 0, 7}, {0, 1, 0}, {0, 0, 1}}, {1, 2, 3}), SimulationError);
  EXPECT_THROW(solve_linear({{}}, {1}), SimulationError);
  using C = std::complex<double>;
  EXPECT_THROW(solve_linear_complex({{C(1, 0), C(0, 0)}, {C(0, 0)}}, {C(1, 0), C(2, 0)}),
               SimulationError);
}

class DividerSweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(DividerSweep, VoltageDividerMatchesAnalytic) {
  const auto [r1, r2] = GetParam();
  Circuit c;
  const int in = c.node("in");
  const int mid = c.node("mid");
  c.add_vsource("V", in, 0, 10.0);
  c.add_resistor("R1", in, mid, r1);
  c.add_resistor("R2", mid, 0, r2);
  c.add_voltage_sensor("VS", mid, 0);
  const auto op = dc_operating_point(c);
  EXPECT_NEAR(op.reading("VS"), 10.0 * r2 / (r1 + r2), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Ratios, DividerSweep,
                         ::testing::Values(std::pair{1e3, 1e3}, std::pair{1e3, 9e3},
                                           std::pair{470.0, 330.0}, std::pair{1e5, 1.0},
                                           std::pair{10.0, 1e6}));

TEST(Solver, ParallelResistors) {
  Circuit c;
  const int n = c.node("n");
  const int s = c.node("s");
  c.add_vsource("V", n, 0, 6.0);
  c.add_current_sensor("CS", n, s);
  c.add_resistor("R1", s, 0, 100.0);
  c.add_resistor("R2", s, 0, 100.0);
  const auto op = dc_operating_point(c);
  // Sensor between source and load measures -I (source convention); load is
  // 50 ohms -> 120 mA magnitude.
  EXPECT_NEAR(std::abs(op.reading("CS")), 6.0 / 50.0, 1e-6);
}

TEST(Solver, CurrentSourceIntoResistor) {
  Circuit c;
  const int n = c.node("n");
  c.add_isource("I", 0, n, 0.01);  // 10 mA into the node
  c.add_resistor("R", n, 0, 1000.0);
  c.add_voltage_sensor("VS", n, 0);
  const auto op = dc_operating_point(c);
  EXPECT_NEAR(std::abs(op.reading("VS")), 10.0, 1e-6);
}

TEST(Solver, InductorIsDcShort) {
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V", a, 0, 5.0);
  c.add_inductor("L", a, b, 1e-3);
  c.add_resistor("R", b, 0, 1000.0);
  c.add_voltage_sensor("VS", b, 0);
  const auto op = dc_operating_point(c);
  EXPECT_NEAR(op.reading("VS"), 5.0, 1e-6);
}

TEST(Solver, CapacitorIsDcOpen) {
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V", a, 0, 5.0);
  c.add_resistor("R", a, b, 1000.0);
  c.add_capacitor("C", b, 0, 1e-6);
  c.add_voltage_sensor("VS", b, 0);
  const auto op = dc_operating_point(c);
  EXPECT_NEAR(op.reading("VS"), 5.0, 1e-6);  // no DC current -> no drop
}

TEST(Solver, DiodeForwardDropIsRealistic) {
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V", a, 0, 5.0);
  c.add_diode("D", a, b);
  c.add_resistor("R", b, 0, 1000.0);
  c.add_voltage_sensor("VD", a, b);
  const auto op = dc_operating_point(c);
  EXPECT_GT(op.reading("VD"), 0.4);
  EXPECT_LT(op.reading("VD"), 0.8);
}

TEST(Solver, ReverseDiodeBlocks) {
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V", a, 0, 5.0);
  c.add_diode("D", b, a);  // reverse biased
  c.add_resistor("R", b, 0, 1000.0);
  c.add_voltage_sensor("VS", b, 0);
  const auto op = dc_operating_point(c);
  EXPECT_NEAR(op.reading("VS"), 0.0, 1e-3);
}

TEST(Solver, SwitchOpenVsClosed) {
  for (const bool closed : {true, false}) {
    Circuit c;
    const int a = c.node("a");
    const int b = c.node("b");
    c.add_vsource("V", a, 0, 5.0);
    c.add_switch("SW", a, b, closed);
    c.add_resistor("R", b, 0, 1000.0);
    c.add_voltage_sensor("VS", b, 0);
    const auto op = dc_operating_point(c);
    if (closed) EXPECT_NEAR(op.reading("VS"), 5.0, 1e-2);
    else EXPECT_LT(op.reading("VS"), 0.1);
  }
}

TEST(Solver, McuStatusReflectsSupplyAndRam) {
  Circuit c;
  const int vdd = c.node("vdd");
  c.add_vsource("V", vdd, 0, 5.0);
  c.add_mcu("MC", vdd, 0, 100.0);
  auto op = dc_operating_point(c);
  EXPECT_DOUBLE_EQ(op.reading("MC"), 1.0);

  c.get("V").value = 2.0;  // below the 3 V brown-out threshold
  op = dc_operating_point(c);
  EXPECT_DOUBLE_EQ(op.reading("MC"), 0.0);

  c.get("V").value = 5.0;
  c.get("MC").ram_ok = false;
  op = dc_operating_point(c);
  EXPECT_DOUBLE_EQ(op.reading("MC"), 0.0);
}

TEST(Solver, MissingReadingThrows) {
  Circuit c;
  c.add_vsource("V", c.node("a"), 0, 1.0);
  const auto op = dc_operating_point(c);
  EXPECT_THROW((void)op.reading("nope"), SimulationError);
}

TEST(Solver, NewtonIterationReusesWorkspace) {
  // The dense Jacobian and RHS are hoisted into a per-solve workspace: the
  // Newton loop must not allocate per iteration. A diode circuit takes many
  // iterations to converge; under the old per-iteration reallocation each
  // iteration cost ~(dim + 3) allocations, so the total scaled with the
  // iteration count. The bound below is generous for one solve's fixed
  // costs (structure analysis, workspace, result maps) but far below the
  // old per-iteration regime.
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  const int s = c.node("s");
  c.add_vsource("V", a, 0, 5.0);
  c.add_diode("D", a, b);
  c.add_resistor("R", b, s, 1000.0);
  c.add_current_sensor("I", s, 0);
  (void)dc_operating_point(c);  // warm up lazily-initialised globals
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  (void)dc_operating_point(c);
  const std::size_t per_solve = g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_LT(per_solve, 120u);
}

// -------------------------------------------------------------- transient --

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // Switch-on of an RC from a zero initial condition is modelled by starting
  // with the capacitor shorted... instead start from DC with source at 0 and
  // step it: here we validate the discharge path: V source drives R-C, DC
  // initial condition is fully charged, then the source is stuck to 0 and
  // the capacitor discharges with tau = RC.
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V", a, 0, 0.0);  // source already off
  c.add_resistor("R", a, b, 1000.0);
  c.add_capacitor("C", b, 0, 1e-6);
  c.add_voltage_sensor("VC", b, 0);
  // Manually give the capacitor an initial 5 V by solving a charged variant:
  // simpler: drive with 5 V and verify the DC point holds flat in transient.
  c.get("V").value = 5.0;
  const auto samples = transient(c, 2e-3, 1e-5);
  for (const auto& sample : samples) {
    EXPECT_NEAR(sample.point.reading("VC"), 5.0, 1e-6);
  }
}

TEST(Transient, RcDischargeTimeConstant) {
  // Charged capacitor discharging through a resistor: V(t) = V0 e^{-t/RC}.
  // Build it with a switch: source charges C through the closed switch at
  // DC; the transient then runs with the switch open.
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V", a, 0, 5.0);
  c.add_switch("SW", a, b, true);
  c.add_resistor("R", b, 0, 1000.0);
  c.add_capacitor("C", b, 0, 1e-6);
  c.add_voltage_sensor("VC", b, 0);

  // DC: everything at 5 V. Open the switch and watch the discharge.
  c.get("SW").closed = false;
  // The DC init inside transient() now sees the open switch, so instead we
  // charge the capacitor by hand via a pre-solve of the closed circuit.
  // (transient() initialises storage elements from ITS OWN DC solve, so this
  // test exercises exactly that: with the switch open the DC point is 0 and
  // the line stays at 0.)
  const auto samples = transient(c, 1e-3, 1e-5);
  EXPECT_NEAR(samples.back().point.reading("VC"), 0.0, 1e-3);
}

TEST(Transient, RlCurrentRampTowardsSteadyState) {
  // Series R-L driven by a DC source: from the DC initial condition the
  // current is already at V/R and must stay there.
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  const int s = c.node("s");
  c.add_vsource("V", a, 0, 5.0);
  c.add_resistor("R", a, b, 100.0);
  c.add_inductor("L", b, s, 0.01);
  c.add_current_sensor("CS", s, 0);
  const auto samples = transient(c, 1e-3, 1e-6);
  for (const auto& sample : samples) {
    EXPECT_NEAR(sample.point.reading("CS"), 0.05, 1e-4);
  }
}

TEST(Transient, LongHorizonSampleCountIsExact) {
  // Accumulating `t += dt` drifts over long horizons: after tens of
  // thousands of additions the final comparison against t_end can drop or
  // duplicate the last sample, and intermediate sample times wander off the
  // grid. Integer stepping makes both exact.
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_vsource("V1", in, 0, 5.0);
  c.add_resistor("R1", in, out, 1000.0);
  c.add_capacitor("C1", out, 0, 1e-6);
  const double dt = 1e-5;
  const auto samples = transient(c, 0.5, dt);  // 50,000 steps
  ASSERT_EQ(samples.size(), 50001u);           // t=0 plus every step
  EXPECT_EQ(samples[1].time, dt);
  EXPECT_EQ(samples[25000].time, 25000.0 * dt);      // exactly on the grid,
  EXPECT_EQ(samples.back().time, 50000.0 * dt);      // not accumulated drift
  EXPECT_NEAR(samples.back().time, 0.5, 1e-9);
}

TEST(Transient, FinalSampleLandsOnHorizon) {
  Circuit c;
  const int n = c.node("n");
  c.add_vsource("V1", n, 0, 1.0);
  c.add_resistor("R1", n, 0, 100.0);
  // dt = 0.1 is inexact in binary; ten accumulated additions land at
  // 0.9999999999999999. Integer stepping emits exactly 10 steps with the
  // last at 10 * 0.1.
  const auto samples = transient(c, 1.0, 0.1);
  ASSERT_EQ(samples.size(), 11u);
  EXPECT_EQ(samples.back().time, 10.0 * 0.1);
}

TEST(Transient, RejectsBadArguments) {
  Circuit c;
  c.add_vsource("V", c.node("a"), 0, 1.0);
  EXPECT_THROW(transient(c, -1.0, 1e-6), SimulationError);
  EXPECT_THROW(transient(c, 1.0, 0.0), SimulationError);
}

// ---------------------------------------------------------------- faults --

TEST(Fault, NamesMapToKinds) {
  EXPECT_EQ(fault_kind_from_name("Open"), FaultKind::Open);
  EXPECT_EQ(fault_kind_from_name("loss of function"), FaultKind::Open);
  EXPECT_EQ(fault_kind_from_name("SHORT"), FaultKind::Short);
  EXPECT_EQ(fault_kind_from_name("RAM Failure"), FaultKind::RamFailure);
  EXPECT_EQ(fault_kind_from_name("drift"), FaultKind::Drift);
  EXPECT_EQ(fault_kind_from_name("no output"), FaultKind::StuckOff);
  EXPECT_THROW(fault_kind_from_name("exotic"), AnalysisError);
}

TEST(Fault, OpenKillsSeriesPath) {
  Circuit c;
  const int a = c.node("a");
  const int s = c.node("s");
  c.add_vsource("V", a, 0, 5.0);
  c.add_resistor("R", a, s, 100.0);
  c.add_current_sensor("CS", s, 0);
  const double before = std::abs(dc_operating_point(c).reading("CS"));
  const auto faulted = inject_fault(c, Fault{"R", FaultKind::Open});
  const double after = std::abs(dc_operating_point(faulted).reading("CS"));
  EXPECT_GT(before, 0.01);
  EXPECT_LT(after, 1e-9);
  // Original untouched.
  EXPECT_EQ(c.get("R").kind, ElementKind::Resistor);
  EXPECT_EQ(c.get("R").value, 100.0);
}

TEST(Fault, ShortCollapsesElement) {
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V", a, 0, 5.0);
  c.add_resistor("R1", a, b, 100.0);
  c.add_resistor("R2", b, 0, 100.0);
  c.add_voltage_sensor("VS", b, 0);
  const auto faulted = inject_fault(c, Fault{"R1", FaultKind::Short});
  EXPECT_NEAR(dc_operating_point(faulted).reading("VS"), 5.0, 1e-3);
}

TEST(Fault, StuckOffZeroesSource) {
  Circuit c;
  const int a = c.node("a");
  c.add_vsource("V", a, 0, 5.0);
  c.add_resistor("R", a, 0, 100.0);
  c.add_voltage_sensor("VS", a, 0);
  const auto faulted = inject_fault(c, Fault{"V", FaultKind::StuckOff});
  EXPECT_NEAR(dc_operating_point(faulted).reading("VS"), 0.0, 1e-9);
}

TEST(Fault, DriftScalesValue) {
  Circuit c;
  c.add_resistor("R", c.node("a"), 0, 100.0);
  Fault fault{"R", FaultKind::Drift};
  fault.drift_factor = 2.5;
  const auto faulted = inject_fault(c, fault);
  EXPECT_DOUBLE_EQ(faulted.get("R").value, 250.0);
  fault.drift_factor = -1.0;
  EXPECT_THROW(inject_fault(c, fault), AnalysisError);
}

TEST(Fault, RamFailureOnlyOnMcu) {
  Circuit c;
  const int vdd = c.node("vdd");
  c.add_vsource("V", vdd, 0, 5.0);
  c.add_mcu("MC", vdd, 0, 100.0);
  c.add_resistor("R", vdd, 0, 1000.0);
  const auto faulted = inject_fault(c, Fault{"MC", FaultKind::RamFailure});
  EXPECT_DOUBLE_EQ(dc_operating_point(faulted).reading("MC"), 0.0);
  EXPECT_THROW(inject_fault(c, Fault{"R", FaultKind::RamFailure}), AnalysisError);
}

TEST(Fault, ObservationPointsAreProtected) {
  Circuit c;
  const int a = c.node("a");
  c.add_vsource("V", a, 0, 5.0);
  c.add_current_sensor("CS", a, 0);
  EXPECT_THROW(inject_fault(c, Fault{"CS", FaultKind::Open}), AnalysisError);
  EXPECT_THROW(inject_fault(c, Fault{"CS", FaultKind::Short}), AnalysisError);
}

TEST(Fault, UnknownElementThrows) {
  Circuit c;
  EXPECT_THROW(inject_fault(c, Fault{"ghost", FaultKind::Open}), SimulationError);
}

// ---------------------------------------------------------------- builder --

TEST(Builder, CaseStudyNetlist) {
  const auto built =
      build_circuit(drivers::parse_mdl_file(std::string(DECISIVE_ASSETS_DIR) +
                                            "/power_supply.mdl"));
  EXPECT_EQ(built.components.size(), 8u);  // DC1 D1 L1 ESR1 C1 ESR2 C2 MC1
  EXPECT_EQ(built.observables.size(), 2u);  // CS1, MC1
  EXPECT_EQ(built.skipped.size(), 3u);      // S1, Scope1, Out1
  const auto op = dc_operating_point(built.circuit);
  // MCU is powered through the diode: ~43 mA through CS1.
  EXPECT_NEAR(op.reading("CS1"), 0.0435, 0.002);
  EXPECT_DOUBLE_EQ(op.reading("MC1"), 1.0);
}

TEST(Builder, SubsystemFlattening) {
  const char* text = R"(
    Model { Name "m"
      System {
        Block { BlockType DCVoltageSource Name "V1" Voltage "10" }
        Block { BlockType SubSystem Name "F"
          System {
            Block { BlockType Port Name "vin" }
            Block { BlockType Port Name "vout" }
            Block { BlockType Resistor Name "R1" Resistance "1000" }
            Line { SrcBlock "vin" SrcPort "p" DstBlock "R1" DstPort "p" }
            Line { SrcBlock "R1" SrcPort "n" DstBlock "vout" DstPort "p" }
          }
        }
        Block { BlockType Resistor Name "R2" Resistance "1000" }
        Block { BlockType Ground Name "G" }
        Line { SrcBlock "V1" SrcPort "p" DstBlock "F" DstPort "vin" }
        Line { SrcBlock "F" SrcPort "vout" DstBlock "R2" DstPort "p" }
        Line { SrcBlock "R2" SrcPort "n" DstBlock "G" DstPort "g" }
        Line { SrcBlock "V1" SrcPort "n" DstBlock "G" DstPort "g" }
      }
    })";
  const auto built = build_circuit(drivers::parse_mdl(text));
  ASSERT_NE(built.circuit.find("F/R1"), nullptr);  // hierarchical name
  // Divider through the subsystem: R1 and R2 in series across 10 V.
  Circuit c = built.circuit;
  c.add_voltage_sensor("VS", c.get("R2").a, 0);
  EXPECT_NEAR(dc_operating_point(c).reading("VS"), 5.0, 1e-6);
}

TEST(Builder, AnnotatedSubsystemWorkaround) {
  const char* text = R"(
    Model { Name "m"
      System {
        Block { BlockType DCVoltageSource Name "V1" Voltage "5" }
        Block { BlockType SubSystem Name "U1" AnnotatedType "MCU" }
        Block { BlockType Ground Name "G" }
        Line { SrcBlock "V1" SrcPort "p" DstBlock "U1" DstPort "vdd" }
        Line { SrcBlock "U1" SrcPort "gnd" DstBlock "G" DstPort "g" }
        Line { SrcBlock "V1" SrcPort "n" DstBlock "G" DstPort "g" }
      }
    })";
  const auto built = build_circuit(drivers::parse_mdl(text));
  EXPECT_EQ(built.workarounds.size(), 1u);
  EXPECT_DOUBLE_EQ(dc_operating_point(built.circuit).reading("U1"), 1.0);
}

TEST(Builder, UnsupportedBlockRejected) {
  EXPECT_THROW(build_circuit(drivers::parse_mdl(
                   "Model { Name \"m\" System { Block { BlockType Exotic Name \"X\" } } }")),
               ParseError);
}

TEST(Builder, BadPortNameRejected) {
  const char* text = R"(
    Model { Name "m"
      System {
        Block { BlockType Resistor Name "R1" }
        Block { BlockType Ground Name "G" }
        Line { SrcBlock "R1" SrcPort "bogus" DstBlock "G" DstPort "g" }
      }
    })";
  EXPECT_THROW(build_circuit(drivers::parse_mdl(text)), ParseError);
}

TEST(Builder, LineToUnknownBlockRejected) {
  const char* text = R"(
    Model { Name "m"
      System {
        Block { BlockType Ground Name "G" }
        Line { SrcBlock "ghost" SrcPort "p" DstBlock "G" DstPort "g" }
      }
    })";
  EXPECT_THROW(build_circuit(drivers::parse_mdl(text)), ParseError);
}

TEST(Builder, PortAliasesAccepted) {
  const char* text = R"(
    Model { Name "m"
      System {
        Block { BlockType DCVoltageSource Name "V1" Voltage "5" }
        Block { BlockType Diode Name "D1" }
        Block { BlockType Ground Name "G" }
        Line { SrcBlock "V1" SrcPort "+" DstBlock "D1" DstPort "anode" }
        Line { SrcBlock "D1" SrcPort "cathode" DstBlock "G" DstPort "g" }
        Line { SrcBlock "V1" SrcPort "-" DstBlock "G" DstPort "g" }
      }
    })";
  EXPECT_NO_THROW(build_circuit(drivers::parse_mdl(text)));
}

TEST(Builder, CoverageQueries) {
  EXPECT_TRUE(block_type_supported("Diode"));
  EXPECT_TRUE(block_type_supported("MCU"));
  EXPECT_FALSE(block_type_supported("Scope"));
  EXPECT_TRUE(block_type_infrastructure("Scope"));
  EXPECT_FALSE(block_type_infrastructure("Diode"));
  EXPECT_GE(supported_block_types().size(), 10u);
}
