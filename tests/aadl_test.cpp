// Tests for the AADL subset parser and the AADL -> SSAM transformation.
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/drivers/aadl.hpp"
#include "decisive/transform/aadl.hpp"

using namespace decisive;
using namespace decisive::drivers;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

constexpr const char* kSmallPackage = R"(
-- comment line
package demo
public
  device Sensor
    features
      acquire: in feature;
      reading: out feature;
  end Sensor;

  system Top
    features
      world: in feature;
      result: out feature;
  end Top;

  system implementation Top.impl
    subcomponents
      S1: device Sensor { Decisive::FIT => 50; Vendor => acme; };
      S2: device Sensor;
    connections
      c1: feature world -> S1.acquire;
      c2: feature S1.reading -> S2.acquire;
      c3: feature S2.reading -> result;
  end Top.impl;
end demo;
)";

}  // namespace

TEST(AadlParser, PackageStructure) {
  const auto pkg = parse_aadl(kSmallPackage);
  EXPECT_EQ(pkg.name, "demo");
  ASSERT_EQ(pkg.types.size(), 2u);
  ASSERT_EQ(pkg.implementations.size(), 1u);
  const auto* sensor = pkg.type("Sensor");
  ASSERT_NE(sensor, nullptr);
  EXPECT_EQ(sensor->category, "device");
  ASSERT_EQ(sensor->features.size(), 2u);
  EXPECT_EQ(sensor->features[0].name, "acquire");
  EXPECT_EQ(sensor->features[0].direction, "in");
  EXPECT_EQ(sensor->features[1].direction, "out");
}

TEST(AadlParser, SubcomponentsAndProperties) {
  const auto pkg = parse_aadl(kSmallPackage);
  const auto* impl = pkg.implementation("Top");
  ASSERT_NE(impl, nullptr);
  ASSERT_EQ(impl->subcomponents.size(), 2u);
  const auto& s1 = impl->subcomponents[0];
  EXPECT_EQ(s1.name, "S1");
  EXPECT_EQ(s1.type, "Sensor");
  EXPECT_EQ(s1.property("Decisive::FIT"), std::optional<std::string>("50"));
  EXPECT_EQ(s1.property("Vendor"), std::optional<std::string>("acme"));
  EXPECT_EQ(s1.property("Missing"), std::nullopt);
  EXPECT_TRUE(impl->subcomponents[1].properties.empty());
}

TEST(AadlParser, ConnectionsIncludingBoundary) {
  const auto pkg = parse_aadl(kSmallPackage);
  const auto* impl = pkg.implementation("Top");
  ASSERT_EQ(impl->connections.size(), 3u);
  EXPECT_EQ(impl->connections[0].src_component, "");  // boundary feature
  EXPECT_EQ(impl->connections[0].src_feature, "world");
  EXPECT_EQ(impl->connections[0].dst_component, "S1");
  EXPECT_EQ(impl->connections[2].dst_component, "");
  EXPECT_EQ(impl->connections[2].dst_feature, "result");
}

TEST(AadlParser, KeywordsAreCaseInsensitive) {
  const auto pkg = parse_aadl(
      "PACKAGE p\nPUBLIC\nSYSTEM s\nEND s;\nSYSTEM IMPLEMENTATION s.i\nEND s.i;\nEND p;");
  EXPECT_EQ(pkg.name, "p");
  EXPECT_EQ(pkg.implementations.size(), 1u);
}

TEST(AadlParser, MalformedInputThrows) {
  EXPECT_THROW(parse_aadl("package p public end q;"), ParseError);       // mismatched end
  EXPECT_THROW(parse_aadl("package p public bus B end B; end p;"), ParseError);  // unsupported
  EXPECT_THROW(parse_aadl("package p public system s end s"), ParseError);  // missing ;
  EXPECT_THROW(parse_aadl("system s end s;"), ParseError);                // no package
}

TEST(AadlParser, CaseStudyAssetParses) {
  const auto pkg = parse_aadl_file(kAssets + "/auv_control.aadl");
  EXPECT_EQ(pkg.name, "auv_control");
  const auto* impl = pkg.implementation("AuvControl");
  ASSERT_NE(impl, nullptr);
  EXPECT_EQ(impl->subcomponents.size(), 8u);
  EXPECT_EQ(impl->connections.size(), 11u);
}

// ------------------------------------------------------------ transformation

TEST(AadlTransform, BuildsComposite) {
  const auto pkg = parse_aadl(kSmallPackage);
  ssam::SsamModel m;
  const auto result = transform::aadl_to_ssam(pkg, "Top", m);
  EXPECT_EQ(result.blocks, 2u);
  EXPECT_EQ(result.lines, 3u);
  EXPECT_EQ(result.params, 2u);
  EXPECT_EQ(m.obj(result.root).get_string("name"), "Top");
  // Boundary nodes from the Top type.
  EXPECT_EQ(m.obj(result.root).refs("ioNodes").size(), 2u);
  // FIT landed; vendor preserved as constraint.
  const auto s1 = m.find_by_name(ssam::cls::Component, "S1");
  ASSERT_NE(s1, model::kNullObject);
  EXPECT_DOUBLE_EQ(m.obj(s1).get_real("fit"), 50.0);
  bool vendor = false;
  for (const auto c : m.obj(s1).refs("implementationConstraints")) {
    if (m.obj(c).get_string("name") == "Vendor" && m.obj(c).get_string("body") == "acme") {
      vendor = true;
    }
  }
  EXPECT_TRUE(vendor);
}

TEST(AadlTransform, FmeaRunsOnImportedModel) {
  const auto pkg = parse_aadl(kSmallPackage);
  ssam::SsamModel m;
  const auto result = transform::aadl_to_ssam(pkg, "Top", m);
  // Serial chain: both sensors are single points for loss modes.
  for (const auto component : m.all_components_under(result.root)) {
    m.add_failure_mode(component, "No output", 1.0, "lossOfFunction");
  }
  const auto fmea = core::analyze_component(m, result.root);
  EXPECT_EQ(fmea.safety_related_components(), (std::vector<std::string>{"S1", "S2"}));
}

TEST(AadlTransform, ErrorsOnMissingPieces) {
  const auto pkg = parse_aadl(kSmallPackage);
  ssam::SsamModel m;
  EXPECT_THROW(transform::aadl_to_ssam(pkg, "Nope", m), TransformError);

  auto broken = pkg;
  broken.implementations[0].connections.push_back(
      {"cx", "Ghost", "out", "S1", "acquire"});
  ssam::SsamModel m2;
  EXPECT_THROW(transform::aadl_to_ssam(broken, "Top", m2), TransformError);
}

TEST(AadlTransform, CaseStudyRedundancyAnalysis) {
  const auto pkg = parse_aadl_file(kAssets + "/auv_control.aadl");
  ssam::SsamModel m;
  const auto result = transform::aadl_to_ssam(pkg, "AuvControl", m);
  for (const auto component : m.all_components_under(result.root)) {
    m.add_failure_mode(component, "No output", 1.0, "lossOfFunction");
  }
  const auto fmea = core::analyze_component(m, result.root);
  const auto sr = fmea.safety_related_components();
  EXPECT_EQ(sr, (std::vector<std::string>{"BUS1", "ACT1"}));
  // Software components imported with componentType software.
  const auto ctl1 = m.find_by_name(ssam::cls::Component, "CTL1");
  EXPECT_EQ(m.obj(ctl1).get_string("componentType"), "software");
  const auto imu1 = m.find_by_name(ssam::cls::Component, "IMU1");
  EXPECT_EQ(m.obj(imu1).get_string("componentType"), "hardware");
}
