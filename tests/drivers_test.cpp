// Unit tests for the model drivers (Epsilon-EMC substitute): CSV, workbook,
// JSON, XML and MDL(Simulink) drivers plus the registry.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "decisive/base/error.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/drivers/row_ref.hpp"

using namespace decisive;
using namespace decisive::drivers;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

/// Creates a scratch directory with test files; removed on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("decisive-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }

  std::string file(const std::string& name, const std::string& content) const {
    const auto p = path_ / name;
    std::ofstream out(p);
    out << content;
    return p.string();
  }

  [[nodiscard]] std::string dir() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

}  // namespace

// ----------------------------------------------------------------- RowRef --

TEST(RowRef, NumericCellsBecomeNumbers) {
  EXPECT_DOUBLE_EQ(cell_to_value("10").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(cell_to_value(" 2.5 ").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(cell_to_value("30%").as_number(), 0.30);
  EXPECT_EQ(cell_to_value("Open").as_string(), "Open");
  EXPECT_EQ(cell_to_value("").as_string(), "");
}

TEST(RowRef, PropertyAccess) {
  auto table = std::make_shared<CsvTable>(parse_csv("Component,FIT\nDiode,10\n"));
  const RowRef row(table, 0);
  EXPECT_EQ(row.property("Component").as_string(), "Diode");
  EXPECT_DOUBLE_EQ(row.property("fit").as_number(), 10.0);  // case-insensitive
  EXPECT_TRUE(row.has_property("FIT"));
  EXPECT_FALSE(row.has_property("nope"));
  EXPECT_THROW(row.property("nope"), QueryError);
}

// ------------------------------------------------------------- CSV driver --

TEST(CsvDriver, OpensAndBinds) {
  ScratchDir scratch;
  const auto path = scratch.file("parts.csv", "name,fit\nD1,10\nL1,15\n");
  const auto source = DriverRegistry::global().open(path);
  EXPECT_EQ(source->type(), "csv");
  EXPECT_EQ(source->table_names(), (std::vector<std::string>{"parts"}));
  ASSERT_NE(source->table("parts"), nullptr);
  EXPECT_EQ(source->table("other"), nullptr);

  query::Env env;
  source->bind(env);
  EXPECT_DOUBLE_EQ(query::eval("rows().collect(r | r.fit).sum()", env).as_number(), 25.0);
}

TEST(CsvDriver, MissingFileThrows) {
  EXPECT_THROW(DriverRegistry::global().open("/nonexistent/file.csv"), IoError);
}

// -------------------------------------------------------- workbook driver --

TEST(WorkbookDriver, SheetsFromDirectory) {
  const auto source = DriverRegistry::global().open(kAssets + "/reliability_workbook");
  EXPECT_EQ(source->type(), "workbook");
  const auto names = source->table_names();
  EXPECT_EQ(names.size(), 2u);
  ASSERT_NE(source->table("Reliability"), nullptr);
  ASSERT_NE(source->table("safetymechanisms"), nullptr);  // case-insensitive

  query::Env env;
  source->bind(env);
  EXPECT_DOUBLE_EQ(query::eval("rows('Reliability').size()", env).as_number(), 7.0);
  EXPECT_EQ(query::eval("rows('SafetyMechanisms').first().Safety_Mechanism", env).as_string(),
            "ECC");
  EXPECT_THROW(query::eval("rows('Nope')", env), QueryError);
}

TEST(WorkbookDriver, EmptyDirectoryThrows) {
  ScratchDir scratch;
  EXPECT_THROW(DriverRegistry::global().open(scratch.dir()), IoError);
}

// ------------------------------------------------------------ JSON driver --

TEST(JsonDriver, BindsRootNavigation) {
  ScratchDir scratch;
  const auto path = scratch.file(
      "system.json",
      R"({"name": "auv", "components": [{"id": "CPU1", "fit": 400}, {"id": "CPU2", "fit": 400}]})");
  const auto source = DriverRegistry::global().open(path);
  EXPECT_EQ(source->type(), "json");

  query::Env env;
  source->bind(env);
  EXPECT_EQ(query::eval("root.name", env).as_string(), "auv");
  EXPECT_DOUBLE_EQ(
      query::eval("root.components.collect(c | c.fit).sum()", env).as_number(), 800.0);
  EXPECT_TRUE(query::eval("root.hasProperty('components')", env).as_bool());
  EXPECT_THROW(query::eval("root.missing", env), QueryError);
}

// ------------------------------------------------------------- XML driver --

TEST(XmlDriver, BindsRootWithAttributesAndChildren) {
  ScratchDir scratch;
  const auto path = scratch.file(
      "design.xml",
      "<design name=\"ps\"><component id=\"D1\" fit=\"10\"/>"
      "<component id=\"L1\" fit=\"15\"/><note>text</note></design>");
  const auto source = DriverRegistry::global().open(path);
  EXPECT_EQ(source->type(), "xml");

  query::Env env;
  source->bind(env);
  EXPECT_EQ(query::eval("root.tag", env).as_string(), "design");
  EXPECT_EQ(query::eval("root.name", env).as_string(), "ps");
  EXPECT_DOUBLE_EQ(query::eval("root.children.select(c | c.tag == 'component')"
                               ".collect(c | c.fit).sum()",
                               env)
                       .as_number(),
                   25.0);
  EXPECT_EQ(
      query::eval("root.children.select(c | c.tag == 'note').first().text", env).as_string(),
      "text");
}

// -------------------------------------------------------------------- MDL --

TEST(Mdl, ParsesBlocksParamsLines) {
  const auto model = parse_mdl_file(kAssets + "/power_supply.mdl");
  EXPECT_EQ(model.name, "sensor_power_supply");
  EXPECT_EQ(model.root.blocks.size(), 13u);
  EXPECT_EQ(model.root.lines.size(), 14u);
  const MdlBlock* mc1 = model.root.block("MC1");
  ASSERT_NE(mc1, nullptr);
  EXPECT_EQ(mc1->type, "MCU");
  EXPECT_EQ(mc1->param("SupplyResistance"), std::optional<std::string>("100"));
  EXPECT_DOUBLE_EQ(mc1->param_real("MinSupply", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(mc1->param_real("Missing", 7.5), 7.5);
}

TEST(Mdl, NestedSubsystems) {
  const char* text = R"(
    Model { Name "m"
      System {
        Block { BlockType SubSystem Name "F"
          System {
            Block { BlockType Port Name "vin" }
            Block { BlockType Resistor Name "R1" Resistance "5" }
            Line { SrcBlock "vin" SrcPort "p" DstBlock "R1" DstPort "p" }
          }
        }
      }
    })";
  const auto model = parse_mdl(text);
  const MdlBlock* f = model.root.block("F");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(f->subsystem, nullptr);
  EXPECT_EQ(f->subsystem->blocks.size(), 2u);
  EXPECT_EQ(f->subsystem->lines.size(), 1u);
  EXPECT_EQ(model.root.total_blocks(), 3u);
}

TEST(Mdl, RoundTrip) {
  const auto model = parse_mdl_file(kAssets + "/power_supply.mdl");
  const auto again = parse_mdl(write_mdl(model));
  EXPECT_EQ(again.name, model.name);
  ASSERT_EQ(again.root.blocks.size(), model.root.blocks.size());
  for (size_t i = 0; i < model.root.blocks.size(); ++i) {
    EXPECT_EQ(again.root.blocks[i].name, model.root.blocks[i].name);
    EXPECT_EQ(again.root.blocks[i].type, model.root.blocks[i].type);
    EXPECT_EQ(again.root.blocks[i].params, model.root.blocks[i].params);
  }
  ASSERT_EQ(again.root.lines.size(), model.root.lines.size());
  for (size_t i = 0; i < model.root.lines.size(); ++i) {
    EXPECT_EQ(again.root.lines[i].src_block, model.root.lines[i].src_block);
    EXPECT_EQ(again.root.lines[i].dst_port, model.root.lines[i].dst_port);
  }
}

TEST(Mdl, MalformedInputThrows) {
  EXPECT_THROW(parse_mdl("Model { Name \"x\" System { Block { Name \"n\" } } }"),
               ParseError);  // no BlockType
  EXPECT_THROW(parse_mdl("Model { System { Line { SrcBlock \"a\" } } }"), ParseError);
  EXPECT_THROW(parse_mdl("NotAModel { }"), ParseError);
  EXPECT_THROW(parse_mdl("Model { Name \"x\" } trailing"), ParseError);
}

TEST(Mdl, CommentsTolerated) {
  const auto model = parse_mdl(
      "# header comment\nModel {\n  Name \"m\"\n  // c\n  System {\n"
      "    Block { BlockType Ground Name \"G\" }\n  }\n}\n");
  EXPECT_EQ(model.root.blocks.size(), 1u);
}

TEST(MdlDriver, BindsBlocksAndLines) {
  const auto source = DriverRegistry::global().open(kAssets + "/power_supply.mdl");
  EXPECT_EQ(source->type(), "mdl");
  query::Env env;
  source->bind(env);
  EXPECT_EQ(query::eval("modelName", env).as_string(), "sensor_power_supply");
  EXPECT_DOUBLE_EQ(query::eval("blocks.size()", env).as_number(), 13.0);
  EXPECT_DOUBLE_EQ(
      query::eval("blocks.select(b | b.BlockType == 'Capacitor').size()", env).as_number(),
      2.0);
  EXPECT_DOUBLE_EQ(
      query::eval("blocks.select(b | b.Name == 'MC1').first().SupplyResistance", env)
          .as_number(),
      100.0);
  EXPECT_DOUBLE_EQ(
      query::eval("lines.select(l | l.DstBlock == 'GND1').size()", env).as_number(), 4.0);
}

// ---------------------------------------------------------------- registry --

TEST(Registry, DispatchByExtensionAndHint) {
  ScratchDir scratch;
  const auto csv = scratch.file("t.csv", "a\n1\n");
  EXPECT_EQ(DriverRegistry::global().open(csv)->type(), "csv");
  EXPECT_EQ(DriverRegistry::global().open(csv, "csv")->type(), "csv");
  EXPECT_THROW(DriverRegistry::global().open(csv, "unknown-driver"), ModelError);
  EXPECT_THROW(DriverRegistry::global().open("file.unknownext"), ModelError);
}

TEST(Registry, ListsBuiltInDrivers) {
  const auto types = DriverRegistry::global().driver_types();
  for (const char* expected : {"csv", "workbook", "json", "xml", "mdl"}) {
    EXPECT_NE(std::find(types.begin(), types.end(), expected), types.end()) << expected;
  }
}
