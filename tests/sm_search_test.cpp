// Tests for automated safety-mechanism deployment: greedy target search and
// the (cost, SPFM) Pareto front.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/sm_search.hpp"

using namespace decisive;
using namespace decisive::core;

namespace {

FmedaRow make_row(const char* component, double fit, const char* mode, double dist,
                  bool sr) {
  FmedaRow r;
  r.component = component;
  r.component_type = component;
  r.fit = fit;
  r.failure_mode = mode;
  r.distribution = dist;
  r.safety_related = sr;
  return r;
}

/// Three safety-related single-mode components; catalogue with options of
/// different cost/coverage.
FmedaResult sample_fmea() {
  FmedaResult f;
  f.rows = {make_row("A", 100, "Open", 1.0, true), make_row("B", 200, "Open", 1.0, true),
            make_row("C", 300, "Open", 1.0, true)};
  return f;
}

SafetyMechanismModel sample_catalogue() {
  SafetyMechanismModel cat;
  cat.add({"A", "Open", "A-cheap", 0.80, 1.0});
  cat.add({"A", "Open", "A-good", 0.99, 4.0});
  cat.add({"B", "Open", "B-only", 0.95, 2.0});
  cat.add({"C", "Open", "C-only", 0.98, 3.0});
  return cat;
}

}  // namespace

TEST(ApplyDeployment, UpdatesRows) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  Deployment d;
  d.choices.push_back({0, cat.applicable("A", "Open")[0]});
  const auto applied = apply_deployment(fmea, d);
  EXPECT_EQ(applied.rows[0].safety_mechanism, "A-cheap");
  EXPECT_DOUBLE_EQ(applied.rows[0].sm_coverage, 0.80);
  EXPECT_TRUE(applied.rows[1].safety_mechanism.empty());
}

TEST(ApplyDeployment, InvalidRowThrows) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  Deployment d;
  d.choices.push_back({99, cat.applicable("A", "Open")[0]});
  EXPECT_THROW(apply_deployment(fmea, d), AnalysisError);
}

TEST(Greedy, ReachesAsilB) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  const auto deployment = greedy_reach_asil(fmea, cat, "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  EXPECT_GE(deployment->spfm, 0.90);
  const auto applied = apply_deployment(fmea, *deployment);
  EXPECT_NEAR(applied.spfm(), deployment->spfm, 1e-12);
}

TEST(Greedy, PrefersCostEffectiveMechanisms) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  const auto deployment = greedy_reach_asil(fmea, cat, "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  // Greedy should never pay for "A-good" (4h) when "A-cheap" suffices for
  // ASIL-B.
  for (const auto& choice : deployment->choices) {
    EXPECT_NE(choice.mechanism->name, "A-good");
  }
}

TEST(Greedy, UnreachableTargetReturnsNullopt) {
  FmedaResult f;
  f.rows = {make_row("X", 1000, "Open", 1.0, true)};
  SafetyMechanismModel cat;  // empty catalogue
  EXPECT_EQ(greedy_reach_asil(f, cat, "ASIL-B"), std::nullopt);

  // Even a weak mechanism cannot reach ASIL-D coverage here.
  cat.add({"X", "Open", "weak", 0.5, 1.0});
  EXPECT_EQ(greedy_reach_asil(f, cat, "ASIL-D"), std::nullopt);
}

TEST(Greedy, AlreadyMetTargetDeploysNothing) {
  FmedaResult f;
  f.rows = {make_row("X", 100, "Open", 0.05, true)};  // SPFM = 95%
  const auto deployment = greedy_reach_asil(f, sample_catalogue(), "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  EXPECT_TRUE(deployment->choices.empty());
  EXPECT_DOUBLE_EQ(deployment->total_cost_hours, 0.0);
}

TEST(Greedy, RespectsPreDeployedMechanisms) {
  auto fmea = sample_fmea();
  fmea.rows[2].safety_mechanism = "pre-existing";
  fmea.rows[2].sm_coverage = 0.99;
  const auto deployment = greedy_reach_asil(fmea, sample_catalogue(), "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  for (const auto& choice : deployment->choices) {
    EXPECT_NE(choice.row_index, 2u);  // row 2 is fixed
  }
}

TEST(Pareto, FrontIsNonDominatedAndSorted) {
  const auto fmea = sample_fmea();
  const auto front = pareto_front(fmea, sample_catalogue());
  ASSERT_FALSE(front.empty());
  // Sorted by cost; strictly improving SPFM along the front.
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].total_cost_hours, front[i - 1].total_cost_hours);
    EXPECT_GT(front[i].spfm, front[i - 1].spfm);
  }
  // No member dominates another.
  for (const auto& a : front) {
    for (const auto& b : front) {
      if (&a != &b) {
        EXPECT_FALSE(a.dominates(b));
      }
    }
  }
  // The empty deployment (cost 0) is always on the front.
  EXPECT_DOUBLE_EQ(front.front().total_cost_hours, 0.0);
}

TEST(Pareto, ContainsTheBestAchievableSpfm) {
  const auto fmea = sample_fmea();
  const auto front = pareto_front(fmea, sample_catalogue());
  // Full deployment with the best mechanisms: A-good + B-only + C-only.
  const double best = front.back().spfm;
  FmedaResult full = sample_fmea();
  full.rows[0].sm_coverage = 0.99;
  full.rows[1].sm_coverage = 0.95;
  full.rows[2].sm_coverage = 0.98;
  for (auto& r : full.rows) r.safety_mechanism = "x";
  EXPECT_NEAR(best, full.spfm(), 1e-12);
}

TEST(Pareto, DominanceSemantics) {
  Deployment cheap_good{.choices = {}, .spfm = 0.9, .total_cost_hours = 1.0};
  Deployment pricey_bad{.choices = {}, .spfm = 0.8, .total_cost_hours = 2.0};
  Deployment pricey_best{.choices = {}, .spfm = 0.95, .total_cost_hours = 2.0};
  EXPECT_TRUE(cheap_good.dominates(pricey_bad));
  EXPECT_FALSE(pricey_bad.dominates(cheap_good));
  EXPECT_FALSE(cheap_good.dominates(pricey_best));
  EXPECT_FALSE(pricey_best.dominates(cheap_good));
  EXPECT_FALSE(cheap_good.dominates(cheap_good));
}

TEST(Pareto, CombinationGuardThrowsOnTheOracleOnly) {
  // 12 rows x 3 options = 3^12 > the tiny cap given: the exhaustive oracle
  // refuses, the DP engine completes.
  FmedaResult f;
  SafetyMechanismModel cat;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "T" + std::to_string(i);
    f.rows.push_back(make_row(name.c_str(), 10, "Open", 1.0, true));
    cat.add({name, "Open", "a", 0.9, 1.0});
    cat.add({name, "Open", "b", 0.95, 2.0});
  }
  EXPECT_THROW(pareto_front_exhaustive(f, cat, /*max_combinations=*/1000), AnalysisError);
  EXPECT_FALSE(pareto_front(f, cat).empty());
}

TEST(Pareto, NoSafetyRelatedRowsYieldsTrivialFront) {
  FmedaResult f;
  f.rows = {make_row("A", 100, "Open", 1.0, false)};
  const auto front = pareto_front(f, sample_catalogue());
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].spfm, 1.0);
  EXPECT_TRUE(front[0].choices.empty());
}

/// Property sweep: on random catalogues, every greedy solution cost is >=
/// the cheapest Pareto point meeting the same target (greedy is not optimal,
/// but never better than the front), and all front members stay in bounds.
class SearchProperty : public ::testing::TestWithParam<int> {};

TEST_P(SearchProperty, GreedyConsistentWithFront) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  FmedaResult f;
  SafetyMechanismModel cat;
  const int n = 2 + static_cast<int>(rng.below(5));
  for (int i = 0; i < n; ++i) {
    const std::string name = "R" + std::to_string(i);
    f.rows.push_back(make_row(name.c_str(), 10 + rng.uniform() * 200, "Open", 1.0, true));
    const int options = static_cast<int>(rng.below(3));
    for (int k = 0; k < options; ++k) {
      cat.add({name, "Open", name + "-sm" + std::to_string(k), 0.5 + rng.uniform() * 0.49,
               0.5 + rng.uniform() * 5.0});
    }
  }
  const auto front = pareto_front(f, cat);
  for (const auto& d : front) {
    EXPECT_GE(d.spfm, 0.0);
    EXPECT_LE(d.spfm, 1.0);
  }
  const auto greedy = greedy_reach_asil(f, cat, "ASIL-B");
  const Deployment* cheapest = nullptr;
  for (const auto& d : front) {
    if (d.spfm >= 0.90) {
      cheapest = &d;
      break;
    }
  }
  if (greedy.has_value()) {
    ASSERT_NE(cheapest, nullptr);  // greedy found it, so the front must too
    EXPECT_GE(greedy->total_cost_hours + 1e-12, cheapest->total_cost_hours);
  } else {
    EXPECT_EQ(cheapest, nullptr);  // and vice versa
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchProperty, ::testing::Range(1, 26));

namespace {

/// Seeded random instance: <= 6 open rows, 0-3 mechanisms per row.
struct RandomInstance {
  FmedaResult fmea;
  SafetyMechanismModel catalogue;
};

RandomInstance make_random_instance(uint64_t seed) {
  Rng rng(seed);
  RandomInstance out;
  const int n = 2 + static_cast<int>(rng.below(5));
  for (int i = 0; i < n; ++i) {
    const std::string name = "R" + std::to_string(i);
    out.fmea.rows.push_back(
        make_row(name.c_str(), 10 + rng.uniform() * 200, "Open", 1.0, true));
    const int options = static_cast<int>(rng.below(4));
    for (int k = 0; k < options; ++k) {
      out.catalogue.add({name, "Open", name + "-sm" + std::to_string(k),
                         0.5 + rng.uniform() * 0.49, 0.5 + rng.uniform() * 5.0});
    }
  }
  return out;
}

}  // namespace

/// The DP engine must reproduce the seed-era exhaustive enumerator's front
/// exactly (set-identical deployments on the (cost, SPFM) plane) on every
/// random instance small enough for the oracle.
class DpOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(DpOracleProperty, DpFrontMatchesExhaustiveOracle) {
  const auto instance = make_random_instance(static_cast<uint64_t>(GetParam()));
  const auto oracle = pareto_front_exhaustive(instance.fmea, instance.catalogue);
  const auto dp = pareto_front(instance.fmea, instance.catalogue);
  ASSERT_EQ(oracle.size(), dp.size());
  for (size_t i = 0; i < dp.size(); ++i) {
    EXPECT_NEAR(dp[i].total_cost_hours, oracle[i].total_cost_hours, 1e-9) << "point " << i;
    EXPECT_NEAR(dp[i].spfm, oracle[i].spfm, 1e-12) << "point " << i;
    // Every DP point is a real deployment: re-applying it reproduces the
    // reported SPFM and cost.
    const auto applied = apply_deployment(instance.fmea, dp[i]);
    EXPECT_NEAR(applied.spfm(), dp[i].spfm, 1e-12) << "point " << i;
    double cost = 0.0;
    for (const auto& choice : dp[i].choices) cost += choice.mechanism->cost_hours;
    EXPECT_DOUBLE_EQ(cost, dp[i].total_cost_hours) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOracleProperty, ::testing::Range(1, 41));

/// optimal_reach_asil is provably min-cost: never costlier than greedy, and
/// equal to the cheapest oracle front point meeting the target.
class OptimalProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimalProperty, NeverCostlierThanGreedyAndMatchesFront) {
  const auto instance = make_random_instance(static_cast<uint64_t>(GetParam()));
  const auto greedy = greedy_reach_asil(instance.fmea, instance.catalogue, "ASIL-B");
  const auto optimal = optimal_reach_asil(instance.fmea, instance.catalogue, "ASIL-B");
  ASSERT_EQ(greedy.has_value(), optimal.has_value());
  if (!optimal.has_value()) return;
  EXPECT_LE(optimal->total_cost_hours, greedy->total_cost_hours + 1e-9);
  EXPECT_GE(optimal->spfm, 0.90);
  const auto front = pareto_front_exhaustive(instance.fmea, instance.catalogue);
  const Deployment* cheapest = nullptr;
  for (const auto& d : front) {
    if (d.spfm >= 0.90) {
      cheapest = &d;
      break;
    }
  }
  ASSERT_NE(cheapest, nullptr);
  EXPECT_NEAR(optimal->total_cost_hours, cheapest->total_cost_hours, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalProperty, ::testing::Range(1, 41));

TEST(Pareto, JobsCountNeverChangesTheFront) {
  const auto instance = make_random_instance(7);
  ParetoOptions serial;
  serial.jobs = 1;
  const auto base = pareto_front(instance.fmea, instance.catalogue, serial);
  for (const int jobs : {2, 4, 8}) {
    ParetoOptions options;
    options.jobs = jobs;
    const auto front = pareto_front(instance.fmea, instance.catalogue, options);
    ASSERT_EQ(front.size(), base.size()) << "jobs " << jobs;
    for (size_t i = 0; i < front.size(); ++i) {
      // Bit-identical, not just close: the merge-tree shape is fixed, so
      // parallelism must not change a single floating-point association.
      EXPECT_EQ(front[i].total_cost_hours, base[i].total_cost_hours);
      EXPECT_EQ(front[i].spfm, base[i].spfm);
      ASSERT_EQ(front[i].choices.size(), base[i].choices.size());
      for (size_t c = 0; c < front[i].choices.size(); ++c) {
        EXPECT_EQ(front[i].choices[c].row_index, base[i].choices[c].row_index);
        EXPECT_EQ(front[i].choices[c].mechanism, base[i].choices[c].mechanism);
      }
    }
  }
}

TEST(Pareto, TiePrefersFewestChoices) {
  // {M1} and {M2, M3} land on the same (cost 2, residual 250) point; the
  // front must report the single-mechanism representative.
  FmedaResult f;
  f.rows = {make_row("A", 100, "Open", 1.0, true), make_row("B", 100, "Open", 1.0, true),
            make_row("C", 100, "Open", 1.0, true)};
  SafetyMechanismModel cat;
  cat.add({"A", "Open", "M1", 0.5, 2.0});
  cat.add({"B", "Open", "M2", 0.25, 1.0});
  cat.add({"C", "Open", "M3", 0.25, 1.0});
  const auto front = pareto_front(f, cat);
  const Deployment* at_cost_2 = nullptr;
  for (const auto& d : front) {
    if (std::abs(d.total_cost_hours - 2.0) < 1e-9) at_cost_2 = &d;
  }
  ASSERT_NE(at_cost_2, nullptr);
  ASSERT_EQ(at_cost_2->choices.size(), 1u);
  EXPECT_EQ(at_cost_2->choices[0].mechanism->name, "M1");
  // The oracle applies the same tie preference.
  const auto oracle = pareto_front_exhaustive(f, cat);
  ASSERT_EQ(oracle.size(), front.size());
  for (size_t i = 0; i < front.size(); ++i) {
    EXPECT_EQ(oracle[i].choices.size(), front[i].choices.size()) << "point " << i;
  }
}

TEST(Pareto, EpsilonCoarseningBoundsTheFront) {
  const auto instance = make_random_instance(11);
  const auto exact = pareto_front(instance.fmea, instance.catalogue);
  ParetoOptions coarse;
  coarse.epsilon = 0.05;
  const auto approx = pareto_front(instance.fmea, instance.catalogue, coarse);
  ASSERT_FALSE(approx.empty());
  EXPECT_LE(approx.size(), exact.size());
  // The cost-0 point always survives, and every survivor is a real
  // non-dominated deployment in sorted order.
  EXPECT_DOUBLE_EQ(approx.front().total_cost_hours, 0.0);
  for (size_t i = 1; i < approx.size(); ++i) {
    EXPECT_GT(approx[i].total_cost_hours, approx[i - 1].total_cost_hours);
    EXPECT_GT(approx[i].spfm, approx[i - 1].spfm);
  }
  for (const auto& d : approx) {
    const auto applied = apply_deployment(instance.fmea, d);
    EXPECT_NEAR(applied.spfm(), d.spfm, 1e-12);
  }
  ParetoOptions invalid;
  invalid.epsilon = 1.0;
  EXPECT_THROW(pareto_front(instance.fmea, instance.catalogue, invalid), AnalysisError);
}

TEST(Pareto, MergeLabelGuardSuggestsEpsilon) {
  // Many rows with irrational-ish distinct costs make every partial sum a
  // distinct front point; a tiny label cap must trip with an epsilon hint.
  FmedaResult f;
  SafetyMechanismModel cat;
  for (int i = 0; i < 16; ++i) {
    const std::string name = "G" + std::to_string(i);
    f.rows.push_back(make_row(name.c_str(), 100, "Open", 1.0, true));
    cat.add({name, "Open", "a", 0.9, 1.0 + 0.001 * i});
    cat.add({name, "Open", "b", 0.99, 2.0 + 0.0017 * i});
  }
  ParetoOptions tiny;
  tiny.max_merge_labels = 64;
  try {
    pareto_front(f, cat, tiny);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& error) {
    EXPECT_NE(std::string(error.what()).find("epsilon"), std::string::npos);
  }
  // The same instance completes under coarsening.
  ParetoOptions coarse;
  coarse.max_merge_labels = 100'000;
  coarse.epsilon = 0.05;
  EXPECT_FALSE(pareto_front(f, cat, coarse).empty());
}

TEST(Pareto, DpScalesToHundredsOfOpenRows) {
  // >= 200 open rows with 3 options each: the seed enumerator throws, the DP
  // engine completes with a well-formed front (grid-valued costs keep the
  // exact front polynomial).
  FmedaResult f;
  SafetyMechanismModel cat;
  for (int t = 0; t < 5; ++t) {
    const std::string type = "S" + std::to_string(t);
    cat.add({type, "Open", type + "-cheap", 0.7, 0.5});
    cat.add({type, "Open", type + "-good", 0.9, 2.0});
  }
  for (int i = 0; i < 220; ++i) {
    const std::string type = "S" + std::to_string(i % 5);
    FmedaRow row = make_row(type.c_str(), 5.0 + (i % 11), "Open", 1.0, true);
    row.component = type + "#" + std::to_string(i);
    f.rows.push_back(row);
  }
  EXPECT_THROW(pareto_front_exhaustive(f, cat), AnalysisError);
  ParetoOptions options;
  options.jobs = 4;
  const auto front = pareto_front(f, cat, options);
  ASSERT_GT(front.size(), 10u);
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].total_cost_hours, front[i - 1].total_cost_hours);
    EXPECT_GT(front[i].spfm, front[i - 1].spfm);
  }
  // Spot-verify the costliest point: every row deployed with its best
  // mechanism.
  EXPECT_EQ(front.back().choices.size(), 220u);
  const auto applied = apply_deployment(f, front.back());
  EXPECT_NEAR(applied.spfm(), front.back().spfm, 1e-12);
}

TEST(FrontExport, CsvAndJsonRenderTheFront) {
  const auto fmea = sample_fmea();
  // The catalogue must outlive the front: deployments point into its specs.
  const auto catalogue = sample_catalogue();
  const auto front = pareto_front(fmea, catalogue);
  const CsvTable table = front_to_csv(fmea, front);
  ASSERT_EQ(table.header.size(), 5u);
  EXPECT_EQ(table.header[0], "Cost(hrs)");
  ASSERT_EQ(table.rows.size(), front.size());
  EXPECT_EQ(table.rows[0][0], "0");  // the empty deployment leads the front
  const auto doc = json::parse(front_to_json(fmea, front));
  const auto* points = doc.find("front");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->as_array().size(), front.size());
  EXPECT_NEAR(points->as_array().back().find("cost_hours")->as_number(),
              front.back().total_cost_hours, 1e-9);
}
