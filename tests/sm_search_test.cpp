// Tests for automated safety-mechanism deployment: greedy target search and
// the (cost, SPFM) Pareto front.
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/sm_search.hpp"

using namespace decisive;
using namespace decisive::core;

namespace {

FmedaRow make_row(const char* component, double fit, const char* mode, double dist,
                  bool sr) {
  FmedaRow r;
  r.component = component;
  r.component_type = component;
  r.fit = fit;
  r.failure_mode = mode;
  r.distribution = dist;
  r.safety_related = sr;
  return r;
}

/// Three safety-related single-mode components; catalogue with options of
/// different cost/coverage.
FmedaResult sample_fmea() {
  FmedaResult f;
  f.rows = {make_row("A", 100, "Open", 1.0, true), make_row("B", 200, "Open", 1.0, true),
            make_row("C", 300, "Open", 1.0, true)};
  return f;
}

SafetyMechanismModel sample_catalogue() {
  SafetyMechanismModel cat;
  cat.add({"A", "Open", "A-cheap", 0.80, 1.0});
  cat.add({"A", "Open", "A-good", 0.99, 4.0});
  cat.add({"B", "Open", "B-only", 0.95, 2.0});
  cat.add({"C", "Open", "C-only", 0.98, 3.0});
  return cat;
}

}  // namespace

TEST(ApplyDeployment, UpdatesRows) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  Deployment d;
  d.choices.push_back({0, cat.applicable("A", "Open")[0]});
  const auto applied = apply_deployment(fmea, d);
  EXPECT_EQ(applied.rows[0].safety_mechanism, "A-cheap");
  EXPECT_DOUBLE_EQ(applied.rows[0].sm_coverage, 0.80);
  EXPECT_TRUE(applied.rows[1].safety_mechanism.empty());
}

TEST(ApplyDeployment, InvalidRowThrows) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  Deployment d;
  d.choices.push_back({99, cat.applicable("A", "Open")[0]});
  EXPECT_THROW(apply_deployment(fmea, d), AnalysisError);
}

TEST(Greedy, ReachesAsilB) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  const auto deployment = greedy_reach_asil(fmea, cat, "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  EXPECT_GE(deployment->spfm, 0.90);
  const auto applied = apply_deployment(fmea, *deployment);
  EXPECT_NEAR(applied.spfm(), deployment->spfm, 1e-12);
}

TEST(Greedy, PrefersCostEffectiveMechanisms) {
  const auto fmea = sample_fmea();
  const auto cat = sample_catalogue();
  const auto deployment = greedy_reach_asil(fmea, cat, "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  // Greedy should never pay for "A-good" (4h) when "A-cheap" suffices for
  // ASIL-B.
  for (const auto& choice : deployment->choices) {
    EXPECT_NE(choice.mechanism->name, "A-good");
  }
}

TEST(Greedy, UnreachableTargetReturnsNullopt) {
  FmedaResult f;
  f.rows = {make_row("X", 1000, "Open", 1.0, true)};
  SafetyMechanismModel cat;  // empty catalogue
  EXPECT_EQ(greedy_reach_asil(f, cat, "ASIL-B"), std::nullopt);

  // Even a weak mechanism cannot reach ASIL-D coverage here.
  cat.add({"X", "Open", "weak", 0.5, 1.0});
  EXPECT_EQ(greedy_reach_asil(f, cat, "ASIL-D"), std::nullopt);
}

TEST(Greedy, AlreadyMetTargetDeploysNothing) {
  FmedaResult f;
  f.rows = {make_row("X", 100, "Open", 0.05, true)};  // SPFM = 95%
  const auto deployment = greedy_reach_asil(f, sample_catalogue(), "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  EXPECT_TRUE(deployment->choices.empty());
  EXPECT_DOUBLE_EQ(deployment->total_cost_hours, 0.0);
}

TEST(Greedy, RespectsPreDeployedMechanisms) {
  auto fmea = sample_fmea();
  fmea.rows[2].safety_mechanism = "pre-existing";
  fmea.rows[2].sm_coverage = 0.99;
  const auto deployment = greedy_reach_asil(fmea, sample_catalogue(), "ASIL-B");
  ASSERT_TRUE(deployment.has_value());
  for (const auto& choice : deployment->choices) {
    EXPECT_NE(choice.row_index, 2u);  // row 2 is fixed
  }
}

TEST(Pareto, FrontIsNonDominatedAndSorted) {
  const auto fmea = sample_fmea();
  const auto front = pareto_front(fmea, sample_catalogue());
  ASSERT_FALSE(front.empty());
  // Sorted by cost; strictly improving SPFM along the front.
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].total_cost_hours, front[i - 1].total_cost_hours);
    EXPECT_GT(front[i].spfm, front[i - 1].spfm);
  }
  // No member dominates another.
  for (const auto& a : front) {
    for (const auto& b : front) {
      if (&a != &b) {
        EXPECT_FALSE(a.dominates(b));
      }
    }
  }
  // The empty deployment (cost 0) is always on the front.
  EXPECT_DOUBLE_EQ(front.front().total_cost_hours, 0.0);
}

TEST(Pareto, ContainsTheBestAchievableSpfm) {
  const auto fmea = sample_fmea();
  const auto front = pareto_front(fmea, sample_catalogue());
  // Full deployment with the best mechanisms: A-good + B-only + C-only.
  const double best = front.back().spfm;
  FmedaResult full = sample_fmea();
  full.rows[0].sm_coverage = 0.99;
  full.rows[1].sm_coverage = 0.95;
  full.rows[2].sm_coverage = 0.98;
  for (auto& r : full.rows) r.safety_mechanism = "x";
  EXPECT_NEAR(best, full.spfm(), 1e-12);
}

TEST(Pareto, DominanceSemantics) {
  Deployment cheap_good{.choices = {}, .spfm = 0.9, .total_cost_hours = 1.0};
  Deployment pricey_bad{.choices = {}, .spfm = 0.8, .total_cost_hours = 2.0};
  Deployment pricey_best{.choices = {}, .spfm = 0.95, .total_cost_hours = 2.0};
  EXPECT_TRUE(cheap_good.dominates(pricey_bad));
  EXPECT_FALSE(pricey_bad.dominates(cheap_good));
  EXPECT_FALSE(cheap_good.dominates(pricey_best));
  EXPECT_FALSE(pricey_best.dominates(cheap_good));
  EXPECT_FALSE(cheap_good.dominates(cheap_good));
}

TEST(Pareto, CombinationGuardThrows) {
  // 12 rows x 3 options = 3^12 > the tiny cap given.
  FmedaResult f;
  SafetyMechanismModel cat;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "T" + std::to_string(i);
    f.rows.push_back(make_row(name.c_str(), 10, "Open", 1.0, true));
    cat.add({name, "Open", "a", 0.9, 1.0});
    cat.add({name, "Open", "b", 0.95, 2.0});
  }
  EXPECT_THROW(pareto_front(f, cat, /*max_combinations=*/1000), AnalysisError);
}

TEST(Pareto, NoSafetyRelatedRowsYieldsTrivialFront) {
  FmedaResult f;
  f.rows = {make_row("A", 100, "Open", 1.0, false)};
  const auto front = pareto_front(f, sample_catalogue());
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].spfm, 1.0);
  EXPECT_TRUE(front[0].choices.empty());
}

/// Property sweep: on random catalogues, every greedy solution cost is >=
/// the cheapest Pareto point meeting the same target (greedy is not optimal,
/// but never better than the front), and all front members stay in bounds.
class SearchProperty : public ::testing::TestWithParam<int> {};

TEST_P(SearchProperty, GreedyConsistentWithFront) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  FmedaResult f;
  SafetyMechanismModel cat;
  const int n = 2 + static_cast<int>(rng.below(5));
  for (int i = 0; i < n; ++i) {
    const std::string name = "R" + std::to_string(i);
    f.rows.push_back(make_row(name.c_str(), 10 + rng.uniform() * 200, "Open", 1.0, true));
    const int options = static_cast<int>(rng.below(3));
    for (int k = 0; k < options; ++k) {
      cat.add({name, "Open", name + "-sm" + std::to_string(k), 0.5 + rng.uniform() * 0.49,
               0.5 + rng.uniform() * 5.0});
    }
  }
  const auto front = pareto_front(f, cat);
  for (const auto& d : front) {
    EXPECT_GE(d.spfm, 0.0);
    EXPECT_LE(d.spfm, 1.0);
  }
  const auto greedy = greedy_reach_asil(f, cat, "ASIL-B");
  const Deployment* cheapest = nullptr;
  for (const auto& d : front) {
    if (d.spfm >= 0.90) {
      cheapest = &d;
      break;
    }
  }
  if (greedy.has_value()) {
    ASSERT_NE(cheapest, nullptr);  // greedy found it, so the front must too
    EXPECT_GE(greedy->total_cost_hours + 1e-12, cheapest->total_cost_hours);
  } else {
    EXPECT_EQ(cheapest, nullptr);  // and vice versa
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchProperty, ::testing::Range(1, 26));
