// Tests for the ZBDD fault-tree engine (src/fta): oracle identity on
// randomised subjects, exact quantification, importance measures on
// degenerate inputs, truncation surfacing, and the ISO 26262 latent /
// multi-point classification that federates FTA with the FMEDA.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "decisive/base/error.hpp"
#include "decisive/core/fta.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/fta/engine.hpp"
#include "decisive/fta/lfm.hpp"
#include "decisive/fta/quantify.hpp"
#include "decisive/fta/zbdd.hpp"

using namespace decisive;
using namespace decisive::core;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

struct Fixture {
  SsamModel m;
  ObjectId sys, in, out;

  Fixture() {
    const auto pkg = m.create_component_package("design");
    sys = m.create_component(pkg, "sys");
    in = m.add_io_node(sys, "in", "in");
    out = m.add_io_node(sys, "out", "out");
  }

  struct Sub {
    ObjectId comp, in, out;
  };
  Sub leaf(const std::string& name, double fit, double loss_dist) {
    Sub s;
    s.comp = m.create_component(sys, name);
    m.obj(s.comp).set_real("fit", fit);
    s.in = m.add_io_node(s.comp, name + ".in", "in");
    s.out = m.add_io_node(s.comp, name + ".out", "out");
    if (loss_dist > 0.0) m.add_failure_mode(s.comp, "Open", loss_dist, "lossOfFunction");
    return s;
  }
};

/// Deterministic LCG so the property subjects are reproducible.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  size_t below(size_t n) { return static_cast<size_t>(next() % n); }
};

/// A random layered DAG: 2-5 stages of 1-3 units, every unit fed by a random
/// non-empty subset of the previous stage, plus occasional skip connections.
/// Small enough for the enumeration oracle, irregular enough to exercise
/// subsumption and the memoisation.
void build_random_subject(Fixture& f, Lcg& rng) {
  const size_t stages = 2 + rng.below(4);
  std::vector<Fixture::Sub> previous;
  std::vector<Fixture::Sub> two_back;
  size_t serial = 0;
  for (size_t s = 0; s < stages; ++s) {
    const size_t width = 1 + rng.below(3);
    std::vector<Fixture::Sub> stage;
    for (size_t k = 0; k < width; ++k) {
      const double fit = 10.0 + static_cast<double>(rng.below(500));
      const double dist = rng.below(5) == 0 ? 0.0 : 0.2 + 0.1 * static_cast<double>(rng.below(8));
      auto sub = f.leaf("u" + std::to_string(serial++), fit, dist);
      if (previous.empty()) {
        f.m.connect(f.sys, f.in, sub.in);
      } else {
        bool fed = false;
        for (const auto& src : previous) {
          if (rng.below(2) == 0) {
            f.m.connect(f.sys, src.out, sub.in);
            fed = true;
          }
        }
        if (!fed) f.m.connect(f.sys, previous[rng.below(previous.size())].out, sub.in);
        // Occasional skip edge across one stage, so cuts mix orders.
        if (!two_back.empty() && rng.below(4) == 0) {
          f.m.connect(f.sys, two_back[rng.below(two_back.size())].out, sub.in);
        }
      }
      stage.push_back(sub);
    }
    two_back = previous;
    previous = std::move(stage);
  }
  for (const auto& src : previous) f.m.connect(f.sys, src.out, f.out);
}

}  // namespace

// ---------------------------------------------------------------------------
// ZBDD arena primitives
// ---------------------------------------------------------------------------

TEST(Zbdd, JoinUnionMinimalAlgebra) {
  fta::ZbddArena z;
  const auto a = z.single(0);
  const auto b = z.single(1);
  const auto ab = z.join(a, b);
  EXPECT_EQ(z.count(ab), 1u);
  EXPECT_EQ(z.enumerate(ab), (std::vector<std::vector<std::uint32_t>>{{0, 1}}));

  // {a} ∪ {{a,b}} minimised drops the superset.
  const auto fam = z.min_union(a, ab);
  EXPECT_EQ(z.enumerate(fam), (std::vector<std::vector<std::uint32_t>>{{0}}));

  // Non-strict subsumption: f \ supersets(f) keeps nothing.
  EXPECT_EQ(z.without_supersets(a, a), fta::kZbddEmpty);
  // subsets_with is the positive cofactor: members containing the variable,
  // with the variable removed.
  const auto mixed = z.set_union(a, ab);
  EXPECT_EQ(z.enumerate(z.subsets_with(mixed, 1)),
            (std::vector<std::vector<std::uint32_t>>{{0}}));
  EXPECT_FALSE(z.contains_empty(mixed));
  EXPECT_TRUE(z.contains_empty(fta::kZbddUnit));
}

// ---------------------------------------------------------------------------
// Engine vs. enumeration oracle
// ---------------------------------------------------------------------------

TEST(FtaEngine, MatchesOracleOnRandomSubjects) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Lcg rng(seed * 0x9E3779B97F4A7C15ULL);
    Fixture f;
    build_random_subject(f, rng);

    FtaOptions oracle_opts;
    oracle_opts.max_cut_set_size = 16;  // unbounded for these sizes
    const auto oracle = synthesize_fault_tree(f.m, f.sys, oracle_opts);
    const auto tree = fta::synthesize_fault_tree_zbdd(f.m, f.sys);

    ASSERT_EQ(tree.cut_sets, oracle.cut_sets) << "seed " << seed;
    EXPECT_FALSE(tree.truncated) << "seed " << seed;
    EXPECT_FALSE(oracle.truncated) << "seed " << seed;
    // Full structural identity, labels and rates included.
    EXPECT_EQ(tree.to_text(), oracle.to_text()) << "seed " << seed;

    // Exact probability never exceeds the rare-event bound (coherent tree).
    const auto q = fta::quantify(tree, 10'000.0);
    EXPECT_LE(q.exact_probability, q.rare_event_bound + 1e-12) << "seed " << seed;
    EXPECT_NEAR(q.rare_event_bound, std::min(1.0, tree.top_event_probability(10'000.0)),
                1e-12)
        << "seed " << seed;
  }
}

TEST(FtaEngine, MatchesOracleUnderEqualOrderBounds) {
  // Triple-parallel: single order-3 cut. Bounded at 2 both engines return an
  // empty, truncated family; bounded at 3 both return the cut untruncated.
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    const auto s = f.leaf("p" + std::to_string(i), 10, 1.0);
    f.m.connect(f.sys, f.in, s.in);
    f.m.connect(f.sys, s.out, f.out);
  }
  FtaOptions bounded;
  bounded.max_cut_set_size = 2;
  const auto oracle2 = synthesize_fault_tree(f.m, f.sys, bounded);
  const auto tree2 = fta::synthesize_fault_tree_zbdd(f.m, f.sys, {.max_order = 2});
  EXPECT_TRUE(oracle2.cut_sets.empty());
  EXPECT_TRUE(tree2.cut_sets.empty());
  EXPECT_TRUE(oracle2.truncated);
  EXPECT_TRUE(tree2.truncated);
  EXPECT_NE(oracle2.to_text().find(kFtaTruncationWarning), std::string::npos);
  EXPECT_NE(tree2.to_text().find(kFtaTruncationWarning), std::string::npos);

  FtaOptions full;
  full.max_cut_set_size = 3;
  const auto oracle3 = synthesize_fault_tree(f.m, f.sys, full);
  const auto tree3 = fta::synthesize_fault_tree_zbdd(f.m, f.sys, {.max_order = 3});
  EXPECT_EQ(tree3.cut_sets, oracle3.cut_sets);
  EXPECT_FALSE(oracle3.truncated);
  EXPECT_FALSE(tree3.truncated);
  EXPECT_EQ(tree3.cut_sets.size(), 1u);
}

TEST(FtaEngine, OracleTruncationFlagExactOnSerialChain) {
  // A serial chain has only order-1 cuts: a size bound of 1 clips nothing
  // and must not raise the flag.
  Fixture f;
  const auto a = f.leaf("a", 10, 1.0);
  const auto b = f.leaf("b", 10, 1.0);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, f.out);
  FtaOptions opts;
  opts.max_cut_set_size = 1;
  const auto oracle = synthesize_fault_tree(f.m, f.sys, opts);
  EXPECT_EQ(oracle.cut_sets.size(), 2u);
  EXPECT_FALSE(oracle.truncated);
}

TEST(FtaEngine, CompletesWhereEnumerationIsInfeasible) {
  // width-4 × 9 stages: 4^9 = 262144 input→output paths — the oracle's path
  // guard throws — yet only 9 minimal cut sets, each of order 4.
  const auto subject = make_scaled_architecture(9, 1, 4);
  EXPECT_THROW(synthesize_fault_tree(*subject.model, subject.system), AnalysisError);

  const auto tree = fta::synthesize_fault_tree_zbdd(*subject.model, subject.system);
  EXPECT_FALSE(tree.truncated);
  ASSERT_EQ(tree.cut_sets.size(), 9u);
  for (const auto& cut : tree.cut_sets) EXPECT_EQ(cut.size(), 4u);

  const auto q = fta::quantify(tree, 10'000.0);
  EXPECT_GT(q.exact_probability, 0.0);
  EXPECT_LE(q.exact_probability, q.rare_event_bound + 1e-12);
}

TEST(FtaEngine, ScaledWidthOnePreservesSerialChain) {
  const auto wide_default = make_scaled_architecture(3, 2);
  const auto explicit_one = make_scaled_architecture(3, 2, 1);
  EXPECT_EQ(wide_default.element_count, explicit_one.element_count);
  const auto a = fta::synthesize_fault_tree_zbdd(*wide_default.model, wide_default.system);
  const auto b = fta::synthesize_fault_tree_zbdd(*explicit_one.model, explicit_one.system);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.cut_sets.size(), 3u);  // one order-1 cut per serial stage
}

TEST(FtaEngine, DeterministicTextAcrossRuns) {
  Lcg rng(42);
  Fixture f;
  build_random_subject(f, rng);
  const auto first = fta::synthesize_fault_tree_zbdd(f.m, f.sys).to_text();
  const auto second = fta::synthesize_fault_tree_zbdd(f.m, f.sys).to_text();
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Exact quantification
// ---------------------------------------------------------------------------

TEST(FtaQuantify, ClosedFormsSerialAndParallel) {
  const double t = 1000.0;
  const double p = 1.0 - std::exp(-1e-6 * t);  // 1000 FIT, dist 1.0

  Fixture serial;
  const auto a = serial.leaf("a", 1000, 1.0);
  const auto b = serial.leaf("b", 1000, 1.0);
  serial.m.connect(serial.sys, serial.in, a.in);
  serial.m.connect(serial.sys, a.out, b.in);
  serial.m.connect(serial.sys, b.out, serial.out);
  const auto qs = fta::quantify(fta::synthesize_fault_tree_zbdd(serial.m, serial.sys), t);
  // Exact: 1 - (1-p)^2; rare event: 2p.
  EXPECT_NEAR(qs.exact_probability, 1.0 - (1.0 - p) * (1.0 - p), 1e-12);
  EXPECT_NEAR(qs.rare_event_bound, 2.0 * p, 1e-12);
  EXPECT_LT(qs.exact_probability, qs.rare_event_bound);

  Fixture par;
  const auto c = par.leaf("c", 1000, 1.0);
  const auto d = par.leaf("d", 1000, 1.0);
  par.m.connect(par.sys, par.in, c.in);
  par.m.connect(par.sys, par.in, d.in);
  par.m.connect(par.sys, c.out, par.out);
  par.m.connect(par.sys, d.out, par.out);
  const auto qp = fta::quantify(fta::synthesize_fault_tree_zbdd(par.m, par.sys), t);
  // Single cut {c,d}: exact and rare-event coincide at p², and every member
  // is indispensable (repairing either zeroes the top event).
  EXPECT_NEAR(qp.exact_probability, p * p, 1e-15);
  EXPECT_NEAR(qp.rare_event_bound, p * p, 1e-15);
  ASSERT_EQ(qp.importance.size(), 2u);
  EXPECT_TRUE(qp.importance[0].indispensable);
  EXPECT_TRUE(qp.importance[1].indispensable);
}

TEST(FtaQuantify, ImportanceRanksSerialAboveRedundant) {
  // head in series with a parallel pair: head dominates every measure.
  Fixture f;
  const auto head = f.leaf("head", 500, 1.0);
  const auto left = f.leaf("left", 500, 1.0);
  const auto right = f.leaf("right", 500, 1.0);
  f.m.connect(f.sys, f.in, head.in);
  f.m.connect(f.sys, head.out, left.in);
  f.m.connect(f.sys, head.out, right.in);
  f.m.connect(f.sys, left.out, f.out);
  f.m.connect(f.sys, right.out, f.out);
  const auto q = fta::quantify(fta::synthesize_fault_tree_zbdd(f.m, f.sys), 10'000.0);
  ASSERT_EQ(q.importance.size(), 3u);
  EXPECT_EQ(q.importance[0].component, head.comp);  // FV-descending
  // head is in the dominant cut but not every cut: FV just below 1, and a
  // repaired head still leaves the {left,right} cut — not indispensable.
  EXPECT_GT(q.importance[0].fussell_vesely, 0.99);
  EXPECT_LT(q.importance[0].fussell_vesely, 1.0);
  EXPECT_GT(q.importance[0].fussell_vesely, q.importance[1].fussell_vesely);
  EXPECT_GT(q.importance[0].birnbaum, q.importance[1].birnbaum);
  EXPECT_GT(q.importance[0].raw, 1.0);
  EXPECT_FALSE(q.importance[0].indispensable);
  EXPECT_GT(q.importance[0].rrw, q.importance[1].rrw);
  for (const auto& row : q.importance) {
    EXPECT_TRUE(std::isfinite(row.birnbaum));
    EXPECT_TRUE(std::isfinite(row.fussell_vesely));
    EXPECT_TRUE(std::isfinite(row.raw));
    EXPECT_TRUE(std::isfinite(row.rrw));
  }
}

TEST(FtaQuantify, DegenerateInputsStayFinite) {
  // Zero-rate basic event (no loss mode): P(top) = 0 on its only cut.
  Fixture f;
  const auto a = f.leaf("a", 100, 0.0);  // structural, rate 0
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto tree = fta::synthesize_fault_tree_zbdd(f.m, f.sys);
  ASSERT_EQ(tree.cut_sets.size(), 1u);

  for (const double t : {0.0, 10'000.0}) {
    const auto q = fta::quantify(tree, t);
    EXPECT_EQ(q.exact_probability, 0.0);
    EXPECT_EQ(q.rare_event_bound, 0.0);
    ASSERT_EQ(q.importance.size(), 1u);
    const auto& row = q.importance[0];
    // P(top) = 0: FV defaults to 0, RAW/RRW to 1 — finite, never NaN.
    EXPECT_EQ(row.fussell_vesely, 0.0);
    EXPECT_EQ(row.raw, 1.0);
    EXPECT_EQ(row.rrw, 1.0);
    // Birnbaum stays meaningful: with the rest perfect, a is decisive.
    EXPECT_NEAR(row.birnbaum, 1.0, 1e-12);
    EXPECT_TRUE(std::isfinite(row.birnbaum));
  }

  // Mission time 0 on a live tree: all probabilities 0, importance finite.
  Fixture g;
  const auto b = g.leaf("b", 1000, 1.0);
  g.m.connect(g.sys, g.in, b.in);
  g.m.connect(g.sys, b.out, g.out);
  const auto q0 = fta::quantify(fta::synthesize_fault_tree_zbdd(g.m, g.sys), 0.0);
  EXPECT_EQ(q0.exact_probability, 0.0);
  ASSERT_EQ(q0.importance.size(), 1u);
  EXPECT_TRUE(std::isfinite(q0.importance[0].birnbaum));
  EXPECT_TRUE(std::isfinite(q0.importance[0].rrw));
}

TEST(FtaQuantify, CutSetCsvCarriesTruncationWarning) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    const auto s = f.leaf("p" + std::to_string(i), 10, 1.0);
    f.m.connect(f.sys, f.in, s.in);
    f.m.connect(f.sys, s.out, f.out);
  }
  const auto clipped = fta::synthesize_fault_tree_zbdd(f.m, f.sys, {.max_order = 2});
  const auto csv = fta::cut_sets_csv(clipped, 10'000.0);
  ASSERT_FALSE(csv.rows.empty());
  EXPECT_EQ(csv.rows.back()[1], std::string(kFtaTruncationWarning));

  const auto full = fta::synthesize_fault_tree_zbdd(f.m, f.sys);
  const auto ok = fta::cut_sets_csv(full, 10'000.0);
  ASSERT_EQ(ok.rows.size(), 1u);
  EXPECT_EQ(ok.rows[0][0], "3");
}

// ---------------------------------------------------------------------------
// ISO 26262 latent / multi-point classification
// ---------------------------------------------------------------------------

namespace {

/// head → (left | right): head is the single-point fault, the pair are
/// multi-point (order-2 cut). Loss distributions below 1 leave non-loss FIT
/// out of the LFM entirely.
struct LfmFixture : Fixture {
  Sub head, left, right;
  LfmFixture() {
    head = leaf("head", 100, 0.5);
    left = leaf("left", 200, 0.5);
    right = leaf("right", 200, 0.5);
    m.connect(sys, in, head.in);
    m.connect(sys, head.out, left.in);
    m.connect(sys, head.out, right.in);
    m.connect(sys, left.out, out);
    m.connect(sys, right.out, out);
  }
};

const FmedaRow* loss_row(const FmedaResult& fmea, std::uint64_t component_id) {
  for (const auto& row : fmea.rows) {
    if (row.component_id == component_id && row.failure_mode == "Open") return &row;
  }
  return nullptr;
}

}  // namespace

TEST(FtaLfm, ClassifiesSingleAndMultiPointRows) {
  LfmFixture f;
  const auto tree = fta::synthesize_fault_tree_zbdd(f.m, f.sys);
  auto fmea = analyze_component(f.m, f.sys);
  const auto lfm = fta::classify_latent(f.m, tree, fmea);

  ASSERT_EQ(lfm.rows.size(), fmea.rows.size());
  EXPECT_TRUE(lfm.has_multi_point());

  size_t single = 0, latent = 0;
  for (const auto& row : lfm.rows) {
    if (row.cls == fta::FaultClass::SinglePoint) {
      ++single;
      EXPECT_EQ(fmea.rows[row.row_index].component_id, f.head.comp);
      EXPECT_EQ(row.min_cut_order, 1u);
    }
    if (row.cls == fta::FaultClass::MultiPointLatent) {
      ++latent;
      EXPECT_EQ(row.min_cut_order, 2u);
    }
  }
  EXPECT_EQ(single, 1u);
  EXPECT_EQ(latent, 2u);  // no coverage, not perceived: all residual is latent

  // No mechanisms deployed: everything multi-point is latent, LFM = 0.
  EXPECT_NEAR(lfm.latent_fit, 200.0, 1e-9);  // 2 × 200 FIT × 0.5 loss share
  EXPECT_NEAR(lfm.denominator_fit, 200.0, 1e-9);
  EXPECT_NEAR(lfm.lfm(), 0.0, 1e-12);
  EXPECT_EQ(lfm.asil_label(), achieved_asil_lfm(0.0));

  auto copy = fmea;
  fta::apply_lfm(copy, lfm);
  ASSERT_TRUE(copy.latent_fault_metric.has_value());
  EXPECT_NEAR(*copy.latent_fault_metric, 0.0, 1e-12);
}

TEST(FtaLfm, CoverageAndPerceptionSplitTheResidual) {
  LfmFixture f;
  // left's loss mode is 90% covered by a deployed mechanism; right's is
  // perceived by the driver.
  f.m.add_safety_mechanism(f.left.comp, "Monitor", 0.9, 2.0,
                           f.m.obj(f.left.comp).refs("failureModes").front());
  for (const ObjectId fm : f.m.obj(f.right.comp).refs("failureModes")) {
    f.m.obj(fm).set_bool("perceived", true);
  }

  const auto tree = fta::synthesize_fault_tree_zbdd(f.m, f.sys);
  auto fmea = analyze_component(f.m, f.sys);
  // The graph FMEA does not auto-deploy mechanisms onto rows; mirror the
  // deployment manually (what `same sm-search --apply` would do).
  for (auto& row : fmea.rows) {
    if (row.component_id == f.left.comp && row.failure_mode == "Open") {
      row.safety_mechanism = "Monitor";
      row.sm_coverage = 0.9;
    }
  }
  const auto lfm = fta::classify_latent(f.m, tree, fmea);

  ASSERT_NE(loss_row(fmea, f.left.comp), nullptr);
  bool saw_detected = false, saw_perceived = false;
  for (const auto& row : lfm.rows) {
    const auto& src = fmea.rows[row.row_index];
    if (src.component_id == f.left.comp && src.failure_mode == "Open") {
      // 100 FIT loss share: 90 detected, 10 latent → residual-latent class.
      EXPECT_NEAR(row.detected_fit, 90.0, 1e-9);
      EXPECT_NEAR(row.latent_fit, 10.0, 1e-9);
      EXPECT_EQ(row.cls, fta::FaultClass::MultiPointLatent);
      saw_detected = true;
    }
    if (src.component_id == f.right.comp && src.failure_mode == "Open") {
      EXPECT_NEAR(row.perceived_fit, 100.0, 1e-9);
      EXPECT_EQ(row.cls, fta::FaultClass::MultiPointPerceived);
      saw_perceived = true;
    }
  }
  EXPECT_TRUE(saw_detected);
  EXPECT_TRUE(saw_perceived);

  // LFM = 1 − latent/denominator = 1 − 10/200.
  EXPECT_NEAR(lfm.lfm(), 1.0 - 10.0 / 200.0, 1e-12);
  const auto text = lfm.to_text();
  EXPECT_NE(text.find("latent"), std::string::npos);
}

TEST(FtaLfm, RowWeightsSelectMultiPointRows) {
  LfmFixture f;
  const auto tree = fta::synthesize_fault_tree_zbdd(f.m, f.sys);
  auto fmea = analyze_component(f.m, f.sys);
  const auto lfm = fta::classify_latent(f.m, tree, fmea);
  const auto weights = fta::lfm_row_weights(lfm);
  ASSERT_EQ(weights.size(), fmea.rows.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    const bool multi = lfm.rows[i].min_cut_order >= 2;
    EXPECT_EQ(weights[i], multi ? 1.0 : 0.0) << "row " << i;
  }
}

TEST(FtaLfm, WeightedParetoMatchesExhaustiveOracle) {
  LfmFixture f;
  const auto tree = fta::synthesize_fault_tree_zbdd(f.m, f.sys);
  auto fmea = analyze_component(f.m, f.sys);
  const auto weights = fta::lfm_row_weights(fta::classify_latent(f.m, tree, fmea));

  SafetyMechanismModel catalogue;
  catalogue.add({"Component", "Open", "Cheap", 0.60, 1.0});
  catalogue.add({"Component", "Open", "Good", 0.90, 4.0});
  catalogue.add({"Component", "Open", "Best", 0.99, 9.0});
  for (auto& row : fmea.rows) row.component_type = "Component";

  ParetoOptions options;
  options.row_weights = weights;
  const auto front = pareto_front(fmea, catalogue, options);
  const auto oracle = pareto_front_exhaustive(fmea, catalogue, 2'000'000, weights);
  ASSERT_EQ(front.size(), oracle.size());
  for (size_t i = 0; i < front.size(); ++i) {
    EXPECT_NEAR(front[i].spfm, oracle[i].spfm, 1e-12) << "point " << i;
    EXPECT_NEAR(front[i].total_cost_hours, oracle[i].total_cost_hours, 1e-12);
  }
  // The weighted metric only moves when multi-point rows gain coverage: the
  // undeployed point scores 0, full deployment approaches 1.
  EXPECT_NEAR(front.front().spfm, 0.0, 1e-12);
  EXPECT_GT(front.back().spfm, 0.98);

  // Wrong-sized weights are rejected, not silently misaligned.
  ParetoOptions bad;
  bad.row_weights = {1.0};
  EXPECT_THROW(pareto_front(fmea, catalogue, bad), AnalysisError);

  const auto csv = front_to_csv(fmea, front, ParetoMetric::Lfm);
  ASSERT_GE(csv.header.size(), 3u);
  EXPECT_EQ(csv.header[1], "LFM");
}

TEST(FtaLfm, TargetsFollowIso26262) {
  EXPECT_EQ(lfm_target("ASIL-D"), kLfmTargetAsilD);
  EXPECT_EQ(lfm_target("b"), kLfmTargetAsilB);
  EXPECT_EQ(lfm_target("QM"), 0.0);
  EXPECT_TRUE(meets_asil_lfm(0.95, "ASIL-D"));
  EXPECT_FALSE(meets_asil_lfm(0.85, "ASIL-D"));
  EXPECT_EQ(achieved_asil_lfm(0.95), "ASIL-D");
  EXPECT_EQ(achieved_asil_lfm(0.65), "ASIL-B");
  EXPECT_THROW(lfm_target("ASIL-Z"), AnalysisError);
}
