// Tests for the fault-injection FMEA on circuit models, including the exact
// reproduction of the paper's Section V case study (Table IV).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "decisive/core/campaign.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;
using namespace decisive::core;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

struct CaseStudy {
  sim::BuiltCircuit built;
  ReliabilityModel reliability;
  SafetyMechanismModel sm_model;
  CircuitFmeaOptions options;

  CaseStudy() {
    built = sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"));
    const auto workbook =
        drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
    reliability = ReliabilityModel::from_source(*workbook, "Reliability");
    sm_model = SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");
    options.safety_goal_observables = {"CS1", "MC1"};
  }
};

const FmedaRow* find_row(const FmedaResult& result, const std::string& component,
                         const std::string& mode) {
  for (const auto& row : result.rows) {
    if (row.component == component && row.failure_mode == mode) return &row;
  }
  return nullptr;
}

}  // namespace

TEST(ObservableDeviation, RelativeWithFloor) {
  EXPECT_NEAR(observable_deviation(1.0, 1.1, 1e-6), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(observable_deviation(0.0, 1.0, 1.0), 1.0);  // floor applies
  EXPECT_DOUBLE_EQ(observable_deviation(2.0, 2.0, 1e-6), 0.0);
}

TEST(CircuitFmea, CaseStudySafetyRelatedSetMatchesPaper) {
  const CaseStudy cs;
  const auto fmea = analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  EXPECT_EQ(fmea.safety_related_components(),
            (std::vector<std::string>{"D1", "L1", "MC1"}));
  EXPECT_NEAR(fmea.spfm(), 0.0538, 5e-4);
}

TEST(CircuitFmea, CaseStudyFmedaMatchesTableIv) {
  const CaseStudy cs;
  const auto fmeda = analyze_circuit(cs.built, cs.reliability, &cs.sm_model, cs.options);

  const auto* d1_open = find_row(fmeda, "D1", "Open");
  ASSERT_NE(d1_open, nullptr);
  EXPECT_TRUE(d1_open->safety_related);
  EXPECT_DOUBLE_EQ(d1_open->single_point_fit(), 3.0);

  const auto* d1_short = find_row(fmeda, "D1", "Short");
  ASSERT_NE(d1_short, nullptr);
  EXPECT_FALSE(d1_short->safety_related);

  const auto* l1_open = find_row(fmeda, "L1", "Open");
  ASSERT_NE(l1_open, nullptr);
  EXPECT_DOUBLE_EQ(l1_open->single_point_fit(), 4.5);

  const auto* mc1 = find_row(fmeda, "MC1", "RAM Failure");
  ASSERT_NE(mc1, nullptr);
  EXPECT_EQ(mc1->safety_mechanism, "ECC");
  EXPECT_NEAR(mc1->single_point_fit(), 3.0, 1e-9);

  EXPECT_NEAR(fmeda.spfm(), 0.9677, 5e-4);
  EXPECT_TRUE(meets_asil(fmeda.spfm(), "ASIL-B"));
}

TEST(CircuitFmea, CapacitorShortIsBenignBehindEsr) {
  // The decoupling branches sit behind 10-ohm ESR resistors; a capacitor
  // short barely shifts the MCU supply current (the paper's Table IV lists
  // no capacitor as safety-related).
  const CaseStudy cs;
  const auto fmea = analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  for (const char* cap : {"C1", "C2"}) {
    for (const char* mode : {"Open", "Short"}) {
      const auto* row = find_row(fmea, cap, mode);
      ASSERT_NE(row, nullptr) << cap << " " << mode;
      EXPECT_FALSE(row->safety_related) << cap << " " << mode;
    }
  }
}

TEST(CircuitFmea, ComponentsWithoutReliabilityAreSkippedWithWarning) {
  const CaseStudy cs;
  const auto fmea = analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  // DC1 (source, the paper's "assume DC1 is stable") and both ESR resistors.
  size_t skipped = 0;
  for (const auto& warning : fmea.warnings) {
    if (warning.find("no reliability data") != std::string::npos) ++skipped;
  }
  EXPECT_EQ(skipped, 3u);
  EXPECT_EQ(find_row(fmea, "DC1", "Open"), nullptr);
}

TEST(CircuitFmea, EffectClassificationDvfVsIvf) {
  // With only CS1 as the safety-goal observable, the MCU RAM failure (which
  // only corrupts the MCU status output) is IVF, not DVF.
  CaseStudy cs;
  cs.options.safety_goal_observables = {"CS1"};
  const auto fmea = analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  const auto* mc1 = find_row(fmea, "MC1", "RAM Failure");
  ASSERT_NE(mc1, nullptr);
  EXPECT_TRUE(mc1->safety_related);
  EXPECT_EQ(mc1->effect, EffectClass::IVF);
  const auto* d1 = find_row(fmea, "D1", "Open");
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->effect, EffectClass::DVF);
}

TEST(CircuitFmea, ThresholdControlsSensitivity) {
  // At a very tight threshold even the diode short (a ~15% current shift)
  // becomes safety-related; at the default 20% it is benign.
  CaseStudy cs;
  cs.options.relative_threshold = 0.05;
  const auto tight = analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  const auto* d1_short = find_row(tight, "D1", "Short");
  ASSERT_NE(d1_short, nullptr);
  EXPECT_TRUE(d1_short->safety_related);
}

TEST(CircuitFmea, UnmappableFailureModeYieldsWarningRow) {
  ReliabilityModel reliability;
  reliability.add("Diode", 10, {{"Exotic quantum failure", 1.0}});
  const CaseStudy cs;
  const auto fmea = analyze_circuit(cs.built, reliability, nullptr, cs.options);
  const auto* exotic = find_row(fmea, "D1", "Exotic quantum failure");
  ASSERT_NE(exotic, nullptr);
  EXPECT_FALSE(exotic->safety_related);
  bool warned = false;
  for (const auto& warning : fmea.warnings) {
    if (warning.find("Exotic quantum failure") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(CircuitFmea, RamFailureOnNonMcuIsWarnedNotFatal) {
  // A reliability model claiming diodes have RAM failures: the injection is
  // not applicable; the analysis must survive with a warning.
  ReliabilityModel reliability;
  reliability.add("Diode", 10, {{"RAM Failure", 1.0}});
  const CaseStudy cs;
  const auto fmea = analyze_circuit(cs.built, reliability, nullptr, cs.options);
  bool warned = false;
  for (const auto& warning : fmea.warnings) {
    if (warning.find("RamFailure applies only to MCU") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(CircuitFmea, EmptyGoalSetTreatsEveryObservableAsGoal) {
  CaseStudy cs;
  cs.options.safety_goal_observables.clear();
  const auto fmea = analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  const auto* mc1 = find_row(fmea, "MC1", "RAM Failure");
  ASSERT_NE(mc1, nullptr);
  EXPECT_EQ(mc1->effect, EffectClass::DVF);
}

TEST(CircuitFmea, EveryRowCarriesAStructuredOutcome) {
  const CaseStudy cs;
  const auto fmea = analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  // Outcome counts partition the rows, and the case-study faults all solve
  // plainly (no ladder, no budget exhaustion, no singular systems).
  const auto counts = fmea.outcome_counts();
  size_t total = 0;
  for (const size_t count : counts) total += count;
  EXPECT_EQ(total, fmea.rows.size());
  for (const auto& row : fmea.rows) {
    EXPECT_EQ(row.outcome, FaultOutcome::Converged) << row.component << " "
                                                    << row.failure_mode;
    EXPECT_EQ(row.ladder_rung, 0);
    EXPECT_GT(row.solver_iterations, 0);
  }
  // The structured outcome reaches the CSV artefact.
  const auto csv = fmea.to_csv();
  EXPECT_NE(std::find(csv.header.begin(), csv.header.end(), "Fault_Outcome"),
            csv.header.end());
}

TEST(CircuitFmea, WarningsAreDerivedFromStructuredOutcomes) {
  // Satellite invariant: warnings are a projection of the rows, so the CSV
  // and the warning list can never disagree. Every non-empty outcome_warning
  // appears in the warnings, and every warning is either such a projection or
  // a skip notice for a component without reliability data.
  ReliabilityModel reliability;
  reliability.add("Diode", 10, {{"RAM Failure", 0.5}, {"Open", 0.5}});
  const CaseStudy cs;
  const auto fmea = analyze_circuit(cs.built, reliability, nullptr, cs.options);
  size_t derived = 0;
  for (const auto& row : fmea.rows) {
    const std::string warning = outcome_warning(row);
    if (warning.empty()) continue;
    ++derived;
    EXPECT_NE(std::find(fmea.warnings.begin(), fmea.warnings.end(), warning),
              fmea.warnings.end())
        << warning;
  }
  EXPECT_GT(derived, 0u);  // the RAM Failure on a diode is NotApplicable
  size_t skips = 0;
  for (const auto& warning : fmea.warnings) {
    if (warning.find("no reliability data") != std::string::npos) ++skips;
  }
  EXPECT_EQ(fmea.warnings.size(), skips + derived);
}

TEST(CircuitFmea, SmModelOnlyAppliesToSafetyRelatedRows) {
  CaseStudy cs;
  SafetyMechanismModel sm;
  sm.add({"Capacitor", "Short", "Useless mechanism", 0.5, 1.0});
  const auto fmeda = analyze_circuit(cs.built, cs.reliability, &sm, cs.options);
  const auto* c1_short = find_row(fmeda, "C1", "Short");
  ASSERT_NE(c1_short, nullptr);
  EXPECT_TRUE(c1_short->safety_mechanism.empty());  // not safety-related -> no SM
}
