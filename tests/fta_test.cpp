// Tests for the fault-tree synthesis and its federation with FMEA
// (the paper's future-work item 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "decisive/base/error.hpp"
#include "decisive/core/fta.hpp"
#include "decisive/core/graph_fmea.hpp"

using namespace decisive;
using namespace decisive::core;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

struct Fixture {
  SsamModel m;
  ObjectId sys, in, out;

  Fixture() {
    const auto pkg = m.create_component_package("design");
    sys = m.create_component(pkg, "sys");
    in = m.add_io_node(sys, "in", "in");
    out = m.add_io_node(sys, "out", "out");
  }

  struct Sub {
    ObjectId comp, in, out;
  };
  Sub leaf(const std::string& name, double fit, double loss_dist) {
    Sub s;
    s.comp = m.create_component(sys, name);
    m.obj(s.comp).set_real("fit", fit);
    s.in = m.add_io_node(s.comp, name + ".in", "in");
    s.out = m.add_io_node(s.comp, name + ".out", "out");
    if (loss_dist > 0.0) m.add_failure_mode(s.comp, "Open", loss_dist, "lossOfFunction");
    return s;
  }
};

std::vector<std::string> cut_names(const SsamModel& m,
                                   const std::vector<std::vector<ObjectId>>& cuts) {
  std::vector<std::string> out;
  for (const auto& cut : cuts) {
    std::string names;
    for (const ObjectId c : cut) {
      if (!names.empty()) names += "+";
      names += m.obj(c).get_string("name");
    }
    out.push_back(names);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

TEST(Fta, SerialChainGivesOrderOneCuts) {
  Fixture f;
  const auto a = f.leaf("a", 100, 0.5);
  const auto b = f.leaf("b", 200, 0.3);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, f.out);

  const auto tree = synthesize_fault_tree(f.m, f.sys);
  EXPECT_EQ(cut_names(f.m, tree.cut_sets), (std::vector<std::string>{"a", "b"}));
  ASSERT_FALSE(tree.nodes.empty());
  EXPECT_EQ(tree.nodes[0].kind, GateKind::Or);
  EXPECT_EQ(tree.nodes[0].children.size(), 2u);
}

TEST(Fta, ParallelPairGivesOrderTwoCut) {
  Fixture f;
  const auto a = f.leaf("a", 100, 1.0);
  const auto b = f.leaf("b", 100, 1.0);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, f.in, b.in);
  f.m.connect(f.sys, a.out, f.out);
  f.m.connect(f.sys, b.out, f.out);

  const auto tree = synthesize_fault_tree(f.m, f.sys);
  EXPECT_EQ(cut_names(f.m, tree.cut_sets), (std::vector<std::string>{"a+b"}));
  // Structure: OR -> AND -> two basic events.
  const auto& top = tree.nodes[0];
  ASSERT_EQ(top.children.size(), 1u);
  const auto& gate = tree.nodes[top.children[0]];
  EXPECT_EQ(gate.kind, GateKind::And);
  EXPECT_EQ(gate.children.size(), 2u);
}

TEST(Fta, DiamondMixesOrders) {
  Fixture f;
  const auto head = f.leaf("head", 10, 0.3);
  const auto left = f.leaf("left", 10, 1.0);
  const auto right = f.leaf("right", 10, 1.0);
  f.m.connect(f.sys, f.in, head.in);
  f.m.connect(f.sys, head.out, left.in);
  f.m.connect(f.sys, head.out, right.in);
  f.m.connect(f.sys, left.out, f.out);
  f.m.connect(f.sys, right.out, f.out);

  const auto tree = synthesize_fault_tree(f.m, f.sys);
  EXPECT_EQ(cut_names(f.m, tree.cut_sets),
            (std::vector<std::string>{"head", "left+right"}));
}

TEST(Fta, MinimalityScreensSupersets) {
  // Serial a followed by parallel (b|c): cuts are {a} and {b,c}; {a,b} etc.
  // must not appear.
  Fixture f;
  const auto a = f.leaf("a", 10, 1.0);
  const auto b = f.leaf("b", 10, 1.0);
  const auto c = f.leaf("c", 10, 1.0);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, a.out, c.in);
  f.m.connect(f.sys, b.out, f.out);
  f.m.connect(f.sys, c.out, f.out);

  const auto tree = synthesize_fault_tree(f.m, f.sys);
  EXPECT_EQ(cut_names(f.m, tree.cut_sets), (std::vector<std::string>{"a", "b+c"}));
}

TEST(Fta, BasicEventRatesFromLossModes) {
  Fixture f;
  const auto a = f.leaf("a", 100, 0.3);  // 30 FIT loss rate
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto tree = synthesize_fault_tree(f.m, f.sys);
  const FaultTreeNode* basic = nullptr;
  for (const auto& node : tree.nodes) {
    if (node.kind == GateKind::Basic) basic = &node;
  }
  ASSERT_NE(basic, nullptr);
  EXPECT_NEAR(basic->failure_rate, 30e-9, 1e-15);
}

TEST(Fta, TopEventProbabilityRareEventApproximation) {
  Fixture f;
  const auto a = f.leaf("a", 1000, 1.0);  // lambda = 1e-6 /h
  const auto b = f.leaf("b", 1000, 1.0);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, b.out, f.out);
  const auto tree = synthesize_fault_tree(f.m, f.sys);
  const double t = 1000.0;  // hours
  const double p1 = 1.0 - std::exp(-1e-6 * t);
  EXPECT_NEAR(tree.top_event_probability(t), 2.0 * p1, 1e-9);

  // Parallel version: product instead of sum.
  Fixture g;
  const auto c = g.leaf("c", 1000, 1.0);
  const auto d = g.leaf("d", 1000, 1.0);
  g.m.connect(g.sys, g.in, c.in);
  g.m.connect(g.sys, g.in, d.in);
  g.m.connect(g.sys, c.out, g.out);
  g.m.connect(g.sys, d.out, g.out);
  const auto parallel = synthesize_fault_tree(g.m, g.sys);
  EXPECT_NEAR(parallel.top_event_probability(t), p1 * p1, 1e-12);
  EXPECT_LT(parallel.top_event_probability(t), tree.top_event_probability(t));
}

TEST(Fta, TextRenderingShowsGatesAndRates) {
  Fixture f;
  const auto a = f.leaf("a", 100, 0.5);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto text = synthesize_fault_tree(f.m, f.sys).to_text();
  EXPECT_NE(text.find("[OR]"), std::string::npos);
  EXPECT_NE(text.find("loss of 'a'"), std::string::npos);
  EXPECT_NE(text.find("50 FIT"), std::string::npos);
}

TEST(Fta, CutSetSizeBoundRespected) {
  // Triple-parallel: the only cut has size 3; with max size 2 none is found.
  Fixture f;
  std::vector<Fixture::Sub> subs;
  for (int i = 0; i < 3; ++i) {
    subs.push_back(f.leaf("p" + std::to_string(i), 10, 1.0));
    f.m.connect(f.sys, f.in, subs.back().in);
    f.m.connect(f.sys, subs.back().out, f.out);
  }
  FtaOptions limited;
  limited.max_cut_set_size = 2;
  EXPECT_TRUE(synthesize_fault_tree(f.m, f.sys, limited).cut_sets.empty());
  FtaOptions full;
  full.max_cut_set_size = 3;
  EXPECT_EQ(synthesize_fault_tree(f.m, f.sys, full).cut_sets.size(), 1u);
}

TEST(Fta, CrosscheckAgreesWithFmeaOnCleanModels) {
  Fixture f;
  const auto a = f.leaf("a", 100, 0.5);
  const auto b = f.leaf("b", 100, 1.0);
  const auto c = f.leaf("c", 100, 1.0);
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, b.in);
  f.m.connect(f.sys, a.out, c.in);
  f.m.connect(f.sys, b.out, f.out);
  f.m.connect(f.sys, c.out, f.out);

  const auto tree = synthesize_fault_tree(f.m, f.sys);
  const auto fmea = analyze_component(f.m, f.sys);
  EXPECT_TRUE(crosscheck_with_fmea(f.m, tree, fmea).empty());
}

TEST(Fta, CrosscheckFlagsStructuralCriticalityWithoutLossModes) {
  // 'a' is serial but has NO loss failure mode: the FTA sees an order-1
  // structural cut while the FMEA has nothing to report — the federation
  // surfaces exactly this gap.
  Fixture f;
  const auto a = f.leaf("a", 100, 0.0);  // no failure modes at all
  f.m.connect(f.sys, f.in, a.in);
  f.m.connect(f.sys, a.out, f.out);
  const auto tree = synthesize_fault_tree(f.m, f.sys);
  const auto fmea = analyze_component(f.m, f.sys);
  const auto issues = crosscheck_with_fmea(f.m, tree, fmea);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("'a'"), std::string::npos);
}

TEST(Fta, RequiresBoundaryNodes) {
  SsamModel m;
  const auto pkg = m.create_component_package("design");
  const auto sys = m.create_component(pkg, "sys");
  EXPECT_THROW(synthesize_fault_tree(m, sys), AnalysisError);
}
