// Tests for the AC small-signal analysis against closed-form filter theory.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "decisive/base/error.hpp"
#include "decisive/sim/circuit.hpp"
#include "decisive/sim/solver.hpp"

using namespace decisive;
using namespace decisive::sim;

namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

TEST(Ac, RcLowPassMatchesAnalyticTransfer) {
  // |H(jw)| = 1 / sqrt(1 + (wRC)^2), fc = 1/(2 pi RC).
  const double r = 1000.0;
  const double c_farads = 1e-6;
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_vsource("V1", in, 0, 5.0);
  c.add_resistor("R1", in, out, r);
  c.add_capacitor("C1", out, 0, c_farads);
  c.add_voltage_sensor("VS", out, 0);

  const double fc = 1.0 / (2.0 * kPi * r * c_farads);
  const auto sweep = ac_analysis(c, "V1", {fc / 100.0, fc, fc * 100.0});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_NEAR(sweep[0].magnitude("VS"), 1.0, 1e-3);                   // passband
  EXPECT_NEAR(sweep[1].magnitude("VS"), 1.0 / std::sqrt(2.0), 1e-3);  // -3 dB point
  EXPECT_NEAR(sweep[2].magnitude("VS"), 0.01, 1e-3);                  // -40 dB
}

TEST(Ac, PhaseAtCutoffIsMinus45Degrees) {
  const double r = 1000.0;
  const double c_farads = 1e-6;
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_vsource("V1", in, 0, 5.0);
  c.add_resistor("R1", in, out, r);
  c.add_capacitor("C1", out, 0, c_farads);
  c.add_voltage_sensor("VS", out, 0);
  const double fc = 1.0 / (2.0 * kPi * r * c_farads);
  const auto sweep = ac_analysis(c, "V1", {fc});
  EXPECT_NEAR(sweep[0].readings.at("VS").second, -kPi / 4.0, 1e-3);
}

TEST(Ac, LcFilterAttenuatesAboveResonance) {
  // Series L, shunt C: second-order low-pass, ~-40 dB/decade above
  // f0 = 1/(2 pi sqrt(LC)).
  const double l = 1e-3;
  const double c_farads = 1e-5;
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_vsource("V1", in, 0, 5.0);
  c.add_inductor("L1", in, out, l);
  c.add_capacitor("C1", out, 0, c_farads);
  c.add_resistor("Rload", out, 0, 100.0);
  c.add_voltage_sensor("VS", out, 0);

  const double f0 = 1.0 / (2.0 * kPi * std::sqrt(l * c_farads));
  const auto sweep = ac_analysis(c, "V1", {f0 / 100.0, f0 * 10.0, f0 * 100.0});
  EXPECT_NEAR(sweep[0].magnitude("VS"), 1.0, 1e-2);     // DC-ish: passes
  EXPECT_LT(sweep[1].magnitude("VS"), 0.02);            // decade above: heavily attenuated
  EXPECT_LT(sweep[2].magnitude("VS"), sweep[1].magnitude("VS") / 50.0);  // ~40 dB/decade
}

TEST(Ac, DecouplingCapacitorsAttenuateSupplyRipple) {
  // The case-study story the DC FMEA cannot see: with the decoupling branch
  // present, high-frequency ripple at the MCU is much smaller than without.
  auto build = [](bool with_cap) {
    Circuit c;
    const int in = c.node("in");
    const int mid = c.node("mid");
    c.add_vsource("V1", in, 0, 5.0);
    c.add_inductor("L1", in, mid, 1e-3);
    if (with_cap) {
      const int esr = c.node("esr");
      c.add_resistor("ESR1", mid, esr, 10.0);
      c.add_capacitor("C1", esr, 0, 1e-5);
    }
    c.add_mcu("MC1", mid, 0, 100.0);
    c.add_voltage_sensor("VS", mid, 0);
    return c;
  };
  const double ripple_hz = 100000.0;
  const auto with_cap = ac_analysis(build(true), "V1", {ripple_hz});
  const auto without_cap = ac_analysis(build(false), "V1", {ripple_hz});
  EXPECT_LT(with_cap[0].magnitude("VS"), without_cap[0].magnitude("VS") * 0.5);
}

TEST(Ac, NonStimulusSourcesAreQuiet) {
  // A second DC source contributes nothing at AC (small-signal short).
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_vsource("V1", a, 0, 5.0);
  c.add_vsource("V2", b, 0, 3.3);
  c.add_resistor("R1", a, b, 1000.0);
  c.add_voltage_sensor("VS", b, 0);
  const auto sweep = ac_analysis(c, "V1", {1000.0});
  // b is pinned by the (shorted) V2: no signal.
  EXPECT_NEAR(sweep[0].magnitude("VS"), 0.0, 1e-9);
}

TEST(Ac, ErrorsOnBadInput) {
  Circuit c;
  const int a = c.node("a");
  c.add_vsource("V1", a, 0, 5.0);
  c.add_resistor("R1", a, 0, 100.0);
  EXPECT_THROW(ac_analysis(c, "R1", {1000.0}), SimulationError);  // not a source
  EXPECT_THROW(ac_analysis(c, "ghost", {1000.0}), SimulationError);
  EXPECT_THROW(ac_analysis(c, "V1", {-5.0}), SimulationError);  // bad frequency

  const auto sweep = ac_analysis(c, "V1", {1000.0});
  EXPECT_THROW((void)sweep[0].magnitude("nope"), SimulationError);
}

TEST(Ac, CurrentSensorReadsBranchMagnitude) {
  // 1 V AC across 1 kOhm -> 1 mA through the sensor, at any frequency.
  Circuit c;
  const int a = c.node("a");
  const int s = c.node("s");
  c.add_vsource("V1", a, 0, 5.0);
  c.add_current_sensor("CS", a, s);
  c.add_resistor("R1", s, 0, 1000.0);
  for (const double f : {10.0, 1e4, 1e7}) {
    const auto sweep = ac_analysis(c, "V1", {f});
    EXPECT_NEAR(sweep[0].magnitude("CS"), 1e-3, 1e-9) << f;
  }
}
