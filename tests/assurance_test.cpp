// Tests for the assurance-case module (SACM/ACME substitute): structure,
// XML round trip and automated evaluation with executable artifact queries.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "decisive/assurance/case.hpp"
#include "decisive/assurance/evaluate.hpp"
#include "decisive/base/error.hpp"

using namespace decisive;
using namespace decisive::assurance;

namespace {

/// Writes an evidence CSV the artifact queries can check.
class EvidenceFile {
 public:
  explicit EvidenceFile(const std::string& content) {
    path_ = std::filesystem::temp_directory_path() /
            ("decisive-evidence-" + std::to_string(counter_++) + ".csv");
    std::ofstream out(path_);
    out << content;
  }
  ~EvidenceFile() { std::filesystem::remove(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

}  // namespace

TEST(Case, StructureAndLookup) {
  AssuranceCase ac("demo");
  ac.add_claim("G1", "top");
  ac.add_strategy("S1", "argue", "G1");
  ac.add_claim("G2", "sub", "S1");
  ac.add_context("C1", "context", "G1");
  EXPECT_EQ(ac.root().id, "G1");
  ASSERT_NE(ac.find("S1"), nullptr);
  EXPECT_EQ(ac.find("S1")->children, (std::vector<std::string>{"G2"}));
  EXPECT_EQ(ac.find("missing"), nullptr);
  EXPECT_EQ(ac.nodes().size(), 4u);
}

TEST(Case, DuplicateIdAndUnknownParentThrow) {
  AssuranceCase ac("demo");
  ac.add_claim("G1", "top");
  EXPECT_THROW(ac.add_claim("G1", "again"), ModelError);
  EXPECT_THROW(ac.add_claim("G2", "sub", "nope"), ModelError);
}

TEST(Case, EmptyRootThrows) {
  const AssuranceCase ac("empty");
  EXPECT_THROW((void)ac.root(), ModelError);
}

TEST(Case, XmlRoundTrip) {
  AssuranceCase ac("rt");
  ac.add_claim("G1", "claim with <chars> & \"quotes\"");
  ac.add_strategy("S1", "strategy", "G1");
  ac.add_artifact("E1", "evidence", "S1", "/tmp/x.csv", "csv",
                  "rows().size() > 0 and 'a' < 'b'");
  const auto loaded = AssuranceCase::from_xml(ac.to_xml());
  EXPECT_EQ(loaded.name(), "rt");
  ASSERT_EQ(loaded.nodes().size(), 3u);
  EXPECT_EQ(loaded.root().statement, "claim with <chars> & \"quotes\"");
  const Node* e1 = loaded.find("E1");
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->kind, NodeKind::ArtifactReference);
  EXPECT_EQ(e1->artifact_location, "/tmp/x.csv");
  EXPECT_EQ(e1->query, "rows().size() > 0 and 'a' < 'b'");
  EXPECT_EQ(loaded.find("S1")->children, (std::vector<std::string>{"E1"}));
}

TEST(Case, FromXmlRejectsBadDocuments) {
  EXPECT_THROW(AssuranceCase::from_xml("<other/>"), ParseError);
  EXPECT_THROW(AssuranceCase::from_xml(
                   "<assuranceCase><node kind=\"Claim\" statement=\"no id\"/></assuranceCase>"),
               ParseError);
  EXPECT_THROW(AssuranceCase::from_xml("<assuranceCase>"
                                       "<node kind=\"Claim\" id=\"G1\"/>"
                                       "<node kind=\"Claim\" id=\"G1\"/>"
                                       "</assuranceCase>"),
               ParseError);
  EXPECT_THROW(AssuranceCase::from_xml("<assuranceCase>"
                                       "<node kind=\"Wat\" id=\"G1\"/>"
                                       "</assuranceCase>"),
               ParseError);
}

// -------------------------------------------------------------- evaluation --

TEST(Evaluate, SupportedWhenQueryHolds) {
  const EvidenceFile evidence("metric\n0.97\n");
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_artifact("E1", "evidence", "G1", evidence.path(), "csv",
                  "rows().first().metric >= 0.90");
  const auto report = evaluate(ac);
  EXPECT_TRUE(report.case_supported);
  EXPECT_EQ(report.result_for("E1")->state, ClaimState::Supported);
  EXPECT_EQ(report.result_for("G1")->state, ClaimState::Supported);
}

TEST(Evaluate, DefeatedWhenQueryFalse) {
  const EvidenceFile evidence("metric\n0.50\n");
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_artifact("E1", "evidence", "G1", evidence.path(), "csv",
                  "rows().first().metric >= 0.90");
  const auto report = evaluate(ac);
  EXPECT_FALSE(report.case_supported);
  EXPECT_EQ(report.result_for("E1")->state, ClaimState::Defeated);
  EXPECT_EQ(report.result_for("G1")->state, ClaimState::Defeated);
}

TEST(Evaluate, DefeatedOnQueryOrIoErrors) {
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_artifact("E1", "missing file", "G1", "/nonexistent/file.csv", "csv", "true");
  const auto report = evaluate(ac);
  EXPECT_EQ(report.result_for("E1")->state, ClaimState::Defeated);
  EXPECT_FALSE(report.result_for("E1")->detail.empty());

  const EvidenceFile evidence("a\n1\n");
  AssuranceCase bad_query("eval2");
  bad_query.add_claim("G1", "top");
  bad_query.add_artifact("E1", "bad", "G1", evidence.path(), "csv", "syntax error here (");
  EXPECT_EQ(evaluate(bad_query).result_for("E1")->state, ClaimState::Defeated);
}

TEST(Evaluate, UndevelopedWithoutEvidence) {
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_claim("G2", "undeveloped sub", "G1");
  const auto report = evaluate(ac);
  EXPECT_FALSE(report.case_supported);
  EXPECT_EQ(report.result_for("G2")->state, ClaimState::Undeveloped);
  EXPECT_EQ(report.result_for("G1")->state, ClaimState::Undeveloped);
}

TEST(Evaluate, ContextDoesNotCountAsEvidence) {
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_context("C1", "some context", "G1");
  const auto report = evaluate(ac);
  EXPECT_EQ(report.result_for("G1")->state, ClaimState::Undeveloped);
}

TEST(Evaluate, MixedChildren) {
  const EvidenceFile good("v\n1\n");
  const EvidenceFile bad("v\n0\n");
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_artifact("E1", "good", "G1", good.path(), "csv", "rows().first().v == 1");
  ac.add_artifact("E2", "bad", "G1", bad.path(), "csv", "rows().first().v == 1");
  const auto report = evaluate(ac);
  EXPECT_EQ(report.result_for("G1")->state, ClaimState::Defeated);  // any defeated child
}

TEST(Evaluate, DanglingReferenceIsDefeated) {
  AssuranceCase ac("eval");
  Node& g1 = ac.add_claim("G1", "top");
  g1.children.push_back("ghost");
  const auto report = evaluate(ac);
  EXPECT_EQ(report.result_for("G1")->state, ClaimState::Defeated);
}

TEST(Evaluate, CycleTerminates) {
  AssuranceCase ac("eval");
  Node& g1 = ac.add_claim("G1", "top");
  Node& g2 = ac.add_claim("G2", "sub", "G1");
  g2.children.push_back("G1");  // cycle
  (void)g1;
  const auto report = evaluate(ac);  // must not hang
  EXPECT_FALSE(report.case_supported);
}

TEST(Evaluate, ExtraEnvironmentIsVisibleToQueries) {
  const EvidenceFile evidence("metric\n0.95\n");
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_artifact("E1", "evidence", "G1", evidence.path(), "csv",
                  "rows().first().metric >= target");
  query::Env extra;
  extra.set("target", query::Value(0.90));
  EXPECT_TRUE(evaluate(ac, &extra).case_supported);
  extra.set("target", query::Value(0.99));
  EXPECT_FALSE(evaluate(ac, &extra).case_supported);
}

TEST(Evaluate, NonBooleanQueryResultIsDefeated) {
  const EvidenceFile evidence("v\n42\n");
  AssuranceCase ac("eval");
  ac.add_claim("G1", "top");
  ac.add_artifact("E1", "numeric", "G1", evidence.path(), "csv", "rows().first().v");
  const auto report = evaluate(ac);
  EXPECT_EQ(report.result_for("E1")->state, ClaimState::Defeated);
  EXPECT_NE(report.result_for("E1")->detail.find("42"), std::string::npos);
}
