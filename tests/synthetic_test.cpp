// Tests for the synthetic evaluation subjects (Systems A and B) and the
// scalability harness (Table VI machinery).
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;
using namespace decisive::core;

TEST(SystemA, HasThePublishedElementCount) {
  const auto system = make_system_a();
  EXPECT_EQ(system.element_count, 102u);
  EXPECT_EQ(system.model->size(), 102u);
}

TEST(SystemB, HasThePublishedElementCount) {
  const auto system = make_system_b();
  EXPECT_EQ(system.element_count, 230u);
  EXPECT_EQ(system.model->size(), 230u);
}

TEST(SystemA, AnalysesWithNonTrivialResults) {
  auto system = make_system_a();
  const auto fmea = analyze_component(*system.model, system.system);
  EXPECT_GT(fmea.rows.size(), 10u);
  const auto sr = fmea.safety_related_components();
  EXPECT_GT(sr.size(), 3u);                        // several single points
  EXPECT_LT(sr.size(), fmea.rows.size());          // but not everything
  EXPECT_LT(fmea.spfm(), 0.90);                    // needs refinement
  // The parallel capacitors are not single points.
  for (const auto& name : sr) {
    EXPECT_NE(name, "A.C1");
    EXPECT_NE(name, "A.C2");
  }
}

TEST(SystemB, RedundantPairsAreNotSinglePoints) {
  auto system = make_system_b();
  const auto fmea = analyze_component(*system.model, system.system);
  const auto sr = fmea.safety_related_components();
  for (const auto& name : sr) {
    EXPECT_NE(name, "B.CPU1");
    EXPECT_NE(name, "B.CPU2");
    EXPECT_NE(name, "B.SNS1");  // redundant sensor pair
  }
  // Serial spine elements are single points.
  EXPECT_NE(std::find(sr.begin(), sr.end(), "B.REG1"), sr.end());
  EXPECT_NE(std::find(sr.begin(), sr.end(), "B.MC1"), sr.end());
}

TEST(SystemB, MixesHardwareAndSoftware) {
  auto system = make_system_b();
  size_t software = 0;
  size_t hardware = 0;
  for (const auto id : system.model->all_components_under(system.system)) {
    const auto type = system.model->obj(id).get_string("componentType");
    if (type == "software") ++software;
    if (type == "hardware") ++hardware;
  }
  EXPECT_GE(software, 5u);
  EXPECT_GE(hardware, 10u);
}

TEST(Reliability, CoversEveryTypeUsedByTheSystems) {
  const auto reliability = synthetic_reliability();
  for (auto make : {&make_system_a, &make_system_b}) {
    auto system = make();
    for (const auto id : system.model->all_components_under(system.system)) {
      const auto& comp = system.model->obj(id);
      if (!comp.refs("subcomponents").empty()) continue;
      const auto type = comp.get_string("blockType");
      EXPECT_NE(reliability.find(type), nullptr) << type;
    }
  }
}

TEST(Catalogue, ReachesAsilBOnBothSystems) {
  const auto catalogue = synthetic_sm_catalogue();
  for (auto make : {&make_system_a, &make_system_b}) {
    auto system = make();
    const auto fmea = analyze_component(*system.model, system.system);
    const auto deployment = greedy_reach_asil(fmea, catalogue, "ASIL-B");
    ASSERT_TRUE(deployment.has_value());
    EXPECT_GE(deployment->spfm, 0.90);
  }
}

TEST(Generators, AreDeterministic) {
  const auto first = make_system_a();
  const auto second = make_system_a();
  EXPECT_EQ(first.element_count, second.element_count);
  auto sys1 = make_system_a();
  auto sys2 = make_system_a();
  const auto fmea1 = analyze_component(*sys1.model, sys1.system);
  const auto fmea2 = analyze_component(*sys2.model, sys2.system);
  EXPECT_EQ(fmea1.rows.size(), fmea2.rows.size());
  EXPECT_DOUBLE_EQ(fmea1.spfm(), fmea2.spfm());
}

// ------------------------------------------------------------- scalability --

TEST(Scalability, SourceEmitsExactlyCount) {
  ScalabilitySource source(1000);
  EXPECT_EQ(source.size_hint(), 1000u);
  size_t emitted = 0;
  while (source.next([&](const model::MetaClass&,
                         const std::function<void(model::ModelObject&)>&) { ++emitted; })) {
  }
  EXPECT_EQ(emitted, 1000u);
}

TEST(Scalability, FullLoadAndIndexedAgree) {
  const auto full = evaluate_full_load(5689, size_t{1} << 32);
  const auto indexed = evaluate_indexed(5689);
  ASSERT_TRUE(full.loaded);
  ASSERT_TRUE(indexed.loaded);
  EXPECT_EQ(full.safety_related, indexed.safety_related);
  EXPECT_DOUBLE_EQ(full.total_fit, indexed.total_fit);
  // Every 7th element is safety-related.
  EXPECT_EQ(full.safety_related, 813u);  // ceil(5689 / 7)
}

TEST(Scalability, FullLoadRefusesOversizedModels) {
  const auto run = evaluate_full_load(568'990'000, size_t{4} << 30);
  EXPECT_FALSE(run.loaded);
  EXPECT_NE(run.failure.find("memory"), std::string::npos);
}

TEST(Scalability, IndexedStreamsLargeModelsInConstantMemory) {
  // 2M elements through aggregate-only columns: must succeed quickly and
  // agree with the closed-form expectations.
  const auto run = evaluate_indexed(2'000'000);
  EXPECT_TRUE(run.loaded);
  EXPECT_EQ(run.safety_related, (2'000'000 + 6) / 7);
  // fit pattern: (i % 50) + 1 summed over 2M elements = 40000 * (1+..+50).
  EXPECT_DOUBLE_EQ(run.total_fit, 40000.0 * 1275.0);
}
