// Property-based tests on randomly generated circuits: structural truths the
// fault-injection FMEA must respect regardless of topology, plus solver
// invariants (superposition on linear networks).
#include <gtest/gtest.h>

#include <cmath>

#include "decisive/base/table.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/sim/circuit.hpp"
#include "decisive/sim/fault.hpp"
#include "decisive/sim/solver.hpp"

using namespace decisive;
using namespace decisive::sim;

namespace {

/// A random series-parallel resistive ladder between a source and a sensed
/// load: `stages` stages, each either one series resistor or a parallel
/// pair. Returns the built circuit + which elements are serial.
struct RandomLadder {
  Circuit circuit;
  std::vector<std::string> serial_elements;
  std::vector<std::string> parallel_elements;
};

RandomLadder make_ladder(Rng& rng, int stages) {
  RandomLadder out;
  Circuit& c = out.circuit;
  int previous = c.node("vin");
  c.add_vsource("V1", previous, 0, 10.0);
  int counter = 0;
  for (int stage = 0; stage < stages; ++stage) {
    const int next = c.make_node();
    if (rng.chance(0.5)) {
      const std::string name = "Rs" + std::to_string(counter++);
      c.add_resistor(name, previous, next, rng.uniform(100.0, 10000.0));
      out.serial_elements.push_back(name);
    } else {
      const std::string a = "Rp" + std::to_string(counter++);
      const std::string b = "Rp" + std::to_string(counter++);
      c.add_resistor(a, previous, next, rng.uniform(100.0, 10000.0));
      c.add_resistor(b, previous, next, rng.uniform(100.0, 10000.0));
      out.parallel_elements.push_back(a);
      out.parallel_elements.push_back(b);
    }
    previous = next;
  }
  const int sense = c.make_node();
  c.add_current_sensor("CS", previous, sense);
  c.add_resistor("Rload", sense, 0, 1000.0);
  return out;
}

}  // namespace

class LadderProperty : public ::testing::TestWithParam<int> {};

TEST_P(LadderProperty, SerialOpensAlwaysKillTheLoad) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const RandomLadder ladder = make_ladder(rng, 2 + static_cast<int>(rng.below(5)));
  const double baseline = std::abs(dc_operating_point(ladder.circuit).reading("CS"));
  ASSERT_GT(baseline, 1e-6);

  for (const auto& name : ladder.serial_elements) {
    const auto faulted = inject_fault(ladder.circuit, Fault{name, FaultKind::Open});
    const double after = std::abs(dc_operating_point(faulted).reading("CS"));
    EXPECT_LT(after, baseline * 1e-3) << name << " open must sever the load";
  }
}

TEST_P(LadderProperty, ParallelOpensNeverKillTheLoad) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const RandomLadder ladder = make_ladder(rng, 2 + static_cast<int>(rng.below(5)));
  const double baseline = std::abs(dc_operating_point(ladder.circuit).reading("CS"));
  ASSERT_GT(baseline, 1e-6);

  for (const auto& name : ladder.parallel_elements) {
    const auto faulted = inject_fault(ladder.circuit, Fault{name, FaultKind::Open});
    const double after = std::abs(dc_operating_point(faulted).reading("CS"));
    EXPECT_GT(after, baseline * 0.05) << name << " open must leave its twin carrying current";
  }
}

TEST_P(LadderProperty, ShortsNeverDecreaseTheLoadCurrent) {
  // Shorting any series-parallel element reduces total resistance, so the
  // sensed load current cannot drop.
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
  const RandomLadder ladder = make_ladder(rng, 2 + static_cast<int>(rng.below(5)));
  const double baseline = std::abs(dc_operating_point(ladder.circuit).reading("CS"));

  for (const auto& name : ladder.serial_elements) {
    const auto faulted = inject_fault(ladder.circuit, Fault{name, FaultKind::Short});
    const double after = std::abs(dc_operating_point(faulted).reading("CS"));
    EXPECT_GE(after + 1e-9, baseline) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderProperty, ::testing::Range(1, 21));

// ------------------------------------------------------------ superposition --

class SuperpositionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SuperpositionProperty, LinearNetworksObeySuperposition) {
  // Random linear resistive network with two sources: the response to both
  // sources equals the sum of the responses to each source alone.
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  Circuit c;
  const int nodes = 4;
  std::vector<int> n{0};
  for (int i = 1; i <= nodes; ++i) n.push_back(c.node("n" + std::to_string(i)));
  // Dense-ish random resistor mesh keeps every node grounded through paths.
  int counter = 0;
  for (int i = 0; i <= nodes; ++i) {
    for (int j = i + 1; j <= nodes; ++j) {
      if (rng.chance(0.7)) {
        c.add_resistor("R" + std::to_string(counter++), n[static_cast<size_t>(i)],
                       n[static_cast<size_t>(j)], rng.uniform(100.0, 5000.0));
      }
    }
  }
  // Guarantee solvability: tie n1 and n4 to ground through resistors.
  c.add_resistor("Rg1", n[1], 0, 1000.0);
  c.add_resistor("Rg4", n[4], 0, 1000.0);
  const double v1 = rng.uniform(1.0, 10.0);
  const double i2 = rng.uniform(0.001, 0.01);
  c.add_vsource("V1", n[1], 0, v1);
  c.add_isource("I2", 0, n[2], i2);
  c.add_voltage_sensor("VS", n[3], 0);

  auto respond = [&](double v, double i) {
    Circuit copy = c;
    copy.get("V1").value = v;
    copy.get("I2").value = i;
    return dc_operating_point(copy).reading("VS");
  };
  const double both = respond(v1, i2);
  const double only_v = respond(v1, 0.0);
  const double only_i = respond(0.0, i2);
  EXPECT_NEAR(both, only_v + only_i, 1e-9 + std::abs(both) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperpositionProperty, ::testing::Range(1, 21));

// -------------------------------------------------------- FMEA consistency --

TEST(CircuitFmeaProperty, FaultInjectionNeverMutatesTheInput) {
  Rng rng(42);
  const RandomLadder ladder = make_ladder(rng, 4);
  const auto before = dc_operating_point(ladder.circuit).reading("CS");
  for (const auto& name : ladder.serial_elements) {
    (void)inject_fault(ladder.circuit, Fault{name, FaultKind::Open});
    (void)inject_fault(ladder.circuit, Fault{name, FaultKind::Short});
  }
  const auto after = dc_operating_point(ladder.circuit).reading("CS");
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(CircuitFmeaProperty, AnalysisIsDeterministic) {
  Rng rng(7);
  RandomLadder ladder = make_ladder(rng, 4);
  core::ReliabilityModel reliability;
  reliability.add("Resistor", 5, {{"Open", 0.6}, {"Short", 0.4}});

  sim::BuiltCircuit built;
  built.circuit = ladder.circuit;
  for (const auto& e : ladder.circuit.elements()) {
    if (e.kind == ElementKind::Resistor) {
      built.components.push_back({e.name, "Resistor", e.name});
    }
  }
  built.observables.push_back("CS");

  const auto first = core::analyze_circuit(built, reliability);
  const auto second = core::analyze_circuit(built, reliability);
  ASSERT_EQ(first.rows.size(), second.rows.size());
  for (size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(first.rows[i].safety_related, second.rows[i].safety_related);
  }
  EXPECT_DOUBLE_EQ(first.spfm(), second.spfm());
}
