// Unit tests for the reliability model and the safety-mechanism catalogue
// (DECISIVE Step 3 inputs).
#include <gtest/gtest.h>

#include "decisive/base/error.hpp"
#include "decisive/core/reliability.hpp"
#include "decisive/core/safety_mechanism.hpp"

using namespace decisive;
using namespace decisive::core;

// ------------------------------------------------------------- reliability --

TEST(ComponentTypeMatching, CaseInsensitiveAndAliases) {
  EXPECT_TRUE(component_type_matches("Diode", "diode"));
  EXPECT_TRUE(component_type_matches("MC", "MCU"));
  EXPECT_TRUE(component_type_matches("Microcontroller", "mc"));
  EXPECT_TRUE(component_type_matches("micro controller", "MCU"));
  EXPECT_FALSE(component_type_matches("Diode", "Capacitor"));
  EXPECT_FALSE(component_type_matches("MC", "Diode"));
}

TEST(ReliabilityModel, AddAndFind) {
  ReliabilityModel model;
  model.add("Diode", 10, {{"Open", 0.3}, {"Short", 0.7}});
  const auto* entry = model.find("diode");
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->fit, 10.0);
  ASSERT_EQ(entry->modes.size(), 2u);
  EXPECT_EQ(model.find("Resistor"), nullptr);
}

TEST(ReliabilityModel, AddMergesIntoExistingAliasGroup) {
  ReliabilityModel model;
  model.add("MC", 300, {{"RAM Failure", 0.6}});
  model.add("MCU", 350, {{"Clock Failure", 0.4}});
  const auto* entry = model.find("Microcontroller");
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->fit, 350.0);  // latest wins
  EXPECT_EQ(entry->modes.size(), 2u);   // modes accumulate
}

TEST(ReliabilityModel, RejectsInvalidData) {
  ReliabilityModel model;
  EXPECT_THROW(model.add("X", -1, {}), AnalysisError);
  EXPECT_THROW(model.add("X", 10, {{"A", 1.5}}), AnalysisError);
  EXPECT_THROW(model.add("X", 10, {{"A", 0.7}, {"B", 0.7}}), AnalysisError);  // sum > 1
}

TEST(ReliabilityModel, FromTableWithContinuationRows) {
  const auto table = parse_csv(
      "Component,FIT,Failure_Mode,Distribution\n"
      "Diode,10,Open,30%\n"
      ",,Short,70%\n"
      "MC,300,RAM Failure,100%\n");
  const auto model = ReliabilityModel::from_table(table);
  ASSERT_EQ(model.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(model.find("Diode")->modes[1].distribution, 0.70);
  EXPECT_DOUBLE_EQ(model.find("MCU")->fit, 300.0);
}

TEST(ReliabilityModel, FromTableAcceptsFractionAndPercentForms) {
  const auto table = parse_csv(
      "Component,FIT,Failure_Mode,Distribution\n"
      "A,10,m1,0.3\n"
      "B,10,m2,30%\n"
      "C,10,m3,30\n");  // bare 30 means 30%
  const auto model = ReliabilityModel::from_table(table);
  for (const char* type : {"A", "B", "C"}) {
    EXPECT_DOUBLE_EQ(model.find(type)->modes[0].distribution, 0.30) << type;
  }
}

TEST(ReliabilityModel, FromTableErrors) {
  EXPECT_THROW(ReliabilityModel::from_table(parse_csv("Component,FIT\nDiode,10\n")),
               AnalysisError);  // missing columns
  EXPECT_THROW(ReliabilityModel::from_table(
                   parse_csv("Component,FIT,Failure_Mode,Distribution\n,,Open,30%\n")),
               AnalysisError);  // continuation before any component
  EXPECT_THROW(ReliabilityModel::from_table(
                   parse_csv("Component,FIT,Failure_Mode,Distribution\nDiode,,Open,30%\n")),
               AnalysisError);  // component without FIT
  EXPECT_THROW(ReliabilityModel::from_table(
                   parse_csv("Component,FIT,Failure_Mode,Distribution\nDiode,10,,30%\n")),
               AnalysisError);  // row without mode
}

TEST(ReliabilityModel, ToTableRoundTrip) {
  ReliabilityModel model;
  model.add("Diode", 10, {{"Open", 0.3}, {"Short", 0.7}});
  model.add("Inductor", 15, {{"Open", 0.3}});
  const auto back = ReliabilityModel::from_table(model.to_table());
  ASSERT_EQ(back.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(back.find("Diode")->fit, 10.0);
  EXPECT_DOUBLE_EQ(back.find("Diode")->modes[0].distribution, 0.30);
}

// -------------------------------------------------------- safety mechanisms --

TEST(SafetyMechanismModel, ApplicableAndBest) {
  SafetyMechanismModel model;
  model.add({"CPU", "Crash", "watchdog", 0.90, 1.5});
  model.add({"CPU", "Crash", "lockstep", 0.99, 8.0});
  model.add({"CPU", "RAM Failure", "ECC", 0.99, 2.0});
  EXPECT_EQ(model.applicable("cpu", "crash").size(), 2u);
  EXPECT_EQ(model.applicable("CPU", "Overheat").size(), 0u);
  const auto* best = model.best("CPU", "Crash");
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->name, "lockstep");
  EXPECT_EQ(model.best("GPU", "Crash"), nullptr);
}

TEST(SafetyMechanismModel, RejectsInvalidData) {
  SafetyMechanismModel model;
  EXPECT_THROW(model.add({"X", "m", "sm", 1.5, 1.0}), AnalysisError);
  EXPECT_THROW(model.add({"X", "m", "sm", 0.5, -1.0}), AnalysisError);
}

TEST(SafetyMechanismModel, FromTableParsesCoverageForms) {
  const auto table = parse_csv(
      "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\n"
      "MCU,RAM Failure,ECC,99%,2.0\n"
      "CPU,Crash,watchdog,0.9,1.5\n"
      "CPU,Crash,lockstep,95,\n");  // bare 95 = 95%, empty cost = 0
  const auto model = SafetyMechanismModel::from_table(table);
  ASSERT_EQ(model.entries().size(), 3u);
  EXPECT_DOUBLE_EQ(model.entries()[0].coverage, 0.99);
  EXPECT_DOUBLE_EQ(model.entries()[1].coverage, 0.90);
  EXPECT_DOUBLE_EQ(model.entries()[2].coverage, 0.95);
  EXPECT_DOUBLE_EQ(model.entries()[2].cost_hours, 0.0);
}

TEST(SafetyMechanismModel, FromTableWithoutCostColumn) {
  const auto table = parse_csv(
      "Component,Failure_Mode,Safety_Mechanism,Cov.\nMCU,RAM Failure,ECC,99%\n");
  const auto model = SafetyMechanismModel::from_table(table);
  EXPECT_DOUBLE_EQ(model.entries()[0].cost_hours, 0.0);
}

TEST(SafetyMechanismModel, MissingColumnThrows) {
  EXPECT_THROW(SafetyMechanismModel::from_table(
                   parse_csv("Component,Failure_Mode,Safety_Mechanism\nMCU,RAM,ECC\n")),
               AnalysisError);
}

TEST(SafetyMechanismModel, ToTableRoundTrip) {
  SafetyMechanismModel model;
  model.add({"MCU", "RAM Failure", "ECC", 0.99, 2.0});
  const auto back = SafetyMechanismModel::from_table(model.to_table());
  ASSERT_EQ(back.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(back.entries()[0].coverage, 0.99);
  EXPECT_DOUBLE_EQ(back.entries()[0].cost_hours, 2.0);
}
