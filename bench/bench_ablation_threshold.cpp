// Ablation: sensitivity of the fault-injection FMEA to the observable-
// deviation threshold (the one tunable the circuit engine has).
//
// The paper marks a failure mode safety-related when a sensor reading
// "differs by a threshold" but does not study the threshold itself. This
// harness sweeps it over the case study and shows the verdicts are stable
// across a wide plateau (5%-100%): only the diode-short verdict moves, at
// its physical deviation of ~15%, and nothing else changes until the
// threshold passes the next real deviation. A design choice, made visible.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

struct CaseStudy {
  sim::BuiltCircuit built;
  core::ReliabilityModel reliability;
};

CaseStudy load() {
  CaseStudy cs;
  cs.built = sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"));
  const auto workbook =
      drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
  cs.reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  return cs;
}

void print_sweep() {
  const CaseStudy cs = load();
  std::printf("== Ablation: FMEA deviation threshold sweep (case study) ==\n\n");
  TextTable table({"threshold", "safety-related rows", "SR components", "D1 Short verdict",
                   "SPFM"});
  for (const double threshold :
       {0.01, 0.02, 0.05, 0.10, 0.16, 0.20, 0.30, 0.50, 1.00, 2.00}) {
    core::CircuitFmeaOptions options;
    options.relative_threshold = threshold;
    options.safety_goal_observables = {"CS1", "MC1"};
    const auto fmea = core::analyze_circuit(cs.built, cs.reliability, nullptr, options);
    size_t sr_rows = 0;
    std::string d1_short = "-";
    for (const auto& row : fmea.rows) {
      if (row.safety_related) ++sr_rows;
      if (row.component == "D1" && row.failure_mode == "Short") {
        d1_short = row.safety_related ? "safety-related" : "benign";
      }
    }
    table.add_row({format_percent(threshold, 0), std::to_string(sr_rows),
                   std::to_string(fmea.safety_related_components().size()), d1_short,
                   format_percent(fmea.spfm())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the diode-short deviation is ~15%%, so its verdict flips\n"
      "between 10%% and 16%%; the paper's verdicts hold on the whole plateau\n"
      "from 16%% to beyond 50%% (hard opens deviate ~100%%, capacitor shorts\n"
      "< 1%% behind their ESR; below ~2%% the capacitor shorts start to\n"
      "register, above 100%% even hard opens stop registering).\n\n");
}

void BM_FmeaAtThreshold(benchmark::State& state) {
  const CaseStudy cs = load();
  core::CircuitFmeaOptions options;
  options.relative_threshold = static_cast<double>(state.range(0)) / 100.0;
  options.safety_goal_observables = {"CS1", "MC1"};
  for (auto _ : state) {
    const auto fmea = core::analyze_circuit(cs.built, cs.reliability, nullptr, options);
    benchmark::DoNotOptimize(fmea.spfm());
  }
}
BENCHMARK(BM_FmeaAtThreshold)->Arg(5)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  return bench_obs::run_benchmarks(argc, argv, "ablation_threshold");
}
