// Shared observability epilogue for the bench harnesses.
//
// Every bench main() funnels through bench_obs::run_benchmarks(): the
// instrumentation registry is reset so the snapshot covers only this
// process, google-benchmark runs exactly as before, and a machine-readable
// BENCH_<name>.json is written to the working directory. The engines are
// instrumented (see src/obs/), so simply running the benchmarks fills the
// registry with the counters and latency histograms the snapshot reports —
// wall-clock percentile estimates (p50/p90/p99) per engine span plus every
// counter the run touched.
//
// The snapshot is stamped with schema_version + kind + bench name so
// tools/bench_compare can reject a mismatched or stale file instead of
// silently diffing apples against oranges. A write failure normally only
// warns (a bench box with a read-only cwd should still print its timings),
// but with DECISIVE_BENCH_SNAPSHOT_REQUIRED set the process exits nonzero —
// CI runs with it set, so a missing snapshot can never skip the perf
// sentinel unnoticed.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "decisive/obs/registry.hpp"

namespace bench_obs {

inline constexpr int kBenchSnapshotSchemaVersion = 1;

inline int run_benchmarks(int argc, char** argv, const std::string& name) {
  decisive::obs::Registry::global().reset();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const bool required = std::getenv("DECISIVE_BENCH_SNAPSHOT_REQUIRED") != nullptr;
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "%s: cannot write %s\n", required ? "error" : "warning",
                 path.c_str());
    return required ? 1 : 0;
  }
  out << "{\"schema_version\":" << kBenchSnapshotSchemaVersion
      << ",\"kind\":\"bench-snapshot\",\"bench\":\"" << name
      << "\",\"metrics\":" << decisive::obs::Registry::global().to_json() << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "%s: failed writing %s\n", required ? "error" : "warning",
                 path.c_str());
    return required ? 1 : 0;
  }
  std::fprintf(stderr, "instrumentation snapshot written to %s\n", path.c_str());
  return 0;
}

}  // namespace bench_obs
