// Shared observability epilogue for the bench harnesses.
//
// Every bench main() funnels through bench_obs::run_benchmarks(): the
// instrumentation registry is reset so the snapshot covers only this
// process, google-benchmark runs exactly as before, and a machine-readable
// BENCH_<name>.json is written to the working directory. The engines are
// instrumented (see src/obs/), so simply running the benchmarks fills the
// registry with the counters and latency histograms the snapshot reports —
// wall-clock percentile estimates (p50/p90/p99) per engine span plus every
// counter the run touched.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "decisive/obs/registry.hpp"

namespace bench_obs {

inline int run_benchmarks(int argc, char** argv, const std::string& name) {
  decisive::obs::Registry::global().reset();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 0;
  }
  out << "{\"bench\":\"" << name
      << "\",\"metrics\":" << decisive::obs::Registry::global().to_json() << "}\n";
  std::fprintf(stderr, "instrumentation snapshot written to %s\n", path.c_str());
  return 0;
}

}  // namespace bench_obs
