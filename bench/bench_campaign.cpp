// Campaign-engine throughput: fault-injection FME(D)A on synthetic
// multi-fault circuits, serial vs parallel.
//
// Faults are independent re-simulations of circuit copies, so the campaign
// is embarrassingly parallel; the CampaignRunner executes tasks on a
// fixed-size thread pool with deterministic result ordering. This harness
// measures campaign throughput as a function of circuit size and job count,
// and verifies up front that the parallel FMEDA table is byte-identical to
// the serial one.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/core/campaign.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;

namespace {

/// A supply rail feeding `stages` RC/diode branches: each stage is a series
/// resistor into a diode-clamped tap with a voltage sensor. Every resistor
/// and diode is an FMEA candidate, so the campaign has 5*stages fault tasks
/// (Open/Short/Drift on resistors, Open/Short on diodes) over a dense MNA
/// system whose size grows with the circuit.
sim::BuiltCircuit make_rail(int stages) {
  sim::BuiltCircuit built;
  sim::Circuit& c = built.circuit;
  const int vin = c.node("vin");
  const int rail = c.node("rail");
  c.add_vsource("V1", vin, 0, 12.0);
  c.add_current_sensor("CS", vin, rail);
  built.observables.push_back("CS");
  for (int s = 0; s < stages; ++s) {
    const std::string id = std::to_string(s);
    const int tap = c.node("tap" + id);
    c.add_resistor("R" + id, rail, tap, 100.0 + s);
    c.add_diode("D" + id, tap, 0);
    c.add_resistor("RL" + id, tap, 0, 1000.0);
    c.add_voltage_sensor("VS" + id, tap, 0);
    built.observables.push_back("VS" + id);
    built.components.push_back({"R" + id, "Resistor", "R" + id});
    built.components.push_back({"D" + id, "Diode", "D" + id});
  }
  return built;
}

core::ReliabilityModel make_reliability() {
  core::ReliabilityModel reliability;
  reliability.add("Resistor", 5.0,
                  {{"Open", 0.5}, {"Short", 0.3}, {"Drift", 0.2}});
  reliability.add("Diode", 10.0, {{"Open", 0.3}, {"Short", 0.7}});
  return reliability;
}

core::CircuitFmeaOptions options_with_jobs(int jobs, bool batch = true, bool sparse = true) {
  core::CircuitFmeaOptions options;
  options.jobs = jobs;
  options.batch = batch;
  options.sparse = sparse;
  options.solver.sparse = sparse;
  return options;
}

void expect(bool condition, const char* what) {
  if (!condition) {
    std::printf("MISMATCH: %s\n", what);
    throw std::runtime_error(what);
  }
}

/// Determinism gate: the parallel campaign must emit a byte-identical FMEDA
/// table (CSV serialisation) to the serial one before any timing matters.
void verify_determinism() {
  const auto built = make_rail(12);
  const auto reliability = make_reliability();
  const auto serial =
      core::analyze_circuit(built, reliability, nullptr, options_with_jobs(1));
  const auto parallel =
      core::analyze_circuit(built, reliability, nullptr, options_with_jobs(8));
  expect(write_csv(serial.to_csv()) == write_csv(parallel.to_csv()),
         "parallel FMEDA table differs from serial");
  expect(serial.warnings == parallel.warnings,
         "parallel warnings differ from serial");
  expect(serial.rows.size() == 12u * 5u, "unexpected task count");
  std::printf("determinism verified: --jobs 1 and --jobs 8 byte-identical "
              "(%zu rows)\n\n",
              serial.rows.size());
}

void run_campaign(benchmark::State& state, int stages, int jobs, bool batch = true,
                  bool sparse = true) {
  const auto built = make_rail(stages);
  const auto reliability = make_reliability();
  const auto options = options_with_jobs(jobs, batch, sparse);
  size_t faults = 0;
  for (auto _ : state) {
    const auto fmea = core::analyze_circuit(built, reliability, nullptr, options);
    benchmark::DoNotOptimize(fmea.spfm());
    faults += fmea.rows.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(faults));
}

void BM_CampaignSerial(benchmark::State& state) {
  run_campaign(state, static_cast<int>(state.range(0)), 1);
}
BENCHMARK(BM_CampaignSerial)
    ->ArgName("stages")
    ->Arg(8)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

/// The classic one-solve-per-fault dense path (--no-batch --no-sparse), same
/// subjects as BM_CampaignSerial: the ratio of the two is the factor-once
/// speedup, and the ratio against BM_CampaignSparseSerial is the sparse
/// refactor-everywhere speedup.
void BM_CampaignNaiveSerial(benchmark::State& state) {
  run_campaign(state, static_cast<int>(state.range(0)), 1, /*batch=*/false,
               /*sparse=*/false);
}
BENCHMARK(BM_CampaignNaiveSerial)
    ->ArgName("stages")
    ->Arg(8)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

/// The sparse tier alone (--no-batch, sparse on): one symbolic analysis of
/// the nominal pattern, then numeric refactorisation per fault. Swept into
/// the sizes where the dense per-fault factor becomes the campaign cost.
void BM_CampaignSparseSerial(benchmark::State& state) {
  run_campaign(state, static_cast<int>(state.range(0)), 1, /*batch=*/false,
               /*sparse=*/true);
}
BENCHMARK(BM_CampaignSparseSerial)
    ->ArgName("stages")
    ->Arg(48)
    ->Arg(96)
    ->Arg(192)
    ->Unit(benchmark::kMillisecond);

void BM_CampaignParallel(benchmark::State& state) {
  run_campaign(state, static_cast<int>(state.range(0)), 0);  // 0 = all cores
}
BENCHMARK(BM_CampaignParallel)
    ->ArgName("stages")
    ->Arg(8)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_CampaignJobsSweep(benchmark::State& state) {
  run_campaign(state, 24, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_CampaignJobsSweep)
    ->ArgName("jobs")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Sharded execution: run every shard of an N-way partition (journaled, as a
/// distributed deployment would) and fold the per-shard journals back into
/// the campaign FMEDA. Measures the full split→run-all-shards→merge cycle,
/// so the shard-count sweep exposes the journal + merge overhead on top of
/// the plain campaign (shards=1 is the journaled baseline).
void run_sharded_campaign(benchmark::State& state, int stages, int shard_count) {
  const auto built = make_rail(stages);
  const auto reliability = make_reliability();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("decisive_bench_shards_" + std::to_string(shard_count));
  std::filesystem::create_directories(dir);
  size_t faults = 0;
  for (auto _ : state) {
    std::vector<std::string> journals;
    for (int shard = 0; shard < shard_count; ++shard) {
      auto options = options_with_jobs(1);
      options.execution.shard_index = shard;
      options.execution.shard_count = shard_count;
      options.execution.journal_path =
          (dir / ("shard" + std::to_string(shard) + ".journal")).string();
      journals.push_back(options.execution.journal_path);
      std::filesystem::remove(options.execution.journal_path);
      const auto part = core::analyze_circuit(built, reliability, nullptr, options);
      benchmark::DoNotOptimize(part.rows.size());
    }
    const auto merged = core::merge_campaign_journals(journals);
    benchmark::DoNotOptimize(merged.spfm());
    faults += merged.rows.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(faults));
  std::filesystem::remove_all(dir);
}

void BM_CampaignShardSweep(benchmark::State& state) {
  run_sharded_campaign(state, 24, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_CampaignShardSweep)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Shard-merge gate, mirroring verify_determinism(): the merged N-shard
/// FMEDA must be byte-identical to the unsharded campaign for every swept
/// shard count before the shard timings mean anything.
void verify_shard_merge() {
  const auto built = make_rail(12);
  const auto reliability = make_reliability();
  const auto whole =
      write_csv(core::analyze_circuit(built, reliability, nullptr, options_with_jobs(1))
                    .to_csv());
  const auto dir = std::filesystem::temp_directory_path() / "decisive_bench_shard_gate";
  for (const int shard_count : {1, 2, 4, 8}) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::vector<std::string> journals;
    for (int shard = 0; shard < shard_count; ++shard) {
      auto options = options_with_jobs(1);
      options.execution.shard_index = shard;
      options.execution.shard_count = shard_count;
      options.execution.journal_path =
          (dir / ("shard" + std::to_string(shard) + ".journal")).string();
      journals.push_back(options.execution.journal_path);
      (void)core::analyze_circuit(built, reliability, nullptr, options);
    }
    const auto merged = write_csv(core::merge_campaign_journals(journals).to_csv());
    expect(merged == whole, "merged shard FMEDA differs from unsharded");
  }
  std::filesystem::remove_all(dir);
  std::printf("shard merge verified: 1/2/4/8-way shard journals fold to the "
              "unsharded FMEDA byte-identically\n\n");
}

/// Batched-identity gate: the factor-once campaign must emit exactly the
/// naive campaign's bytes — CSV and warnings — serial and parallel, before
/// any batched timing means anything.
void verify_batched_identity() {
  const auto built = make_rail(12);
  const auto reliability = make_reliability();
  const auto naive =
      core::analyze_circuit(built, reliability, nullptr, options_with_jobs(1, false, false));
  for (const int jobs : {1, 8}) {
    const auto batched =
        core::analyze_circuit(built, reliability, nullptr, options_with_jobs(jobs, true));
    expect(write_csv(naive.to_csv()) == write_csv(batched.to_csv()),
           "batched FMEDA table differs from naive");
    expect(naive.warnings == batched.warnings, "batched warnings differ from naive");
  }
  std::printf("batched identity verified: factor-once campaign byte-identical "
              "to one-solve-per-fault (jobs 1 and 8)\n\n");
}

/// Sparse-identity gate: at every swept size below the throughput subject,
/// both the sparse tier alone (--no-batch) and the default batch+sparse
/// ladder must emit exactly the dense-only campaign's bytes, serial and
/// parallel. The 192-stage subject is covered inside the throughput gate,
/// which compares the very runs it times.
void verify_sparse_identity() {
  const auto reliability = make_reliability();
  for (const int stages : {12, 48, 96}) {
    const auto built = make_rail(stages);
    const auto dense = core::analyze_circuit(built, reliability, nullptr,
                                             options_with_jobs(1, false, false));
    const auto dense_csv = write_csv(dense.to_csv());
    for (const int jobs : {1, 8}) {
      const auto sparse_only = core::analyze_circuit(built, reliability, nullptr,
                                                     options_with_jobs(jobs, false, true));
      expect(dense_csv == write_csv(sparse_only.to_csv()),
             "sparse-tier FMEDA table differs from dense-only");
      expect(dense.warnings == sparse_only.warnings,
             "sparse-tier warnings differ from dense-only");
      const auto combined = core::analyze_circuit(built, reliability, nullptr,
                                                  options_with_jobs(jobs, true, true));
      expect(dense_csv == write_csv(combined.to_csv()),
             "batch+sparse FMEDA table differs from dense-only");
      expect(dense.warnings == combined.warnings,
             "batch+sparse warnings differ from dense-only");
    }
  }
  std::printf("sparse identity verified: sparse tier and batch+sparse ladder "
              "byte-identical to dense-only at 12/48/96 stages (jobs 1 and 8)\n\n");
}

/// Throughput gate (acceptance criterion): on the shared-pattern 192-stage
/// rail the single-thread batched campaign must run >= 10x faster than the
/// dense-only naive one, and the sparse tier alone (--no-batch) >= 3x. The
/// expensive dense run is timed once and shared by both ratios, and the
/// three timed runs double as the 192-stage byte-identity check.
void verify_throughput_gate() {
  const auto built = make_rail(192);
  const auto reliability = make_reliability();
  const auto naive_options = options_with_jobs(1, false, false);
  const auto sparse_options = options_with_jobs(1, false, true);
  const auto batched_options = options_with_jobs(1, true, true);
  // One untimed pass each to warm allocators and page in the code.
  (void)core::analyze_circuit(built, reliability, nullptr, batched_options);

  std::string csv[3];
  std::vector<std::string> warnings[3];
  const auto time_one = [&](const core::CircuitFmeaOptions& options, int slot) {
    const auto start = std::chrono::steady_clock::now();
    const auto fmea = core::analyze_circuit(built, reliability, nullptr, options);
    const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    benchmark::DoNotOptimize(fmea.spfm());
    csv[slot] = write_csv(fmea.to_csv());
    warnings[slot] = fmea.warnings;
    return elapsed.count();
  };
  const double naive_s = time_one(naive_options, 0);
  const double sparse_s = time_one(sparse_options, 1);
  const double batched_s = time_one(batched_options, 2);
  expect(csv[1] == csv[0] && warnings[1] == warnings[0],
         "192-stage sparse-tier FMEDA differs from dense-only");
  expect(csv[2] == csv[0] && warnings[2] == warnings[0],
         "192-stage batch+sparse FMEDA differs from dense-only");
  const double batched_speedup = naive_s / batched_s;
  const double sparse_speedup = naive_s / sparse_s;
  std::printf("throughput gate: naive %.3fs, sparse %.3fs (%.1fx, floor 3x), "
              "batched %.3fs (%.1fx, floor 10x) single-thread\n\n",
              naive_s, sparse_s, sparse_speedup, batched_s, batched_speedup);
  std::fflush(stdout);
  expect(batched_speedup >= 10.0, "batched campaign speedup below the 10x floor");
  expect(sparse_speedup >= 3.0, "sparse campaign speedup below the 3x floor");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("hardware concurrency: %u\n", std::thread::hardware_concurrency());
  verify_determinism();
  verify_shard_merge();
  verify_batched_identity();
  verify_sparse_identity();
  verify_throughput_gate();
  return bench_obs::run_benchmarks(argc, argv, "campaign");
}
