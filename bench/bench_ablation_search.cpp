// Ablation: greedy vs exhaustive-Pareto safety-mechanism deployment
// (DECISIVE Step 4b's automation — "search for the pareto front of viable
// solutions").
//
// Compares, on Systems A and B:
//   - the cost of the greedy ASIL-B deployment vs the cheapest point on the
//     exhaustive Pareto front that meets ASIL-B (greedy optimality gap);
//   - the runtime of both searches (why greedy is the default inside the
//     iteration loop and the front is an analyst-facing view).
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;

namespace {

struct Prepared {
  core::FmedaResult fmea;
  const char* name;
};

Prepared prepare(core::SyntheticSystem (*make)(), const char* name) {
  auto system = make();
  return {core::analyze_component(*system.model, system.system), name};
}

void print_comparison() {
  std::printf("== Ablation: greedy vs Pareto mechanism deployment ==\n\n");
  const auto catalogue = core::synthetic_sm_catalogue();
  TextTable table({"System", "open SR rows", "greedy cost (h)", "greedy SPFM",
                   "cheapest ASIL-B on front (h)", "front size", "gap"});
  for (const auto& subject : {prepare(&core::make_system_a, "A"),
                              prepare(&core::make_system_b, "B")}) {
    const auto greedy = core::greedy_reach_asil(subject.fmea, catalogue, "ASIL-B");
    const auto front = core::pareto_front(subject.fmea, catalogue);
    const core::Deployment* cheapest = nullptr;
    for (const auto& d : front) {
      if (d.spfm >= 0.90) {
        cheapest = &d;
        break;
      }
    }
    size_t open = 0;
    for (const auto& row : subject.fmea.rows) {
      if (row.safety_related && row.safety_mechanism.empty()) ++open;
    }
    const double greedy_cost = greedy ? greedy->total_cost_hours : -1.0;
    const double optimal_cost = cheapest ? cheapest->total_cost_hours : -1.0;
    table.add_row({subject.name, std::to_string(open),
                   format_number(greedy_cost, 1),
                   greedy ? format_percent(greedy->spfm) : "-",
                   format_number(optimal_cost, 1), std::to_string(front.size()),
                   greedy && cheapest
                       ? format_number(greedy_cost - optimal_cost, 1) + " h"
                       : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: greedy (gain-per-cost with upgrade moves and a trim pass)\n"
      "tracks the exhaustive optimum closely while scaling to designs where\n"
      "enumeration cannot; any remaining gap is the price of no lookahead.\n\n");
}

void BM_GreedySystemB(benchmark::State& state) {
  const auto subject = prepare(&core::make_system_b, "B");
  const auto catalogue = core::synthetic_sm_catalogue();
  for (auto _ : state) {
    const auto deployment = core::greedy_reach_asil(subject.fmea, catalogue, "ASIL-B");
    benchmark::DoNotOptimize(deployment.has_value());
  }
}
BENCHMARK(BM_GreedySystemB)->Unit(benchmark::kMicrosecond);

void BM_ParetoSystemB(benchmark::State& state) {
  const auto subject = prepare(&core::make_system_b, "B");
  const auto catalogue = core::synthetic_sm_catalogue();
  for (auto _ : state) {
    const auto front = core::pareto_front(subject.fmea, catalogue);
    benchmark::DoNotOptimize(front.size());
  }
}
BENCHMARK(BM_ParetoSystemB)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  return bench_obs::run_benchmarks(argc, argv, "ablation_search");
}
