// Ablation: safety-mechanism deployment search engines (DECISIVE Step 4b —
// "search for the pareto front of viable solutions").
//
// Three comparisons:
//   - DP Pareto engine vs the seed-era exhaustive enumerator (retained as
//     pareto_front_exhaustive) on Systems A and B: identical, oracle-verified
//     fronts, and the speedup of dominance-pruned label merging;
//   - greedy vs branch-and-bound optimal ASIL deployment cost (the greedy
//     optimality gap, now measured against a provable optimum);
//   - a make_scaled_architecture subject with hundreds of open rows, where
//     the exhaustive enumerator throws AnalysisError and the DP engine
//     completes (with a --jobs sweep over the parallel merge tree).
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;

namespace {

struct Prepared {
  core::FmedaResult fmea;
  const char* name;
};

Prepared prepare(core::SyntheticSystem (*make)(), const char* name) {
  auto system = make();
  return {core::analyze_component(*system.model, system.system), name};
}

core::FmedaResult prepare_scaled(size_t composites, size_t leaves) {
  auto system = core::make_scaled_architecture(composites, leaves);
  return core::analyze_component(*system.model, system.system);
}

size_t open_rows(const core::FmedaResult& fmea) {
  size_t open = 0;
  for (const auto& row : fmea.rows) {
    if (row.safety_related && row.safety_mechanism.empty()) ++open;
  }
  return open;
}

double seconds_of(const std::function<void()>& work) {
  const auto start = std::chrono::steady_clock::now();
  work();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Set-identity of two fronts on the reported (cost, SPFM) values.
bool fronts_equal(const std::vector<core::Deployment>& a,
                  const std::vector<core::Deployment>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i].total_cost_hours - b[i].total_cost_hours) > 1e-6) return false;
    if (std::abs(a[i].spfm - b[i].spfm) > 1e-9) return false;
  }
  return true;
}

/// Six graded options per open (type, mode): the "rich catalogue" regime
/// where the seed enumerator's O(prod choices) blows up even on ~8 rows.
core::SafetyMechanismModel dense_catalogue(const core::FmedaResult& fmea) {
  core::SafetyMechanismModel catalogue;
  std::vector<std::string> seen;
  for (const auto& row : fmea.rows) {
    if (!row.safety_related || !row.safety_mechanism.empty()) continue;
    const std::string key = row.component_type + "\x1f" + row.failure_mode;
    bool duplicate = false;
    for (const auto& s : seen) duplicate = duplicate || s == key;
    if (duplicate) continue;
    seen.push_back(key);
    for (int k = 0; k < 6; ++k) {
      catalogue.add({row.component_type, row.failure_mode,
                     "Option" + std::to_string(k), 0.55 + 0.07 * k,
                     0.5 + 0.9 * k});
    }
  }
  return catalogue;
}

void print_comparison() {
  std::printf("== Ablation: deployment-search engines (DP vs seed enumerator) ==\n\n");
  const auto shared = core::synthetic_sm_catalogue();
  TextTable table({"System", "open SR rows", "front", "seed enum (ms)", "DP (ms)",
                   "speedup", "fronts equal", "greedy cost (h)", "optimal cost (h)"});
  const auto subject_a = prepare(&core::make_system_a, "A");
  const auto subject_b = prepare(&core::make_system_b, "B");
  const auto dense = dense_catalogue(subject_b.fmea);
  const struct {
    const Prepared* subject;
    const core::SafetyMechanismModel* catalogue;
    const char* name;
  } cases[] = {{&subject_a, &shared, "A"},
               {&subject_b, &shared, "B"},
               {&subject_b, &dense, "B (dense catalogue)"}};
  for (const auto& c : cases) {
    const auto& fmea = c.subject->fmea;
    const auto& catalogue = *c.catalogue;
    std::vector<core::Deployment> oracle_front, dp_front;
    const double oracle_seconds = seconds_of(
        [&] { oracle_front = core::pareto_front_exhaustive(fmea, catalogue); });
    const double dp_seconds =
        seconds_of([&] { dp_front = core::pareto_front(fmea, catalogue); });
    const auto greedy = core::greedy_reach_asil(fmea, catalogue, "ASIL-B");
    const auto optimal = core::optimal_reach_asil(fmea, catalogue, "ASIL-B");
    table.add_row({c.name, std::to_string(open_rows(fmea)),
                   std::to_string(dp_front.size()), format_number(oracle_seconds * 1e3, 2),
                   format_number(dp_seconds * 1e3, 2),
                   format_number(oracle_seconds / dp_seconds, 1) + "x",
                   fronts_equal(oracle_front, dp_front) ? "yes" : "NO",
                   greedy ? format_number(greedy->total_cost_hours, 1) : "-",
                   optimal ? format_number(optimal->total_cost_hours, 1) : "-"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("== Scaling: make_scaled_architecture subject ==\n\n");
  const auto scaled = prepare_scaled(60, 5);
  const auto scaled_catalogue = core::scaled_sm_catalogue();
  std::printf("open SR rows: %zu\n", open_rows(scaled));
  try {
    core::pareto_front_exhaustive(scaled, scaled_catalogue);
    std::printf("seed enumerator: completed (unexpected at this scale)\n");
  } catch (const AnalysisError& error) {
    std::printf("seed enumerator: AnalysisError — %s\n", error.what());
  }
  for (const double epsilon : {0.0, 0.001, 0.01}) {
    std::vector<core::Deployment> front;
    core::ParetoOptions options;
    options.epsilon = epsilon;
    options.jobs = 0;  // all cores
    const double dp_seconds =
        seconds_of([&] { front = core::pareto_front(scaled, scaled_catalogue, options); });
    std::printf("DP engine (epsilon %s): front %zu in %s ms\n",
                format_number(epsilon, 3).c_str(), front.size(),
                format_number(dp_seconds * 1e3, 1).c_str());
  }
  std::printf(
      "\nreading: the DP engine reproduces the seed enumerator's front exactly\n"
      "(oracle-verified) orders of magnitude faster, and completes on scaled\n"
      "subjects where enumeration throws; branch-and-bound closes the greedy\n"
      "optimality gap with a provable minimum.\n\n");
}

void BM_SeedEnumeratorSystemB(benchmark::State& state) {
  const auto subject = prepare(&core::make_system_b, "B");
  const auto catalogue = core::synthetic_sm_catalogue();
  for (auto _ : state) {
    const auto front = core::pareto_front_exhaustive(subject.fmea, catalogue);
    benchmark::DoNotOptimize(front.size());
  }
}
BENCHMARK(BM_SeedEnumeratorSystemB)->Unit(benchmark::kMillisecond);

void BM_DpFrontSystemB(benchmark::State& state) {
  const auto subject = prepare(&core::make_system_b, "B");
  const auto catalogue = core::synthetic_sm_catalogue();
  for (auto _ : state) {
    const auto front = core::pareto_front(subject.fmea, catalogue);
    benchmark::DoNotOptimize(front.size());
  }
}
BENCHMARK(BM_DpFrontSystemB)->Unit(benchmark::kMicrosecond);

void BM_DpFrontScaled(benchmark::State& state) {
  const auto fmea = prepare_scaled(60, 5);
  const auto catalogue = core::scaled_sm_catalogue();
  core::ParetoOptions options;
  options.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto front = core::pareto_front(fmea, catalogue, options);
    benchmark::DoNotOptimize(front.size());
  }
}
BENCHMARK(BM_DpFrontScaled)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_GreedySystemB(benchmark::State& state) {
  const auto subject = prepare(&core::make_system_b, "B");
  const auto catalogue = core::synthetic_sm_catalogue();
  for (auto _ : state) {
    const auto deployment = core::greedy_reach_asil(subject.fmea, catalogue, "ASIL-B");
    benchmark::DoNotOptimize(deployment.has_value());
  }
}
BENCHMARK(BM_GreedySystemB)->Unit(benchmark::kMicrosecond);

void BM_OptimalSystemB(benchmark::State& state) {
  const auto subject = prepare(&core::make_system_b, "B");
  const auto catalogue = core::synthetic_sm_catalogue();
  for (auto _ : state) {
    const auto deployment = core::optimal_reach_asil(subject.fmea, catalogue, "ASIL-B");
    benchmark::DoNotOptimize(deployment.has_value());
  }
}
BENCHMARK(BM_OptimalSystemB)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  return bench_obs::run_benchmarks(argc, argv, "ablation_search");
}
