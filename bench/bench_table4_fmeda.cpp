// Reproduces paper Table IV: the generated FMEDA of the sensor power-supply
// case study (Section V), plus the SPFM narrative around it:
//
//   Component | FIT | SR  | FM          | Dist | SM  | Cov. | SPF rate
//   D1        | 10  | Yes | Open        | 30%  | No SM |    | 3 FIT
//   L1        | 15  | Yes | Open        | 30%  | No SM |    | 4.5 FIT
//   MC1       | 300 | Yes | RAM Failure | 100% | ECC | 99%  | 3 FIT
//
//   SPFM before mechanisms: 5.38%  (fails ASIL-B >= 90%)
//   SPFM with ECC on MC1:   96.77% (meets ASIL-B)
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

struct CaseStudy {
  sim::BuiltCircuit built;
  core::ReliabilityModel reliability;
  core::SafetyMechanismModel sm_model;
  core::CircuitFmeaOptions options;
};

CaseStudy load() {
  CaseStudy cs;
  cs.built = sim::build_circuit(drivers::parse_mdl_file(kAssets + "/power_supply.mdl"));
  const auto workbook =
      drivers::DriverRegistry::global().open(kAssets + "/reliability_workbook");
  cs.reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  cs.sm_model = core::SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");
  cs.options.safety_goal_observables = {"CS1", "MC1"};
  return cs;
}

void expect(bool condition, const char* what) {
  if (!condition) {
    std::printf("MISMATCH: %s\n", what);
    throw std::runtime_error(what);
  }
}

void print_table() {
  const CaseStudy cs = load();

  const auto fmea = core::analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
  const auto fmeda = core::analyze_circuit(cs.built, cs.reliability, &cs.sm_model, cs.options);

  std::printf("== Table IV: generated FMEDA of the sensor power supply ==\n\n");
  std::printf("%s\n", fmeda.to_text().render().c_str());

  const double spfm_before = fmea.spfm();
  const double spfm_after = fmeda.spfm();
  std::printf("SPFM before safety mechanisms: %6.2f%%   (paper:  5.38%%)\n",
              spfm_before * 100.0);
  std::printf("SPFM with ECC deployed on MC1: %6.2f%%   (paper: 96.77%%)\n",
              spfm_after * 100.0);
  std::printf("achieved integrity level:      %s (target ASIL-B)\n\n",
              core::achieved_asil(spfm_after).c_str());

  // Verify the exact paper values.
  expect(std::abs(spfm_before - 0.0538) < 5e-4, "SPFM before != 5.38%");
  expect(std::abs(spfm_after - 0.9677) < 5e-4, "SPFM after != 96.77%");
  const auto sr = fmeda.safety_related_components();
  expect(sr == std::vector<std::string>({"D1", "L1", "MC1"}),
         "safety-related set != {D1, L1, MC1}");
  for (const auto* row : fmeda.rows_of("D1")) {
    if (row->failure_mode == "Open") expect(row->single_point_fit() == 3.0, "D1 != 3 FIT");
    if (row->failure_mode == "Short") expect(!row->safety_related, "D1 Short must be No");
  }
  for (const auto* row : fmeda.rows_of("L1")) {
    if (row->failure_mode == "Open") expect(row->single_point_fit() == 4.5, "L1 != 4.5 FIT");
  }
  for (const auto* row : fmeda.rows_of("MC1")) {
    expect(std::abs(row->single_point_fit() - 3.0) < 1e-9, "MC1 != 3 FIT");
    expect(row->safety_mechanism == "ECC", "MC1 mechanism != ECC");
  }
  std::printf("all Table IV values verified exactly\n\n");
}

void BM_AutomatedFmea(benchmark::State& state) {
  const CaseStudy cs = load();
  for (auto _ : state) {
    const auto fmea = core::analyze_circuit(cs.built, cs.reliability, nullptr, cs.options);
    benchmark::DoNotOptimize(fmea.spfm());
  }
}
BENCHMARK(BM_AutomatedFmea)->Unit(benchmark::kMillisecond);

void BM_AutomatedFmeda(benchmark::State& state) {
  const CaseStudy cs = load();
  for (auto _ : state) {
    const auto fmeda =
        core::analyze_circuit(cs.built, cs.reliability, &cs.sm_model, cs.options);
    benchmark::DoNotOptimize(fmeda.spfm());
  }
}
BENCHMARK(BM_AutomatedFmeda)->Unit(benchmark::kMillisecond);

void BM_PipelineFromDisk(benchmark::State& state) {
  for (auto _ : state) {
    const CaseStudy cs = load();
    const auto fmeda =
        core::analyze_circuit(cs.built, cs.reliability, &cs.sm_model, cs.options);
    benchmark::DoNotOptimize(fmeda.spfm());
  }
}
BENCHMARK(BM_PipelineFromDisk)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench_obs::run_benchmarks(argc, argv, "table4_fmeda");
}
