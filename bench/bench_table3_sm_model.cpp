// Reproduces paper Table III: the example safety-mechanism model.
//
//   Component | Failure_Mode | Safety_Mechanism | Cov. | Cost(hrs)
//   MCU       | RAM Failure  | ECC              | 99%  | 2.0
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>
#include <stdexcept>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/drivers/datasource.hpp"

using namespace decisive;

namespace {

const std::string kWorkbook = std::string(DECISIVE_ASSETS_DIR) + "/reliability_workbook";

core::SafetyMechanismModel load() {
  const auto workbook = drivers::DriverRegistry::global().open(kWorkbook);
  return core::SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");
}

void print_table() {
  const auto model = load();
  std::printf("== Table III: example safety mechanism model ==\n\n");
  TextTable table({"Component", "Failure_Mode", "Safety_Mechanism", "Cov.", "Cost(hrs)"});
  for (const auto& entry : model.entries()) {
    table.add_row({entry.component_type, entry.failure_mode, entry.name,
                   format_percent(entry.coverage, 0), format_number(entry.cost_hours, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // Verify: ECC covers MCU RAM failures with 99% at 2.0h, found through the
  // MC alias as well.
  const auto* ecc = model.best("MC", "ram failure");
  if (ecc == nullptr || ecc->name != "ECC" || ecc->coverage != 0.99 ||
      ecc->cost_hours != 2.0) {
    throw std::runtime_error("table III mismatch");
  }
  std::printf("Table III verified: best(MC, RAM Failure) = ECC, 99%%, 2.0 h\n\n");
}

void BM_LoadSmModel(benchmark::State& state) {
  for (auto _ : state) {
    const auto model = load();
    benchmark::DoNotOptimize(model.entries().size());
  }
}
BENCHMARK(BM_LoadSmModel);

void BM_SmLookup(benchmark::State& state) {
  const auto model = load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.best("MCU", "RAM Failure"));
  }
}
BENCHMARK(BM_SmLookup);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench_obs::run_benchmarks(argc, argv, "table3_sm_model");
}
