// Reproduces paper Table VI: the scalability experiment.
//
//   Model | No. of Model Elements | Time taken for Evaluation (sec)
//   Set0  | 109                   | 0.1
//   Set1  | 269                   | 0.2
//   Set2  | 1369                  | 0.8
//   Set3  | 5689                  | 4.1
//   Set4  | 5689000               | 48.3
//   Set5  | 568990000             | N/A   (memory overflow)
//
// The full-load repository reproduces EMF's load-everything behaviour: Set5
// is refused because the projected resident model exceeds the memory budget
// — the paper's "SAME would not load Set5 due to memory overflow". The
// indexed (Hawk-style, refs [23][26]) back-end is then shown as the fix the
// paper proposes as future work: aggregate-only columns stream any model
// size in O(1) memory.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>
#include <string>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;

namespace {

constexpr std::uint64_t kSets[] = {109, 269, 1369, 5689, 5689000, 568990000};
constexpr size_t kMemoryBudget = size_t{4} * 1024 * 1024 * 1024;  // 4 GiB

// The indexed back-end still has to stream every element; cap the
// element count so the bench stays snappy (the asymptotics are the point).
constexpr std::uint64_t kIndexedCap = 20'000'000;

void print_table() {
  std::printf("== Table VI: scalability of model evaluation ==\n");
  std::printf("   memory budget for the full-load (EMF-style) repository: %zu MiB\n\n",
              kMemoryBudget / (1024 * 1024));

  TextTable table({"Model", "No. of Model Elements", "Full-load eval (sec)",
                   "Indexed eval (sec)", "Paper (sec)"});
  const char* paper[] = {"0.1", "0.2", "0.8", "4.1", "48.3", "N/A"};

  for (size_t i = 0; i < std::size(kSets); ++i) {
    const std::uint64_t n = kSets[i];
    const auto full = core::evaluate_full_load(n, kMemoryBudget);
    std::string full_text;
    if (full.loaded) {
      full_text = format_number(full.load_seconds + full.query_seconds, 3);
    } else {
      full_text = "N/A (memory overflow)";
    }

    std::string indexed_text;
    if (n <= kIndexedCap) {
      const auto indexed = core::evaluate_indexed(n);
      indexed_text = format_number(indexed.load_seconds + indexed.query_seconds, 3);
      if (full.loaded && (indexed.safety_related != full.safety_related ||
                          indexed.total_fit != full.total_fit)) {
        indexed_text += " (QUERY MISMATCH)";
      }
    } else {
      indexed_text = "streams in O(1) memory (skipped: > " +
                     std::to_string(kIndexedCap) + " elems keeps the bench short)";
    }

    table.add_row({"Set" + std::to_string(i), std::to_string(n), full_text, indexed_text,
                   paper[i]});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: near-linear growth until the full-load memory wall at Set5;\n"
      "the indexed back-end removes the wall (the paper's proposed fix).\n\n");
}

void BM_FullLoadEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const auto run = core::evaluate_full_load(n, kMemoryBudget);
    benchmark::DoNotOptimize(run.total_fit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FullLoadEvaluate)->Arg(109)->Arg(269)->Arg(1369)->Arg(5689)->Arg(568900)
    ->Unit(benchmark::kMillisecond);

void BM_IndexedEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const auto run = core::evaluate_indexed(n);
    benchmark::DoNotOptimize(run.total_fit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_IndexedEvaluate)->Arg(109)->Arg(269)->Arg(1369)->Arg(5689)->Arg(568900)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench_obs::run_benchmarks(argc, argv, "table6_scalability");
}
