// Reproduces paper Table I: FMEDA on a Phase-Locked Loop.
//
//   Char.           | FM               | Impact | Dist  | SMs                | Cov.
//   safety-critical | lower frequency  | DVF    | 40.1% | time-out watchdog  | 70%
//   safety-critical | higher frequency | IVF    | 28.7% | N/A                | 0%
//   safety-critical | jitter           | DVF    | 31.2% | dual-core lockstep | 99%
//
// The PLL is modelled in SSAM (failure modes with analyst-assigned effect
// classifications, safety mechanisms with diagnostic coverage); the FMEDA
// rows and residual single-point rates are then computed by the library.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/fmeda.hpp"
#include "decisive/ssam/model.hpp"

using namespace decisive;

namespace {

struct PllModel {
  ssam::SsamModel model;
  ssam::ObjectId pll = model::kNullObject;
};

PllModel build_pll() {
  PllModel out;
  auto& m = out.model;
  const auto pkg = m.create_component_package("pll-demo");
  out.pll = m.create_component(pkg, "PLL");
  m.obj(out.pll).set_real("fit", 100.0);
  m.obj(out.pll).set_string("componentType", "hardware");
  m.obj(out.pll).set_bool("safetyRelated", true);

  const auto fm_low = m.add_failure_mode(out.pll, "lower frequency", 0.401, "degraded");
  const auto fm_high = m.add_failure_mode(out.pll, "higher frequency", 0.287, "degraded");
  const auto fm_jit = m.add_failure_mode(out.pll, "jitter", 0.312, "degraded");

  // Analyst-assigned effect classifications (Table I's Impact column).
  auto attach_effect = [&](ssam::ObjectId fm, const char* impact) {
    auto& fe = m.repo().create(m.meta().get(ssam::cls::FailureEffect));
    fe.set_string("name", "effect");
    fe.set_string("classification", impact);
    m.obj(fm).add_ref("effects", fe.id());
  };
  attach_effect(fm_low, "DVF");
  attach_effect(fm_high, "IVF");
  attach_effect(fm_jit, "DVF");

  m.add_safety_mechanism(out.pll, "time-out watchdog", 0.70, 1.5, fm_low);
  m.add_safety_mechanism(out.pll, "dual-core lockstep", 0.99, 8.0, fm_jit);
  return out;
}

/// Derives the FMEDA rows from the SSAM PLL model.
core::FmedaResult pll_fmeda(const PllModel& pll) {
  core::FmedaResult result;
  result.system = "PLL";
  const auto& m = pll.model;
  const double fit = m.obj(pll.pll).get_real("fit");
  for (const auto fm : m.obj(pll.pll).refs("failureModes")) {
    core::FmedaRow row;
    row.component = "PLL";
    row.component_type = "PLL";
    row.fit = fit;
    row.failure_mode = m.obj(fm).get_string("name");
    row.distribution = m.obj(fm).get_real("distribution");
    row.safety_related = true;
    for (const auto fe : m.obj(fm).refs("effects")) {
      const std::string impact = m.obj(fe).get_string("classification");
      row.effect = impact == "DVF" ? core::EffectClass::DVF : core::EffectClass::IVF;
    }
    for (const auto sm : m.obj(pll.pll).refs("safetyMechanisms")) {
      const auto& covers = m.obj(sm).refs("covers");
      if (std::find(covers.begin(), covers.end(), fm) != covers.end()) {
        row.safety_mechanism = m.obj(sm).get_string("name");
        row.sm_coverage = m.obj(sm).get_real("coverage");
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

void print_table() {
  const PllModel pll = build_pll();
  const auto fmeda = pll_fmeda(pll);

  std::printf("== Table I: FMEDA on Phase Locked Loop (PLL) ==\n");
  std::printf("   (DVF/IVF: directly/indirectly violate safety goal)\n\n");
  TextTable table({"Char.", "FM", "Impact", "Dist", "SMs", "Cov.", "Residual FIT"});
  for (const auto& row : fmeda.rows) {
    table.add_row({"safety-critical", row.failure_mode,
                   std::string(to_string(row.effect)), format_percent(row.distribution, 1),
                   row.safety_mechanism.empty() ? "N/A" : row.safety_mechanism,
                   format_percent(row.sm_coverage, 0),
                   format_number(row.single_point_fit(), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper Table I:    dist 40.1%% / 28.7%% / 31.2%%, coverage 70%% / 0%% / 99%%\n");
  std::printf("PLL SPFM with these mechanisms: %s\n\n",
              format_percent(fmeda.spfm()).c_str());
}

void BM_BuildPllModel(benchmark::State& state) {
  for (auto _ : state) {
    const PllModel pll = build_pll();
    benchmark::DoNotOptimize(pll.pll);
  }
}
BENCHMARK(BM_BuildPllModel);

void BM_PllFmeda(benchmark::State& state) {
  const PllModel pll = build_pll();
  for (auto _ : state) {
    const auto fmeda = pll_fmeda(pll);
    benchmark::DoNotOptimize(fmeda.rows.size());
  }
}
BENCHMARK(BM_PllFmeda);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench_obs::run_benchmarks(argc, argv, "table1_pll");
}
