// Incremental analysis engine: the DECISIVE edit→re-analyze loop, measured.
//
// The workload is the iteration the paper's Section III process implies: an
// engineer holds one model open and alternates small edits with full
// re-analyses. The harness verifies up front that (a) a scripted 100-edit
// loop over one resident session stays byte-identical to a cold run at
// every step, and (b) a single-component edit on the Table-VI-scale subject
// replays >90% of the units from the fingerprint cache; then it times the
// cold run, the incremental re-analysis after one edit, the no-op
// re-analysis (subtree short-circuit), and the fingerprint pass itself.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "decisive/base/csv.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/session/fingerprint.hpp"
#include "decisive/session/incremental.hpp"

using namespace decisive;
using ssam::ObjectId;

namespace {

constexpr size_t kComposites = 40;
constexpr size_t kLeaves = 16;

std::string csv_of(const core::FmedaResult& result) { return write_csv(result.to_csv()); }

/// The acceptance gates: run them before timing anything so the numbers
/// below are only ever printed for a correct engine.
void verify_edit_loop() {
  auto sys = core::make_scaled_architecture(kComposites, kLeaves);
  session::AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();

  size_t total_hits = 0;
  size_t total_units = 0;
  for (int step = 0; step < 100; ++step) {
    const std::string name =
        "Unit" + std::to_string(step % kComposites) + ".Leaf" + std::to_string(step % kLeaves);
    const ObjectId leaf = sys.model->find_by_name(ssam::cls::Component, name);
    sys.model->obj(leaf).set_real("fit", 10.0 + step);
    session.note_edit(leaf);
    const std::string incremental = csv_of(session.reanalyze());
    if (incremental != csv_of(session.cold_analyze())) {
      throw std::runtime_error("incremental FMEDA diverged from cold run at step " +
                               std::to_string(step));
    }
    total_hits += session.last_stats().cache_hits;
    total_units += session.last_stats().units;
  }
  const double hit_rate = static_cast<double>(total_hits) / static_cast<double>(total_units);
  std::printf("verified: 100-edit loop byte-identical to cold runs, hit rate %.1f%%\n",
              hit_rate * 100.0);
  if (hit_rate <= 0.9) throw std::runtime_error("cache hit rate regressed below 90%");
}

void BM_ColdAnalysis(benchmark::State& state) {
  auto sys = core::make_scaled_architecture(kComposites, static_cast<size_t>(state.range(0)));
  session::AnalysisSession session(*sys.model, sys.system);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.cold_analyze());
  }
}

void BM_IncrementalAfterOneEdit(benchmark::State& state) {
  auto sys = core::make_scaled_architecture(kComposites, static_cast<size_t>(state.range(0)));
  session::AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();
  double fit = 100.0;
  size_t hits = 0;
  size_t units = 0;
  const ObjectId leaf = sys.model->find_by_name(ssam::cls::Component, "Unit20.Leaf3");
  for (auto _ : state) {
    state.PauseTiming();
    sys.model->obj(leaf).set_real("fit", fit);
    fit += 1.0;
    session.note_edit(leaf);
    state.ResumeTiming();
    benchmark::DoNotOptimize(session.reanalyze());
    hits += session.last_stats().cache_hits;
    units += session.last_stats().units;
  }
  state.counters["hit_rate"] =
      units == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(units);
}

void BM_ReanalyzeUnchanged(benchmark::State& state) {
  auto sys = core::make_scaled_architecture(kComposites, static_cast<size_t>(state.range(0)));
  session::AnalysisSession session(*sys.model, sys.system);
  session.reanalyze();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.reanalyze());
  }
}

void BM_FingerprintPass(benchmark::State& state) {
  auto sys = core::make_scaled_architecture(kComposites, static_cast<size_t>(state.range(0)));
  const core::GraphFmeaOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session::fingerprint_model(*sys.model, sys.system, options));
  }
}

// The argument is leaves-per-composite: 16 matches the Table-VI subject;
// 96 makes each unit's single-point analysis heavy enough to dominate the
// shared serial passes, which is where skipping 90% of the units pays off.
BENCHMARK(BM_ColdAnalysis)->Arg(16)->Arg(96)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalAfterOneEdit)->Arg(16)->Arg(96)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReanalyzeUnchanged)->Arg(16)->Arg(96)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FingerprintPass)->Arg(16)->Arg(96)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  verify_edit_loop();
  return bench_obs::run_benchmarks(argc, argv, "incremental");
}
