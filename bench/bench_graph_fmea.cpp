// Graph-FMEA engine throughput: dominator-based single-point analysis vs
// brute-force path enumeration on SSAM architectures.
//
// The dense case is the point: a fully-connected layered component has
// width^layers simple paths, so the old enumeration engine threw a
// path-explosion error where the dominator engine answers in one
// reachability + dominator-tree pass. This harness verifies up front that
// (a) enumeration really does explode on the dense model while the new
// engine completes, and (b) the FMEDA table is byte-identical for any
// --jobs value; then it times decision latency on sparse models where both
// engines work, the dense model only the new engine survives, and the
// serial-vs-parallel recursive walk.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/ssam/graph.hpp"

using namespace decisive;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

struct Architecture {
  SsamModel model;
  ObjectId system = model::kNullObject;
};

/// A layered architecture: `layers` layers of `width` leaves each. With
/// `dense` wiring every leaf feeds every leaf of the next layer
/// (width^layers simple paths); otherwise each leaf feeds exactly one
/// (width paths in total).
std::unique_ptr<Architecture> make_layered(int layers, int width, bool dense) {
  auto arch = std::make_unique<Architecture>();
  SsamModel& m = arch->model;
  const auto pkg = m.create_component_package("bench");
  arch->system = m.create_component(pkg, "system");
  const auto sys_in = m.add_io_node(arch->system, "in", "in");
  const auto sys_out = m.add_io_node(arch->system, "out", "out");

  std::vector<std::vector<std::pair<ObjectId, ObjectId>>> grid;  // (in, out) per leaf
  for (int layer = 0; layer < layers; ++layer) {
    std::vector<std::pair<ObjectId, ObjectId>> row;
    for (int i = 0; i < width; ++i) {
      const std::string name = "L" + std::to_string(layer) + "C" + std::to_string(i);
      const auto comp = m.create_component(arch->system, name);
      m.obj(comp).set_real("fit", 10.0 + i);
      const auto in = m.add_io_node(comp, name + ".in", "in");
      const auto out = m.add_io_node(comp, name + ".out", "out");
      m.add_failure_mode(comp, "Open", 1.0, "lossOfFunction");
      row.emplace_back(in, out);
    }
    grid.push_back(std::move(row));
  }
  for (const auto& [in, out] : grid.front()) m.connect(arch->system, sys_in, in);
  for (size_t layer = 0; layer + 1 < grid.size(); ++layer) {
    for (size_t i = 0; i < grid[layer].size(); ++i) {
      if (dense) {
        for (const auto& [to_in, to_out] : grid[layer + 1]) {
          m.connect(arch->system, grid[layer][i].second, to_in);
        }
      } else {
        m.connect(arch->system, grid[layer][i].second, grid[layer + 1][i].first);
      }
    }
  }
  for (const auto& [in, out] : grid.back()) m.connect(arch->system, out, sys_out);
  return arch;
}

/// A system of `composites` serial composite subcomponents, each wrapping a
/// serial chain of `inner` leaves — gives the recursive walk `composites + 1`
/// independent units to analyse, so the thread pool has real work.
std::unique_ptr<Architecture> make_nested(int composites, int inner) {
  auto arch = std::make_unique<Architecture>();
  SsamModel& m = arch->model;
  const auto pkg = m.create_component_package("bench");
  arch->system = m.create_component(pkg, "system");
  const auto sys_in = m.add_io_node(arch->system, "in", "in");
  const auto sys_out = m.add_io_node(arch->system, "out", "out");
  ObjectId previous = sys_in;
  for (int c = 0; c < composites; ++c) {
    const std::string name = "unit" + std::to_string(c);
    const auto comp = m.create_component(arch->system, name);
    m.obj(comp).set_real("fit", 20.0);
    const auto in = m.add_io_node(comp, name + ".in", "in");
    const auto out = m.add_io_node(comp, name + ".out", "out");
    m.add_failure_mode(comp, "Open", 0.5, "lossOfFunction");
    m.connect(arch->system, previous, in);
    previous = out;
    ObjectId inner_previous = in;
    for (int i = 0; i < inner; ++i) {
      const std::string leaf_name = name + ".leaf" + std::to_string(i);
      const auto leaf = m.create_component(comp, leaf_name);
      m.obj(leaf).set_real("fit", 5.0);
      const auto leaf_in = m.add_io_node(leaf, leaf_name + ".in", "in");
      const auto leaf_out = m.add_io_node(leaf, leaf_name + ".out", "out");
      m.add_failure_mode(leaf, "Open", 1.0, "lossOfFunction");
      m.connect(comp, inner_previous, leaf_in);
      inner_previous = leaf_out;
    }
    m.connect(comp, inner_previous, out);
  }
  m.connect(arch->system, previous, sys_out);
  return arch;
}

std::vector<ObjectId> subcomponents_of(const ssam::ComponentGraph& graph) {
  std::set<ObjectId> unique;
  for (const auto& [node, owner] : graph.owner) unique.insert(owner);
  return {unique.begin(), unique.end()};
}

core::GraphFmeaOptions options_with_jobs(int jobs) {
  core::GraphFmeaOptions options;
  options.jobs = jobs;
  return options;
}

void expect(bool condition, const char* what) {
  if (!condition) {
    std::printf("MISMATCH: %s\n", what);
    throw std::runtime_error(what);
  }
}

/// Gate 1: the dense component really is out of reach of enumeration
/// (6^8 ~ 1.7M paths against a 100k guard) and the dominator engine
/// completes on it.
void verify_dense_case() {
  const auto arch = make_layered(/*layers=*/8, /*width=*/6, /*dense=*/true);
  const auto graph = ssam::build_graph(arch->model, arch->system);
  bool exploded = false;
  try {
    ssam::enumerate_paths(graph);
  } catch (const AnalysisError&) {
    exploded = true;
  }
  expect(exploded, "enumeration was expected to throw on the dense model");
  const ssam::SinglePointAnalysis analysis(graph);
  expect(analysis.has_path(), "dense model must have input->output paths");
  const auto result = core::analyze_component(arch->model, arch->system);
  expect(result.rows.size() == 48u, "dense model row count");
  std::printf("dense case: 6^8 paths abort enumeration; dominator engine "
              "analysed %zu rows over %zu live nodes\n",
              result.rows.size(), analysis.live_node_count());
}

/// Gate 2: the FMEDA table of the recursive walk is byte-identical for any
/// job count.
void verify_determinism() {
  const auto arch = make_nested(/*composites=*/8, /*inner=*/6);
  const auto serial =
      core::analyze_component(arch->model, arch->system, options_with_jobs(1));
  const auto parallel =
      core::analyze_component(arch->model, arch->system, options_with_jobs(8));
  expect(write_csv(serial.to_csv()) == write_csv(parallel.to_csv()),
         "parallel FMEDA table differs from serial");
  expect(serial.warnings == parallel.warnings,
         "parallel warnings differ from serial");
  std::printf("determinism verified: --jobs 1 and --jobs 8 byte-identical "
              "(%zu rows)\n\n",
              serial.rows.size());
}

/// Decision latency on graphs both engines can handle (width-2 dense
/// layering: 2^layers paths, still under the enumeration guard). Old engine:
/// materialise every path, then answer per subcomponent with on_all_paths.
void BM_DecideByEnumeration(benchmark::State& state) {
  const auto arch =
      make_layered(static_cast<int>(state.range(0)), 2, /*dense=*/true);
  const auto graph = ssam::build_graph(arch->model, arch->system);
  const auto subs = subcomponents_of(graph);
  size_t decisions = 0;
  for (auto _ : state) {
    const auto paths = ssam::enumerate_paths(graph);
    for (const ObjectId sub : subs) {
      benchmark::DoNotOptimize(ssam::on_all_paths(graph, paths, sub));
      ++decisions;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(decisions));
}
BENCHMARK(BM_DecideByEnumeration)
    ->ArgName("layers")
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

/// Same graphs, new engine: one pass answers every subcomponent without
/// ever materialising a path.
void BM_DecideByDominators(benchmark::State& state) {
  const auto arch =
      make_layered(static_cast<int>(state.range(0)), 2, /*dense=*/true);
  const auto graph = ssam::build_graph(arch->model, arch->system);
  const auto subs = subcomponents_of(graph);
  size_t decisions = 0;
  for (auto _ : state) {
    const ssam::SinglePointAnalysis analysis(graph);
    for (const ObjectId sub : subs) {
      benchmark::DoNotOptimize(analysis.is_single_point(sub));
      ++decisions;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(decisions));
}
BENCHMARK(BM_DecideByDominators)
    ->ArgName("layers")
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

/// The case that used to be impossible: full FMEA of the dense component.
void BM_DenseComponentFmea(benchmark::State& state) {
  auto arch = make_layered(/*layers=*/8, static_cast<int>(state.range(0)),
                           /*dense=*/true);
  for (auto _ : state) {
    const auto result = core::analyze_component(arch->model, arch->system);
    benchmark::DoNotOptimize(result.spfm());
  }
}
BENCHMARK(BM_DenseComponentFmea)
    ->ArgName("width")
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Recursive walk throughput: serial vs all-cores on a many-unit model.
void BM_RecursiveWalkJobs(benchmark::State& state) {
  auto arch = make_nested(/*composites=*/24, /*inner=*/12);
  const auto options = options_with_jobs(static_cast<int>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    const auto result =
        core::analyze_component(arch->model, arch->system, options);
    benchmark::DoNotOptimize(result.spfm());
    rows += result.rows.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_RecursiveWalkJobs)
    ->ArgName("jobs")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)  // all cores
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("hardware concurrency: %u\n", std::thread::hardware_concurrency());
  verify_dense_case();
  verify_determinism();
  return bench_obs::run_benchmarks(argc, argv, "graph_fmea");
}
