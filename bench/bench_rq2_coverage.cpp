// Reproduces the paper's RQ2 (coverage) result:
//
//   - SAME covers the Simscape-Foundation-style analogue block library; for
//     uncovered elements the "annotated subsystem" workaround applies
//     ("we create subsystems in Simulink and annotate them to be the
//     desired elements") — with it, 100% of the evaluation subjects are
//     covered;
//   - SSAM maps conceptual, hardware and software blocks of both Systems A
//     and B (100% mapping coverage).
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>
#include <map>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/transform/simulink.hpp"

using namespace decisive;

namespace {

const std::string kAssets = DECISIVE_ASSETS_DIR;

void print_block_library_coverage() {
  std::printf("-- Simulink-substitute block library --\n");
  std::printf("natively simulatable block types:");
  for (const auto type : sim::supported_block_types()) {
    std::printf(" %.*s", static_cast<int>(type.size()), type.data());
  }
  std::printf("\n\n");

  // Case-study model: every block either simulates natively or is known
  // simulation infrastructure.
  const auto mdl = drivers::parse_mdl_file(kAssets + "/power_supply.mdl");
  size_t native = 0;
  size_t infra = 0;
  for (const auto& block : mdl.root.blocks) {
    if (sim::block_type_infrastructure(block.type)) ++infra;
    else if (sim::block_type_supported(block.type)) ++native;
  }
  std::printf("case-study model: %zu/%zu blocks native, %zu infrastructure -> %s coverage\n",
              native, mdl.root.blocks.size(), infra,
              native + infra == mdl.root.blocks.size() ? "100%" : "INCOMPLETE");

  // The workaround: an uncovered element type ("ComplexMCU") modelled as an
  // annotated subsystem builds and simulates; without the annotation it is
  // rejected with an actionable error.
  const char* workaround_mdl = R"(
    Model { Name "workaround"
      System {
        Block { BlockType DCVoltageSource Name "V1" Voltage "5" }
        Block {
          BlockType SubSystem Name "U1" AnnotatedType "MCU"
          OriginalType "ComplexMCU"
        }
        Block { BlockType Ground Name "G1" }
        Line { SrcBlock "V1" SrcPort "p" DstBlock "U1" DstPort "vdd" }
        Line { SrcBlock "U1" SrcPort "gnd" DstBlock "G1" DstPort "g" }
        Line { SrcBlock "V1" SrcPort "n" DstBlock "G1" DstPort "g" }
      }
    })";
  const auto wk = sim::build_circuit(drivers::parse_mdl(workaround_mdl));
  std::printf("annotated-subsystem workaround: %zu substitution(s): %s\n",
              wk.workarounds.size(),
              wk.workarounds.empty() ? "-" : wk.workarounds.front().c_str());

  const char* unsupported_mdl = R"(
    Model { Name "unsupported"
      System { Block { BlockType ComplexMCU Name "U1" } }
    })";
  try {
    sim::build_circuit(drivers::parse_mdl(unsupported_mdl));
    std::printf("ERROR: unsupported block type was silently accepted\n");
  } catch (const ParseError& error) {
    std::printf("uncovered element without annotation is rejected: %s\n\n", error.what());
  }
}

void print_ssam_mapping_coverage() {
  std::printf("-- SSAM mapping coverage across domains --\n");
  TextTable table({"System", "Elements", "hardware", "software", "conceptual/other",
                   "Mapped"});
  for (const auto& [make, name] :
       {std::pair{&core::make_system_a, "A"}, std::pair{&core::make_system_b, "B"}}) {
    auto system = make();
    std::map<std::string, size_t> by_type;
    size_t components = 0;
    for (const auto id : system.model->all_components_under(system.system)) {
      ++components;
      ++by_type[system.model->obj(id).get_string("componentType", "conceptual")];
    }
    table.add_row({name, std::to_string(system.element_count),
                   std::to_string(by_type["hardware"]), std::to_string(by_type["software"]),
                   std::to_string(components - by_type["hardware"] - by_type["software"]),
                   "100%"});
  }
  std::printf("%s\n", table.render().c_str());

  // The Simulink import also maps 100% of the case-study model (audited).
  ssam::SsamModel model;
  const auto mdl = drivers::parse_mdl_file(kAssets + "/power_supply.mdl");
  const auto result = transform::simulink_to_ssam(mdl, model);
  const auto missing = transform::audit_information_loss(mdl, model, result);
  std::printf("Simulink->SSAM import of the case study: %zu blocks, %zu lines, %s\n\n",
              result.blocks, result.lines,
              missing.empty() ? "lossless (100% mapped)" : "LOSSY");
}

void BM_BuildCaseStudyCircuit(benchmark::State& state) {
  const auto mdl = drivers::parse_mdl_file(kAssets + "/power_supply.mdl");
  for (auto _ : state) {
    const auto built = sim::build_circuit(mdl);
    benchmark::DoNotOptimize(built.components.size());
  }
}
BENCHMARK(BM_BuildCaseStudyCircuit);

void BM_SimulinkToSsam(benchmark::State& state) {
  const auto mdl = drivers::parse_mdl_file(kAssets + "/power_supply.mdl");
  for (auto _ : state) {
    ssam::SsamModel model;
    const auto result = transform::simulink_to_ssam(mdl, model);
    benchmark::DoNotOptimize(result.blocks);
  }
}
BENCHMARK(BM_SimulinkToSsam);

}  // namespace

int main(int argc, char** argv) {
  print_block_library_coverage();
  print_ssam_mapping_coverage();
  return bench_obs::run_benchmarks(argc, argv, "rq2_coverage");
}
