// Extension benchmark: the ZBDD fault-tree engine against the seed
// path-enumeration oracle. Three gates run before the benchmarks and fail
// the binary on violation:
//   1. identity   — ZBDD cut sets and rendered tree byte-identical to the
//                   oracle on every subject where the oracle completes;
//   2. speedup    — cut-set synthesis on the width-3 scaled subject (19683
//                   paths) at least 10x faster than enumeration;
//   3. reach      — the width-4/5 scaled subjects (262144 / ~2M paths) are
//                   out of the oracle's path budget yet complete under ZBDD,
//                   with the exact probability below the rare-event bound.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <chrono>
#include <functional>
#include <cstdio>
#include <stdexcept>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/fta.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/fta/engine.hpp"
#include "decisive/fta/lfm.hpp"
#include "decisive/fta/quantify.hpp"

using namespace decisive;

namespace {

void expect(bool condition, const char* what) {
  if (!condition) {
    std::printf("MISMATCH: %s\n", what);
    throw std::runtime_error(what);
  }
}

double time_one(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

void print_summary() {
  std::printf("== Extension: ZBDD fault-tree analysis of the evaluation subjects ==\n\n");
  TextTable table({"System", "components on paths", "minimal cut sets", "order-1",
                   "P(top | 10kh) exact", "rare-event bound", "top contributor (FV)"});
  for (const auto& [make, name] :
       {std::pair{&core::make_system_a, "A"}, std::pair{&core::make_system_b, "B"}}) {
    auto system = make();
    const auto tree = fta::synthesize_fault_tree_zbdd(*system.model, system.system);
    size_t order1 = 0;
    for (const auto& cut : tree.cut_sets) {
      if (cut.size() == 1) ++order1;
    }
    size_t basics = 0;
    for (const auto& node : tree.nodes) {
      if (node.kind == core::GateKind::Basic) ++basics;
    }
    const auto quant = fta::quantify(tree, 10000.0);
    char exact[32];
    char bound[32];
    std::snprintf(exact, sizeof(exact), "%.3e", quant.exact_probability);
    std::snprintf(bound, sizeof(bound), "%.3e", quant.rare_event_bound);
    table.add_row({name, std::to_string(basics), std::to_string(tree.cut_sets.size()),
                   std::to_string(order1), exact, bound,
                   quant.importance.empty()
                       ? "-"
                       : quant.importance.front().label + " (" +
                             format_percent(quant.importance.front().fussell_vesely) +
                             ")"});
  }
  std::printf("%s\n", table.render().c_str());

  // Federation: the FTA and FMEA agree modulo non-loss-mode structural
  // criticality (reported, not hidden), and the cut sets drive the ISO 26262
  // latent/multi-point split.
  auto system_b = core::make_system_b();
  const auto tree = fta::synthesize_fault_tree_zbdd(*system_b.model, system_b.system);
  const auto fmea = core::analyze_component(*system_b.model, system_b.system);
  const auto issues = core::crosscheck_with_fmea(*system_b.model, tree, fmea);
  std::printf("FTA/FMEA federation on System B: %zu finding(s)\n", issues.size());
  for (const auto& issue : issues) std::printf("  %s\n", issue.c_str());
  const auto lfm = fta::classify_latent(*system_b.model, tree, fmea);
  std::printf("System B latent classification: %s\n\n", lfm.asil_label().c_str());
}

/// Gate 1: ZBDD output byte-identical to the enumeration oracle wherever the
/// oracle completes, and the exact probability never above the bound.
void verify_identity() {
  struct Subject {
    const char* name;
    core::SyntheticSystem system;
    size_t oracle_bound;  // large enough to enumerate every minimal cut
  };
  Subject subjects[] = {
      {"System A", core::make_system_a(), 4},
      {"System B", core::make_system_b(), 6},
      {"scaled 6x2 serial", core::make_scaled_architecture(6, 2), 3},
      {"scaled 4x2 width-2", core::make_scaled_architecture(4, 2, 2), 3},
      {"scaled 5x1 width-3", core::make_scaled_architecture(5, 1, 3), 3},
  };
  for (auto& subject : subjects) {
    core::FtaOptions options;
    options.max_cut_set_size = subject.oracle_bound;
    const auto oracle =
        core::synthesize_fault_tree(*subject.system.model, subject.system.system, options);
    const auto zbdd =
        fta::synthesize_fault_tree_zbdd(*subject.system.model, subject.system.system);
    expect(oracle.cut_sets == zbdd.cut_sets, "ZBDD cut sets differ from the oracle");
    expect(oracle.to_text() == zbdd.to_text(), "rendered trees differ from the oracle");
    const auto quant = fta::quantify(zbdd, 10000.0);
    expect(quant.exact_probability <= quant.rare_event_bound + 1e-12,
           "exact probability above the rare-event bound");
    std::printf("identity ok: %-20s %zu cut set(s), exact %.3e <= bound %.3e\n",
                subject.name, zbdd.cut_sets.size(), quant.exact_probability,
                quant.rare_event_bound);
  }
  std::printf("\n");
}

/// Gate 2: on the width-3 scaled subject (3^9 = 19683 paths) ZBDD synthesis
/// beats path enumeration by at least 10x.
void verify_speedup() {
  auto subject = core::make_scaled_architecture(9, 1, 3);
  core::FtaOptions options;
  options.max_cut_set_size = 3;
  core::FaultTree oracle_tree;
  core::FaultTree zbdd_tree;
  // Warm pass (page in the model, size the arenas) before timing.
  oracle_tree = core::synthesize_fault_tree(*subject.model, subject.system, options);
  zbdd_tree = fta::synthesize_fault_tree_zbdd(*subject.model, subject.system);
  expect(oracle_tree.cut_sets == zbdd_tree.cut_sets,
         "speedup subject: cut sets differ from the oracle");
  const double oracle_s = time_one([&] {
    oracle_tree = core::synthesize_fault_tree(*subject.model, subject.system, options);
  });
  const double zbdd_s = time_one([&] {
    zbdd_tree = fta::synthesize_fault_tree_zbdd(*subject.model, subject.system);
  });
  const double speedup = zbdd_s > 0.0 ? oracle_s / zbdd_s : 1e9;
  std::printf("speedup gate: width-3 x9 synthesis oracle %.3fs vs zbdd %.6fs (%.1fx)\n\n",
              oracle_s, zbdd_s, speedup);
  expect(speedup >= 10.0, "ZBDD synthesis speedup below the 10x floor");
}

/// Gate 3: the width-4 and width-5 subjects exceed the oracle's path budget
/// (AnalysisError) but stay tractable under ZBDD.
void verify_reach() {
  for (const size_t width : {size_t{4}, size_t{5}}) {
    auto subject = core::make_scaled_architecture(9, 1, width);
    bool oracle_threw = false;
    try {
      (void)core::synthesize_fault_tree(*subject.model, subject.system);
    } catch (const AnalysisError&) {
      oracle_threw = true;
    }
    expect(oracle_threw, "oracle unexpectedly completed the wide scaled subject");
    const auto tree = fta::synthesize_fault_tree_zbdd(*subject.model, subject.system);
    expect(tree.cut_sets.size() == 9, "wide scaled subject: expected 9 minimal cut sets");
    for (const auto& cut : tree.cut_sets) {
      expect(cut.size() == width, "wide scaled subject: cut order != stage width");
    }
    expect(!tree.truncated, "wide scaled subject: unbounded synthesis reported truncation");
    const auto quant = fta::quantify(tree, 10000.0);
    expect(quant.exact_probability > 0.0 &&
               quant.exact_probability <= quant.rare_event_bound + 1e-12,
           "wide scaled subject: exact probability outside (0, bound]");
    std::printf(
        "reach gate: width-%zu x9 (oracle path budget exceeded) -> %zu order-%zu cuts, "
        "exact %.3e\n",
        width, tree.cut_sets.size(), width, quant.exact_probability);
  }
  std::printf("\n");
}

void BM_ZbddSynthesizeA(benchmark::State& state) {
  auto system = core::make_system_a();
  for (auto _ : state) {
    const auto tree = fta::synthesize_fault_tree_zbdd(*system.model, system.system);
    benchmark::DoNotOptimize(tree.cut_sets.size());
  }
}
BENCHMARK(BM_ZbddSynthesizeA)->Unit(benchmark::kMicrosecond);

// Head-to-head on scaled subjects the oracle can still finish. Args are
// {stages, width}; the width-2 subject uses fewer stages so the oracle's
// truncation probe stays inside its budget (no per-iteration warning spam).
void BM_OracleSynthesizeScaled(benchmark::State& state) {
  auto system = core::make_scaled_architecture(static_cast<size_t>(state.range(0)), 1,
                                               static_cast<size_t>(state.range(1)));
  core::FtaOptions options;
  options.max_cut_set_size = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    const auto tree = core::synthesize_fault_tree(*system.model, system.system, options);
    benchmark::DoNotOptimize(tree.cut_sets.size());
  }
}
BENCHMARK(BM_OracleSynthesizeScaled)->Args({9, 1})->Args({6, 2})
    ->Unit(benchmark::kMicrosecond);

// ZBDD keeps going where enumeration is out of budget (width 4-5).
void BM_ZbddSynthesizeScaled(benchmark::State& state) {
  auto system = core::make_scaled_architecture(9, 1, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const auto tree = fta::synthesize_fault_tree_zbdd(*system.model, system.system);
    benchmark::DoNotOptimize(tree.cut_sets.size());
  }
}
BENCHMARK(BM_ZbddSynthesizeScaled)->Arg(1)->Arg(2)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactQuantifyB(benchmark::State& state) {
  auto system = core::make_system_b();
  const auto tree = fta::synthesize_fault_tree_zbdd(*system.model, system.system);
  for (auto _ : state) {
    const auto quant = fta::quantify(tree, 10000.0);
    benchmark::DoNotOptimize(quant.importance.size());
  }
}
BENCHMARK(BM_ExactQuantifyB)->Unit(benchmark::kMicrosecond);

void BM_LatentClassifyB(benchmark::State& state) {
  auto system = core::make_system_b();
  const auto tree = fta::synthesize_fault_tree_zbdd(*system.model, system.system);
  const auto fmea = core::analyze_component(*system.model, system.system);
  for (auto _ : state) {
    const auto lfm = fta::classify_latent(*system.model, tree, fmea);
    benchmark::DoNotOptimize(lfm.rows.size());
  }
}
BENCHMARK(BM_LatentClassifyB)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  try {
    print_summary();
    verify_identity();
    verify_speedup();
    verify_reach();
  } catch (const std::exception& err) {
    std::printf("FTA gate failed: %s\n", err.what());
    return 1;
  }
  return bench_obs::run_benchmarks(argc, argv, "ext_fta");
}
