// Extension benchmark (paper future work 1): fault-tree synthesis, top-event
// probability and importance measures on Systems A and B, plus the cost of
// minimal-cut-set enumeration as the size bound grows.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/fta.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;

namespace {

void print_summary() {
  std::printf("== Extension: fault-tree analysis of the evaluation subjects ==\n\n");
  TextTable table({"System", "components on paths", "minimal cut sets", "order-1",
                   "P(top | 10kh)", "top contributor (FV)"});
  for (const auto& [make, name] :
       {std::pair{&core::make_system_a, "A"}, std::pair{&core::make_system_b, "B"}}) {
    auto system = make();
    const auto tree = core::synthesize_fault_tree(*system.model, system.system);
    size_t order1 = 0;
    for (const auto& cut : tree.cut_sets) {
      if (cut.size() == 1) ++order1;
    }
    size_t basics = 0;
    for (const auto& node : tree.nodes) {
      if (node.kind == core::GateKind::Basic) ++basics;
    }
    const auto importance = core::importance_measures(tree, 10000.0);
    char probability[32];
    std::snprintf(probability, sizeof(probability), "%.3e",
                  tree.top_event_probability(10000.0));
    table.add_row({name, std::to_string(basics), std::to_string(tree.cut_sets.size()),
                   std::to_string(order1), probability,
                   importance.empty()
                       ? "-"
                       : importance.front().label + " (" +
                             format_percent(importance.front().fussell_vesely) + ")"});
  }
  std::printf("%s\n", table.render().c_str());

  // Federation: the FTA and FMEA agree modulo non-loss-mode structural
  // criticality (reported, not hidden).
  auto system_b = core::make_system_b();
  const auto tree = core::synthesize_fault_tree(*system_b.model, system_b.system);
  const auto fmea = core::analyze_component(*system_b.model, system_b.system);
  const auto issues = core::crosscheck_with_fmea(*system_b.model, tree, fmea);
  std::printf("FTA/FMEA federation on System B: %zu finding(s)\n", issues.size());
  for (const auto& issue : issues) std::printf("  %s\n", issue.c_str());
  std::printf("\n");
}

void BM_SynthesizeFaultTreeA(benchmark::State& state) {
  auto system = core::make_system_a();
  for (auto _ : state) {
    const auto tree = core::synthesize_fault_tree(*system.model, system.system);
    benchmark::DoNotOptimize(tree.cut_sets.size());
  }
}
BENCHMARK(BM_SynthesizeFaultTreeA)->Unit(benchmark::kMicrosecond);

void BM_CutSetEnumerationBySizeBound(benchmark::State& state) {
  auto system = core::make_system_b();
  core::FtaOptions options;
  options.max_cut_set_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const auto tree = core::synthesize_fault_tree(*system.model, system.system, options);
    benchmark::DoNotOptimize(tree.cut_sets.size());
  }
}
BENCHMARK(BM_CutSetEnumerationBySizeBound)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_ImportanceMeasuresB(benchmark::State& state) {
  auto system = core::make_system_b();
  const auto tree = core::synthesize_fault_tree(*system.model, system.system);
  for (auto _ : state) {
    const auto importance = core::importance_measures(tree, 10000.0);
    benchmark::DoNotOptimize(importance.size());
  }
}
BENCHMARK(BM_ImportanceMeasuresB);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  return bench_obs::run_benchmarks(argc, argv, "ext_fta");
}
