// Reproduces paper Table V: the efficiency experiment (RQ3).
//
// Two participants design Systems A (102 elements) and B (230 elements) to
// ASIL-B, once fully manually and once with DECISIVE + SAME automation, in
// both orders. The paper observed ~10x speed-up from automation:
//
//   System | Participant | Time (min) | Iterations
//   A      | A (Man.)    | 505        | 5
//   A      | B (Auto.)   | 62         | 2
//   B      | A (Man.)    | 1143       | 6
//   B      | B (Auto.)   | 105        | 3
//   A      | A (Auto.)   | 57         | 6
//   A      | B (Man.)    | 497        | 3
//   B      | A (Auto.)   | 110        | 4
//   B      | B (Man.)    | 1166       | 2
//
// Human trials are substituted by the calibrated analyst cost model (see
// core/analyst.hpp); automated-tool runtime is measured, not modelled. The
// reproduced quantity is the shape (order-of-magnitude speed-up), not the
// exact minutes.
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/analyst.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;

namespace {

core::AnalystProfile participant_a(uint64_t salt) {
  core::AnalystProfile p;
  p.name = "A";
  p.speed_factor = 0.95;
  p.seed = 1001 + salt;
  return p;
}

core::AnalystProfile participant_b(uint64_t salt) {
  core::AnalystProfile p;
  p.name = "B";
  p.speed_factor = 1.05;
  p.seed = 2002 + salt;
  return p;
}

struct Subject {
  core::SyntheticSystem (*make)();
  const char* name;
};

core::DesignSession manual(const Subject& subject, const core::AnalystProfile& profile) {
  auto system = subject.make();
  const auto fmea = core::analyze_component(*system.model, system.system);
  return core::simulate_manual_design(fmea, core::synthetic_sm_catalogue(), "ASIL-B",
                                      system.element_count, profile);
}

core::DesignSession automated(const Subject& subject, const core::AnalystProfile& profile) {
  return core::run_automated_design(
      [&] {
        // One real tool pass: regenerate the design and run the automated
        // FMEA (Algorithm 1). Wall time is measured by the session model.
        auto system = subject.make();
        return core::analyze_component(*system.model, system.system);
      },
      core::synthetic_sm_catalogue(), "ASIL-B", profile);
}

void print_table() {
  const Subject system_a{&core::make_system_a, "A"};
  const Subject system_b{&core::make_system_b, "B"};

  std::printf("== Table V: efficiency experiment (manual vs DECISIVE+SAME) ==\n\n");
  TextTable table({"System", "Participant", "Time spent (minutes)", "No. Iterations",
                   "Target met", "Paper (min)"});

  struct RowSpec {
    const Subject* subject;
    char participant;
    bool automated;
    uint64_t salt;
    const char* paper;
  };
  const RowSpec rows[] = {
      // Setting 1: A manual, B automated.
      {&system_a, 'A', false, 0, "505"}, {&system_a, 'B', true, 0, "62"},
      {&system_b, 'A', false, 1, "1143"}, {&system_b, 'B', true, 1, "105"},
      // Setting 2: roles swapped.
      {&system_a, 'A', true, 2, "57"}, {&system_a, 'B', false, 2, "497"},
      {&system_b, 'A', true, 3, "110"}, {&system_b, 'B', false, 3, "1166"},
  };

  double manual_total = 0.0;
  double auto_total = 0.0;
  for (const RowSpec& spec : rows) {
    const core::AnalystProfile profile =
        spec.participant == 'A' ? participant_a(spec.salt) : participant_b(spec.salt);
    const core::DesignSession session =
        spec.automated ? automated(*spec.subject, profile) : manual(*spec.subject, profile);
    (spec.automated ? auto_total : manual_total) += session.minutes;
    table.add_row({spec.subject->name,
                   std::string(1, spec.participant) + (spec.automated ? "(Auto.)" : "(Man.)"),
                   format_number(session.minutes, 0), std::to_string(session.iterations),
                   session.target_met ? "yes" : "NO", spec.paper});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("observed speed-up from automation: %.1fx (paper: ~10x)\n\n",
              manual_total / auto_total);
}

void BM_AutomatedDesignSessionA(benchmark::State& state) {
  const Subject subject{&core::make_system_a, "A"};
  for (auto _ : state) {
    const auto session = automated(subject, participant_a(0));
    benchmark::DoNotOptimize(session.final_spfm);
  }
}
BENCHMARK(BM_AutomatedDesignSessionA)->Unit(benchmark::kMillisecond);

void BM_AutomatedDesignSessionB(benchmark::State& state) {
  const Subject subject{&core::make_system_b, "B"};
  for (auto _ : state) {
    const auto session = automated(subject, participant_b(0));
    benchmark::DoNotOptimize(session.final_spfm);
  }
}
BENCHMARK(BM_AutomatedDesignSessionB)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench_obs::run_benchmarks(argc, argv, "table5_efficiency");
}
