// Reproduces paper Table II: the example component reliability model, loaded
// through the Excel-substitute workbook driver and re-rendered.
//
//   Component | FIT | Failure_Mode | Distribution
//   Diode     | 10  | Open  30% / Short 70%
//   Capacitor | 2   | Open  30% / Short 70%
//   Inductor  | 15  | Open  30% / Short 70%
//   MC        | 300 | RAM Failure 100%
#include <benchmark/benchmark.h>

#include "obs_bench.hpp"

#include <cstdio>
#include <stdexcept>

#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/reliability.hpp"
#include "decisive/drivers/datasource.hpp"

using namespace decisive;

namespace {

const std::string kWorkbook = std::string(DECISIVE_ASSETS_DIR) + "/reliability_workbook";

core::ReliabilityModel load() {
  const auto workbook = drivers::DriverRegistry::global().open(kWorkbook);
  return core::ReliabilityModel::from_source(*workbook, "Reliability");
}

void print_table() {
  const auto model = load();
  std::printf("== Table II: example component reliability model ==\n\n");
  TextTable table({"Component", "FIT", "Failure_Mode", "Distribution"});
  for (const auto& entry : model.entries()) {
    bool first = true;
    for (const auto& mode : entry.modes) {
      table.add_row({first ? entry.component_type : "",
                     first ? format_number(entry.fit) : "", mode.name,
                     format_percent(mode.distribution, 0)});
      first = false;
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Verify the paper's values survived the load + alias handling.
  struct Expected { const char* type; double fit; };
  for (const Expected exp : {Expected{"Diode", 10}, Expected{"Capacitor", 2},
                             Expected{"Inductor", 15}, Expected{"MCU", 300}}) {
    const auto* entry = model.find(exp.type);
    if (entry == nullptr || entry->fit != exp.fit) {
      std::printf("MISMATCH for %s\n", exp.type);
      throw std::runtime_error("table II mismatch");
    }
  }
  std::printf("all Table II values verified (including the MC/MCU alias lookup)\n\n");
}

void BM_LoadReliabilityWorkbook(benchmark::State& state) {
  for (auto _ : state) {
    const auto model = load();
    benchmark::DoNotOptimize(model.entries().size());
  }
}
BENCHMARK(BM_LoadReliabilityWorkbook);

void BM_ReliabilityLookup(benchmark::State& state) {
  const auto model = load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.find("Microcontroller"));
    benchmark::DoNotOptimize(model.find("Diode"));
  }
}
BENCHMARK(BM_ReliabilityLookup);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench_obs::run_benchmarks(argc, argv, "table2_reliability");
}
