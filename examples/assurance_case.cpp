// Integration into the system assurance process (paper Section V-C):
// an assurance case whose evidence is an executable query over the generated
// FMEDA spreadsheet. When the design changes, re-running the FMEDA and
// re-evaluating the case automatically re-checks the SPFM claim — no manual
// assurance-case review needed.
#include <cstdio>
#include <fstream>

#include "decisive/assurance/case.hpp"
#include "decisive/assurance/evaluate.hpp"
#include "decisive/assurance/gsn.hpp"
#include "decisive/base/csv.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;

namespace {

// Runs the case-study FMEDA and writes the evidence artefact.
void produce_fmeda(bool with_ecc, const std::string& path) {
  const std::string assets = DECISIVE_ASSETS_DIR;
  const auto mdl = drivers::parse_mdl_file(assets + "/power_supply.mdl");
  const auto built = sim::build_circuit(mdl);
  const auto workbook =
      drivers::DriverRegistry::global().open(assets + "/reliability_workbook");
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  const auto sm_model = core::SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");
  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};
  const auto fmeda =
      core::analyze_circuit(built, reliability, with_ecc ? &sm_model : nullptr, options);
  write_csv_file(path, fmeda.to_csv());
}

}  // namespace

int main() {
  // Build the assurance case (GSN-style structure). The E1 evidence query
  // recomputes the paper's Equation 1 from the FMEDA spreadsheet:
  //   SPFM = 1 - sum(residual single-point FIT)
  //            / sum(FIT of each safety-related component, once).
  assurance::AssuranceCase ac("power-supply-safety");
  ac.add_claim("G1", "The sensor power supply is acceptably safe for hazard H1");
  ac.add_context("C1", "SEooC per ISO 26262; target integrity ASIL-B", "G1");
  ac.add_strategy("S1", "Argue over the architecture metrics of the design", "G1");
  ac.add_claim("G2", "The design meets the ASIL-B SPFM target (>= 90%)", "S1");
  ac.add_artifact("E1", "Automated FMEDA of the power-supply design", "G2",
                  "fmeda_evidence.csv", "csv",
                  "var sr = rows().select(r | r.Safety_Related == 'Yes');\n"
                  "var comps = sr.collect(r | r.Component).distinct();\n"
                  "var lambda = comps.collect(c |\n"
                  "    rows().select(r | r.Component == c).first().FIT).sum();\n"
                  "var residual = sr.collect(r | r.Single_Point_FIT).sum();\n"
                  "return 1 - residual / lambda >= 0.90;");

  // Scenario 1: FMEDA without ECC -> claim defeated (SPFM 5.38%).
  produce_fmeda(/*with_ecc=*/false, "fmeda_evidence.csv");
  auto report = assurance::evaluate(ac);
  std::printf("before refinement: case %s\n",
              report.case_supported ? "SUPPORTED" : "NOT SUPPORTED");
  if (const auto* e1 = report.result_for("E1")) {
    std::printf("  E1: %s (%s)\n", std::string(to_string(e1->state)).c_str(),
                e1->detail.c_str());
  }

  // Scenario 2: the design is refined (ECC on MC1), the FMEDA regenerates,
  // and the same case re-evaluates automatically (SPFM 96.77%).
  produce_fmeda(/*with_ecc=*/true, "fmeda_evidence.csv");
  report = assurance::evaluate(ac);
  std::printf("after refinement:  case %s\n",
              report.case_supported ? "SUPPORTED" : "NOT SUPPORTED");
  if (const auto* e1 = report.result_for("E1")) {
    std::printf("  E1: %s (%s)\n", std::string(to_string(e1->state)).c_str(),
                e1->detail.c_str());
  }

  // Persist the case (SACM-style XML) and render it in GSN for review.
  std::printf("\n%s", ac.to_xml().c_str());
  std::printf("\n-- GSN outline (states from the last evaluation) --\n%s",
              assurance::to_gsn_text(ac, &report).c_str());
  std::ofstream("power_supply_case.dot") << assurance::to_gsn_dot(ac, &report);
  std::printf("\nGSN diagram written to power_supply_case.dot (render with graphviz)\n");
  return report.case_supported ? 0 : 1;
}
