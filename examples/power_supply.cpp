// The paper's Section V case study, end to end:
//   1. load the sensor power-supply design (Simulink-substitute MDL),
//   2. load the reliability workbook (Table II) and SM model (Table III),
//   3. run the automated fault-injection FMEA on the circuit simulator,
//   4. compute SPFM (5.38% — fails ASIL-B),
//   5. deploy ECC on MC1 (Step 4b) and recompute (96.77% — meets ASIL-B),
//   6. export the Excel-style FMEDA table (Table IV).
#include <cstdio>

#include "decisive/base/csv.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"

using namespace decisive;

int main() {
  const std::string assets = DECISIVE_ASSETS_DIR;

  // DECISIVE Step 2: the system design.
  const auto mdl = drivers::parse_mdl_file(assets + "/power_supply.mdl");
  const auto built = sim::build_circuit(mdl);
  std::printf("model '%s': %zu analysable components, %zu observables, %zu skipped blocks\n",
              mdl.name.c_str(), built.components.size(), built.observables.size(),
              built.skipped.size());

  // DECISIVE Step 3: reliability data from the Excel-substitute workbook.
  const auto workbook =
      drivers::DriverRegistry::global().open(assets + "/reliability_workbook");
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
  const auto sm_model = core::SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");

  core::CircuitFmeaOptions options;
  options.safety_goal_observables = {"CS1", "MC1"};  // hazard H1 observables

  // Step 4a: automated FMEA (no safety mechanisms yet).
  const auto fmea = core::analyze_circuit(built, reliability, nullptr, options);
  std::printf("\n-- FMEA (Step 4a) --\n%s", fmea.to_text().render().c_str());
  std::printf("safety-related components:");
  for (const auto& name : fmea.safety_related_components()) std::printf(" %s", name.c_str());
  std::printf("\nSPFM = %.2f%% -> %s (target ASIL-B needs >= 90%%)\n", fmea.spfm() * 100.0,
              core::meets_asil(fmea.spfm(), "ASIL-B") ? "PASS" : "FAIL");

  // Step 4b: import the safety-mechanism model and re-evaluate (FMEDA).
  const auto fmeda = core::analyze_circuit(built, reliability, &sm_model, options);
  std::printf("\n-- FMEDA (Step 4b, ECC deployed on MC1) --\n%s",
              fmeda.to_text().render().c_str());
  std::printf("SPFM = %.2f%% -> %s\n", fmeda.spfm() * 100.0,
              core::meets_asil(fmeda.spfm(), "ASIL-B") ? "PASS (ASIL-B)" : "FAIL");

  for (const auto& warning : fmeda.warnings) std::printf("note: %s\n", warning.c_str());

  // Step 5: persist the FMEDA as evidence for the assurance case.
  write_csv_file("fmeda_power_supply.csv", fmeda.to_csv());
  std::printf("\nFMEDA table written to fmeda_power_supply.csv\n");
  return 0;
}
