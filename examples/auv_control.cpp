// System-B-style scenario: the AUV main control unit designed with the full
// DECISIVE process on SSAM models — including the Step-4b Pareto search over
// safety mechanisms (safety vs. cost trade-off, paper Section IV-D2).
#include <cstdio>

#include "decisive/core/analyst.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/core/workflow.hpp"

using namespace decisive;

int main() {
  // Steps 1-3 are pre-built by the System B generator (requirements, HARA,
  // architecture, reliability aggregation).
  auto system_b = core::make_system_b();
  std::printf("System B: %zu SSAM elements\n\n", system_b.element_count);

  const auto reliability = core::synthetic_reliability();
  const auto catalogue = core::synthetic_sm_catalogue();

  // Step 4a: automated FMEA.
  core::GraphFmeaOptions options;
  auto fmea = core::analyze_component(*system_b.model, system_b.system, options);
  std::printf("-- FMEA --\n%s", fmea.to_text().render().c_str());
  std::printf("SPFM = %.2f%% (%s)\n\n", fmea.spfm() * 100.0,
              core::achieved_asil(fmea.spfm()).c_str());

  // Step 4b: Pareto front of safety-mechanism deployments.
  const auto front = core::pareto_front(fmea, catalogue);
  std::printf("-- Pareto front (cost vs SPFM) --\n");
  std::printf("%10s  %8s  %s\n", "cost (h)", "SPFM", "ASIL");
  size_t printed = 0;
  for (const auto& deployment : front) {
    std::printf("%10.1f  %7.2f%%  %s\n", deployment.total_cost_hours,
                deployment.spfm * 100.0, core::achieved_asil(deployment.spfm).c_str());
    if (++printed >= 12) {
      std::printf("  ... (%zu more non-dominated deployments)\n", front.size() - printed);
      break;
    }
  }

  // Pick the cheapest deployment that reaches ASIL-B.
  const core::Deployment* chosen = nullptr;
  for (const auto& deployment : front) {
    if (core::meets_asil(deployment.spfm, "ASIL-B")) {
      chosen = &deployment;
      break;  // front is sorted by cost
    }
  }
  if (chosen == nullptr) {
    std::printf("\nno deployment reaches ASIL-B with this catalogue\n");
    return 1;
  }
  std::printf("\nchosen deployment: %.1f h -> SPFM %.2f%%\n", chosen->total_cost_hours,
              chosen->spfm * 100.0);
  for (const auto& choice : chosen->choices) {
    const auto& row = fmea.rows[choice.row_index];
    std::printf("  deploy %-28s on %-12s (%s, coverage %.0f%%)\n",
                choice.mechanism->name.c_str(), row.component.c_str(),
                row.failure_mode.c_str(), choice.mechanism->coverage * 100.0);
  }

  const auto fmeda = core::apply_deployment(fmea, *chosen);
  std::printf("\nfinal SPFM = %.2f%% (%s)\n", fmeda.spfm() * 100.0,
              core::achieved_asil(fmeda.spfm()).c_str());
  return 0;
}
