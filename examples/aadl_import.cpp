// AADL import: the related-work claim made executable. An AUV control unit
// described in AADL's textual notation is transformed into SSAM, reliability
// data is aggregated, and the automated FMEA (Algorithm 1) runs unchanged —
// the analysis is source-language agnostic once models are federated in SSAM.
#include <cstdio>

#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/workflow.hpp"
#include "decisive/drivers/aadl.hpp"
#include "decisive/transform/aadl.hpp"

using namespace decisive;

int main() {
  const std::string assets = DECISIVE_ASSETS_DIR;
  const auto package = drivers::parse_aadl_file(assets + "/auv_control.aadl");
  std::printf("parsed AADL package '%s': %zu component types, %zu implementations\n",
              package.name.c_str(), package.types.size(), package.implementations.size());

  ssam::SsamModel model;
  const auto result = transform::aadl_to_ssam(package, "AuvControl", model);
  std::printf("transformed: %zu subcomponents, %zu connections, %zu properties -> %zu SSAM "
              "elements\n\n",
              result.blocks, result.lines, result.params, model.size());

  // Failure modes per category (devices fail silent, software crashes).
  for (const auto component : model.all_components_under(result.root)) {
    auto& comp = model.obj(component);
    if (comp.get_string("componentType") == "hardware") {
      model.add_failure_mode(component, "No output", 0.6, "lossOfFunction");
      model.add_failure_mode(component, "Babbling", 0.4, "erroneous");
    } else if (comp.get_string("componentType") == "software") {
      model.add_failure_mode(component, "Crash", 0.7, "lossOfFunction");
    }
  }

  const auto fmea = core::analyze_component(model, result.root);
  std::printf("%s\n", fmea.to_text().render().c_str());
  std::printf("safety-related (single points):");
  for (const auto& name : fmea.safety_related_components()) std::printf(" %s", name.c_str());
  std::printf("\nSPFM = %.2f%% (%s)\n", fmea.spfm() * 100.0,
              core::achieved_asil(fmea.spfm()).c_str());

  // The redundant sensors/CPUs/control loops must not be single points; the
  // bus and the actuator must be.
  const auto sr = fmea.safety_related_components();
  const bool correct =
      std::find(sr.begin(), sr.end(), "BUS1") != sr.end() &&
      std::find(sr.begin(), sr.end(), "ACT1") != sr.end() &&
      std::find(sr.begin(), sr.end(), "IMU1") == sr.end() &&
      std::find(sr.begin(), sr.end(), "CPU1") == sr.end();
  std::printf("redundancy analysis %s\n", correct ? "consistent with the architecture" : "WRONG");
  return correct ? 0 : 1;
}
