// The complete DECISIVE loop in one narrative (paper Figure 1):
//   Step 1  plan (system definition, requirements, HARA)
//   Step 2  design (architecture + derived safety requirements + allocation)
//   Step 3  aggregate reliability data
//   Step 4a evaluate (automated FMEA + SPFM)
//   Step 4b refine (automated mechanism deployment) — iterate to ASIL-B
//   Step 5  synthesise + validate the safety concept
// plus the supporting processes: model validation before analysis and
// change-impact analysis before the next iteration lands.
#include <cstdio>

#include "decisive/core/impact.hpp"
#include "decisive/core/report.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/core/workflow.hpp"
#include "decisive/ssam/validate.hpp"

using namespace decisive;

int main() {
  ssam::SsamModel model;
  core::DecisiveProcess process(model, "BrakeByWire");

  // -- Step 1: plan ----------------------------------------------------------
  process.define_system(
      "Brake-by-wire actuation chain, passenger vehicle, -40..85C, ISO 26262 item");
  process.add_function_requirement("FR1", "Translate pedal demand into caliper force");
  process.add_function_requirement("FR2", "Report actuation state to the vehicle bus");
  const auto h1 =
      process.identify_hazard("H1: loss of braking", "S3", 1e-7, "ASIL-B");

  // -- Step 2: design --------------------------------------------------------
  const auto sys = process.system();
  const auto in = model.add_io_node(sys, "pedal", "in");
  const auto out = model.add_io_node(sys, "caliper", "out");
  auto leaf = [&](const char* name, const char* type) {
    const auto c = model.create_component(sys, name);
    model.obj(c).set_string("blockType", type);
    model.add_io_node(c, std::string(name) + ".in", "in");
    model.add_io_node(c, std::string(name) + ".out", "out");
    return c;
  };
  const auto pedal = leaf("PedalSensor", "Sensor");
  const auto ecu_a = leaf("EcuA", "CPU");
  const auto ecu_b = leaf("EcuB", "CPU");
  const auto driver = leaf("ValveDriver", "Actuator");
  auto node = [&](ssam::ObjectId c, int i) { return model.obj(c).refs("ioNodes")[i]; };
  model.connect(sys, in, node(pedal, 0));
  model.connect(sys, node(pedal, 1), node(ecu_a, 0));
  model.connect(sys, node(pedal, 1), node(ecu_b, 0));
  model.connect(sys, node(ecu_a, 1), node(driver, 0));
  model.connect(sys, node(ecu_b, 1), node(driver, 0));
  model.connect(sys, node(driver, 1), out);

  const auto sr1 = process.derive_safety_requirement(
      h1, "SR1", "Loss of the actuation chain shall be detected within 50 ms", "ASIL-B");
  process.allocate_requirement(sr1, driver);
  process.allocate_requirement(sr1, pedal);
  std::printf("allocated SR1; ValveDriver integrity is now %s\n\n",
              model.obj(driver).get_string("integrityLevel").c_str());

  // Supporting process: validate the model before analysing it.
  const auto findings = ssam::validate(model);
  std::printf("model validation: %s\n", ssam::to_text(model, findings).c_str());

  // -- Step 3: aggregate reliability ----------------------------------------
  const auto reliability = core::synthetic_reliability();
  std::printf("step 3: populated %zu components with reliability data\n\n",
              process.aggregate_reliability(reliability));

  // -- Steps 4a/4b: iterate to the target ------------------------------------
  const auto catalogue = core::synthetic_sm_catalogue();
  const auto report = process.iterate_until("ASIL-B", catalogue);
  std::printf("step 4: %d iterations -> SPFM %.2f%% (%s)\n\n", report.iterations,
              report.spfm * 100.0, report.target_met ? "target met" : "NOT met");
  std::printf("%s\n", process.last_result().to_text().render().c_str());

  // -- Step 5: safety concept -------------------------------------------------
  const auto issues = process.validate_safety_concept();
  std::printf("safety-concept validation: %zu issue(s)\n", issues.size());
  for (const auto& issue : issues) std::printf("  - %s\n", issue.c_str());
  std::printf("\n%s\n", process.synthesise_safety_concept().c_str());

  core::write_report_workbook("brake_by_wire_report", process.last_result());
  std::printf("report workbook written to brake_by_wire_report/\n\n");

  // Next iteration trigger: what would changing the pedal sensor touch?
  std::printf("%s", core::impact_of_change(model, pedal).to_text(model).c_str());
  return report.target_met ? 0 : 1;
}
