// Runtime monitoring generated from SSAM (the paper's dynamic-component
// story): the case-study supply is modelled, its sensor is declared
// `dynamic` with IONode limits, a monitor is generated, and the circuit
// simulator plays the role of the live system — including a fault injected
// mid-run, which the generated monitor catches and maps back to hazard H1.
#include <cstdio>

#include "decisive/core/monitor.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/sim/fault.hpp"
#include "decisive/sim/solver.hpp"
#include "decisive/ssam/model.hpp"

using namespace decisive;

int main() {
  const std::string assets = DECISIVE_ASSETS_DIR;

  // SSAM side: a dynamic current-sensor component with limits derived from
  // the design's nominal operating point (~43 mA +/- 30%).
  ssam::SsamModel m;
  const auto pkg = m.create_component_package("monitoring");
  const auto haz_pkg = m.create_hazard_package("hazards");
  const auto h1 = m.create_hazard(haz_pkg, "H1: power supply fails unexpectedly", "S2",
                                  1e-6, "ASIL-B");
  const auto sys = m.create_component(pkg, "PowerSupply");
  const auto cs1 = m.create_component(sys, "CS1");
  m.obj(cs1).set_bool("dynamic", true);
  const auto node = m.add_io_node(cs1, "current", "out");
  m.obj(node).set_real("lowerLimit", 0.030);
  m.obj(node).set_real("upperLimit", 0.056);
  const auto fm = m.add_failure_mode(cs1, "reading out of range", 1.0, "erroneous");
  m.obj(fm).add_ref("hazards", h1);

  auto monitor = core::RuntimeMonitor::generate(m, sys);
  std::printf("%s\n", monitor.to_text().c_str());

  // Live system: the circuit simulator. Healthy for 50 samples, then L1
  // fails open.
  const auto built = sim::build_circuit(drivers::parse_mdl_file(assets + "/power_supply.mdl"));
  const auto healthy = sim::dc_operating_point(built.circuit);
  const auto faulted = sim::dc_operating_point(
      sim::inject_fault(built.circuit, sim::Fault{"L1", sim::FaultKind::Open}));

  std::printf("streaming live samples (healthy reading %.1f mA, faulted %.3f mA)\n",
              healthy.reading("CS1") * 1000.0, faulted.reading("CS1") * 1000.0);
  size_t first_violation = 0;
  for (size_t i = 0; i < 100; ++i) {
    const double reading = (i < 50 ? healthy : faulted).reading("CS1");
    const auto violation = monitor.feed("CS1.current", reading);
    if (violation.has_value() && first_violation == 0) {
      first_violation = i;
      std::printf("sample %zu: VIOLATION %.3f mA %s bound %.1f mA — hazards: %s\n", i,
                  violation->value * 1000.0,
                  violation->below_lower ? "below" : "above", violation->bound * 1000.0,
                  violation->hazards.empty() ? "-" : violation->hazards.front().c_str());
    }
  }
  std::printf("\n%llu samples, %llu violations (fault injected at sample 50)\n",
              static_cast<unsigned long long>(monitor.samples_seen()),
              static_cast<unsigned long long>(monitor.violations_seen()));
  return monitor.violations_seen() == 50 && first_violation == 50 ? 0 : 1;
}
