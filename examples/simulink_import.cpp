// Simulink -> SSAM transformation with an information-loss audit and a full
// round trip back to MDL (paper Section IV: "transform Simulink models to
// SSAM without information loss" and "changes in SSAM can be propagated back
// to the original model").
#include <cstdio>

#include "decisive/drivers/mdl.hpp"
#include "decisive/ssam/model.hpp"
#include "decisive/transform/simulink.hpp"

using namespace decisive;

int main() {
  const std::string assets = DECISIVE_ASSETS_DIR;
  const auto mdl = drivers::parse_mdl_file(assets + "/power_supply.mdl");
  std::printf("parsed '%s': %zu top-level blocks, %zu lines\n", mdl.name.c_str(),
              mdl.root.blocks.size(), mdl.root.lines.size());

  // Forward transformation.
  ssam::SsamModel model;
  const auto result = transform::simulink_to_ssam(mdl, model);
  std::printf("transformed: %zu blocks, %zu lines, %zu parameters preserved\n",
              result.blocks, result.lines, result.params);
  std::printf("SSAM repository now holds %zu elements\n", model.size());

  // Trace links (the transformation is fully traceable).
  std::printf("\ntrace (first 8 links):\n");
  for (size_t i = 0; i < result.trace.size() && i < 8; ++i) {
    const auto& link = result.trace[i];
    std::printf("  %-40s --%s--> #%llu\n", link.source.c_str(), link.rule.c_str(),
                static_cast<unsigned long long>(link.target));
  }

  // Information-loss audit.
  const auto missing = transform::audit_information_loss(mdl, model, result);
  if (missing.empty()) {
    std::printf("\naudit: no information loss detected\n");
  } else {
    std::printf("\naudit: %zu items lost:\n", missing.size());
    for (const auto& item : missing) std::printf("  %s\n", item.c_str());
    return 1;
  }

  // Round trip: regenerate the MDL from the SSAM model.
  const auto regenerated = transform::ssam_to_simulink(model, result.root);
  std::printf("\nround trip: %zu blocks, %zu lines regenerated\n",
              regenerated.root.total_blocks(), regenerated.root.lines.size());
  drivers::write_mdl_file("power_supply_roundtrip.mdl", regenerated);
  std::printf("written to power_supply_roundtrip.mdl\n");
  return 0;
}
