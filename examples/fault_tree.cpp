// Fault Tree Analysis federated with FMEA on System B (the paper's
// future-work item 1): synthesise the tree from the architecture, compute
// the top-event probability for a mission, and cross-check the order-1 cut
// sets against the automated FMEA's single points.
#include <cstdio>

#include "decisive/core/fta.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/synthetic.hpp"

using namespace decisive;

int main() {
  auto system = core::make_system_b();
  auto& m = *system.model;

  const auto tree = core::synthesize_fault_tree(m, system.system);
  std::printf("%s\n", tree.to_text().c_str());

  std::printf("minimal cut sets (%zu):\n", tree.cut_sets.size());
  for (const auto& cut : tree.cut_sets) {
    std::printf("  {");
    for (size_t i = 0; i < cut.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ", ", m.obj(cut[i]).get_string("name").c_str());
    }
    std::printf("}\n");
  }

  for (const double mission_hours : {1.0, 1000.0, 10000.0, 100000.0}) {
    std::printf("P(top event | %.0f h mission) = %.3e\n", mission_hours,
                tree.top_event_probability(mission_hours));
  }

  // Federation with FMEA (quantitative + qualitative agreement).
  const auto fmea = core::analyze_component(m, system.system);
  const auto issues = core::crosscheck_with_fmea(m, tree, fmea);
  if (issues.empty()) {
    std::printf("\nFTA/FMEA cross-check: the analyses agree on all single points\n");
  } else {
    std::printf("\nFTA/FMEA cross-check surfaced %zu findings:\n", issues.size());
    for (const auto& issue : issues) std::printf("  %s\n", issue.c_str());
    std::printf(
        "(a structurally critical component whose modelled failure modes are\n"
        " all non-loss — e.g. B.MC1's RAM corruption — is exactly the kind of\n"
        " gap the FTA/FMEA federation is meant to expose)\n");
  }
  return 0;
}
