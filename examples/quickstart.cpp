// Quickstart: model a four-component system in SSAM, run the automated FMEA
// (Algorithm 1), compute the SPFM, deploy a safety mechanism and re-check.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "decisive/core/fmeda.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/ssam/model.hpp"

using namespace decisive;

int main() {
  ssam::SsamModel model;

  // A ComponentPackage with one composite system component.
  const auto pkg = model.create_component_package("demo");
  const auto system = model.create_component(pkg, "BrakeSignalChain");
  const auto sys_in = model.add_io_node(system, "pedal", "in");
  const auto sys_out = model.add_io_node(system, "caliper", "out");

  // Four subcomponents: sensor -> (ecuA | ecuB, redundant) -> driver.
  auto leaf = [&](const char* name, double fit) {
    const auto c = model.create_component(system, name);
    model.obj(c).set_real("fit", fit);
    const auto in = model.add_io_node(c, std::string(name) + ".in", "in");
    const auto out = model.add_io_node(c, std::string(name) + ".out", "out");
    return std::tuple{c, in, out};
  };
  const auto [sensor, sensor_in, sensor_out] = leaf("PedalSensor", 50);
  const auto [ecu_a, ecu_a_in, ecu_a_out] = leaf("EcuA", 200);
  const auto [ecu_b, ecu_b_in, ecu_b_out] = leaf("EcuB", 200);
  const auto [driver, driver_in, driver_out] = leaf("ValveDriver", 80);

  model.connect(system, sys_in, sensor_in);
  model.connect(system, sensor_out, ecu_a_in);
  model.connect(system, sensor_out, ecu_b_in);
  model.connect(system, ecu_a_out, driver_in);
  model.connect(system, ecu_b_out, driver_in);
  model.connect(system, driver_out, sys_out);

  // Failure modes: loss-of-function modes are analysed by the path
  // algorithm; the sensor also drifts (non-loss -> warning without
  // traceability).
  model.add_failure_mode(sensor, "No output", 0.6, "lossOfFunction");
  model.add_failure_mode(sensor, "Drift", 0.4, "degraded");
  model.add_failure_mode(ecu_a, "Crash", 1.0, "lossOfFunction");
  model.add_failure_mode(ecu_b, "Crash", 1.0, "lossOfFunction");
  model.add_failure_mode(driver, "Open", 0.7, "lossOfFunction");

  // Step 4a: automated FMEA.
  auto fmea = core::analyze_component(model, system);
  std::printf("%s\n", fmea.to_text().render().c_str());
  std::printf("SPFM = %.2f%%  (%s)\n\n", fmea.spfm() * 100.0,
              core::achieved_asil(fmea.spfm()).c_str());
  for (const auto& warning : fmea.warnings) std::printf("warning: %s\n", warning.c_str());

  // Step 4b: deploy a watchdog on the valve driver and re-run.
  model.add_safety_mechanism(driver, "ActuationWatchdog", 0.98, 1.5, model::kNullObject);
  model.add_safety_mechanism(sensor, "SensorPlausibility", 0.95, 2.0, model::kNullObject);
  fmea = core::analyze_component(model, system);
  std::printf("\nAfter deployment:\n%s\n", fmea.to_text().render().c_str());
  std::printf("SPFM = %.2f%%  (%s)\n", fmea.spfm() * 100.0,
              core::achieved_asil(fmea.spfm()).c_str());
  return 0;
}
