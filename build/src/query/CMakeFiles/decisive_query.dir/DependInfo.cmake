
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/src/eval.cpp" "src/query/CMakeFiles/decisive_query.dir/src/eval.cpp.o" "gcc" "src/query/CMakeFiles/decisive_query.dir/src/eval.cpp.o.d"
  "/root/repo/src/query/src/lexer.cpp" "src/query/CMakeFiles/decisive_query.dir/src/lexer.cpp.o" "gcc" "src/query/CMakeFiles/decisive_query.dir/src/lexer.cpp.o.d"
  "/root/repo/src/query/src/parser.cpp" "src/query/CMakeFiles/decisive_query.dir/src/parser.cpp.o" "gcc" "src/query/CMakeFiles/decisive_query.dir/src/parser.cpp.o.d"
  "/root/repo/src/query/src/value.cpp" "src/query/CMakeFiles/decisive_query.dir/src/value.cpp.o" "gcc" "src/query/CMakeFiles/decisive_query.dir/src/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/decisive_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
