# Empty compiler generated dependencies file for decisive_query.
# This may be replaced when dependencies are built.
