file(REMOVE_RECURSE
  "libdecisive_query.a"
)
