file(REMOVE_RECURSE
  "CMakeFiles/decisive_query.dir/src/eval.cpp.o"
  "CMakeFiles/decisive_query.dir/src/eval.cpp.o.d"
  "CMakeFiles/decisive_query.dir/src/lexer.cpp.o"
  "CMakeFiles/decisive_query.dir/src/lexer.cpp.o.d"
  "CMakeFiles/decisive_query.dir/src/parser.cpp.o"
  "CMakeFiles/decisive_query.dir/src/parser.cpp.o.d"
  "CMakeFiles/decisive_query.dir/src/value.cpp.o"
  "CMakeFiles/decisive_query.dir/src/value.cpp.o.d"
  "libdecisive_query.a"
  "libdecisive_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
