file(REMOVE_RECURSE
  "CMakeFiles/decisive_assurance.dir/src/case.cpp.o"
  "CMakeFiles/decisive_assurance.dir/src/case.cpp.o.d"
  "CMakeFiles/decisive_assurance.dir/src/evaluate.cpp.o"
  "CMakeFiles/decisive_assurance.dir/src/evaluate.cpp.o.d"
  "CMakeFiles/decisive_assurance.dir/src/gsn.cpp.o"
  "CMakeFiles/decisive_assurance.dir/src/gsn.cpp.o.d"
  "libdecisive_assurance.a"
  "libdecisive_assurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_assurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
