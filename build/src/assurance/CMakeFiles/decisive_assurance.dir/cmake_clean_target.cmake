file(REMOVE_RECURSE
  "libdecisive_assurance.a"
)
