# Empty dependencies file for decisive_assurance.
# This may be replaced when dependencies are built.
