
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assurance/src/case.cpp" "src/assurance/CMakeFiles/decisive_assurance.dir/src/case.cpp.o" "gcc" "src/assurance/CMakeFiles/decisive_assurance.dir/src/case.cpp.o.d"
  "/root/repo/src/assurance/src/evaluate.cpp" "src/assurance/CMakeFiles/decisive_assurance.dir/src/evaluate.cpp.o" "gcc" "src/assurance/CMakeFiles/decisive_assurance.dir/src/evaluate.cpp.o.d"
  "/root/repo/src/assurance/src/gsn.cpp" "src/assurance/CMakeFiles/decisive_assurance.dir/src/gsn.cpp.o" "gcc" "src/assurance/CMakeFiles/decisive_assurance.dir/src/gsn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/decisive_query.dir/DependInfo.cmake"
  "/root/repo/build/src/drivers/CMakeFiles/decisive_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/decisive_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
