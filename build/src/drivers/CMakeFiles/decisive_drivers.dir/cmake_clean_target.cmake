file(REMOVE_RECURSE
  "libdecisive_drivers.a"
)
