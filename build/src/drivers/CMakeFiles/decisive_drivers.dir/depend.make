# Empty dependencies file for decisive_drivers.
# This may be replaced when dependencies are built.
