
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drivers/src/aadl.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/aadl.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/aadl.cpp.o.d"
  "/root/repo/src/drivers/src/csv_driver.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/csv_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/csv_driver.cpp.o.d"
  "/root/repo/src/drivers/src/json_driver.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/json_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/json_driver.cpp.o.d"
  "/root/repo/src/drivers/src/mdl.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/mdl.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/mdl.cpp.o.d"
  "/root/repo/src/drivers/src/mdl_driver.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/mdl_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/mdl_driver.cpp.o.d"
  "/root/repo/src/drivers/src/registry.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/registry.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/registry.cpp.o.d"
  "/root/repo/src/drivers/src/row_ref.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/row_ref.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/row_ref.cpp.o.d"
  "/root/repo/src/drivers/src/workbook_driver.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/workbook_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/workbook_driver.cpp.o.d"
  "/root/repo/src/drivers/src/xml_driver.cpp" "src/drivers/CMakeFiles/decisive_drivers.dir/src/xml_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/decisive_drivers.dir/src/xml_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/decisive_query.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/decisive_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
