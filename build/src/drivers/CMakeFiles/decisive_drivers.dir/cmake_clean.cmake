file(REMOVE_RECURSE
  "CMakeFiles/decisive_drivers.dir/src/aadl.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/aadl.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/csv_driver.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/csv_driver.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/json_driver.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/json_driver.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/mdl.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/mdl.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/mdl_driver.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/mdl_driver.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/registry.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/registry.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/row_ref.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/row_ref.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/workbook_driver.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/workbook_driver.cpp.o.d"
  "CMakeFiles/decisive_drivers.dir/src/xml_driver.cpp.o"
  "CMakeFiles/decisive_drivers.dir/src/xml_driver.cpp.o.d"
  "libdecisive_drivers.a"
  "libdecisive_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
