file(REMOVE_RECURSE
  "libdecisive_core.a"
)
