
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/analyst.cpp" "src/core/CMakeFiles/decisive_core.dir/src/analyst.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/analyst.cpp.o.d"
  "/root/repo/src/core/src/circuit_fmea.cpp" "src/core/CMakeFiles/decisive_core.dir/src/circuit_fmea.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/circuit_fmea.cpp.o.d"
  "/root/repo/src/core/src/fmeda.cpp" "src/core/CMakeFiles/decisive_core.dir/src/fmeda.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/fmeda.cpp.o.d"
  "/root/repo/src/core/src/fta.cpp" "src/core/CMakeFiles/decisive_core.dir/src/fta.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/fta.cpp.o.d"
  "/root/repo/src/core/src/graph_fmea.cpp" "src/core/CMakeFiles/decisive_core.dir/src/graph_fmea.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/graph_fmea.cpp.o.d"
  "/root/repo/src/core/src/impact.cpp" "src/core/CMakeFiles/decisive_core.dir/src/impact.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/impact.cpp.o.d"
  "/root/repo/src/core/src/monitor.cpp" "src/core/CMakeFiles/decisive_core.dir/src/monitor.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/monitor.cpp.o.d"
  "/root/repo/src/core/src/reliability.cpp" "src/core/CMakeFiles/decisive_core.dir/src/reliability.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/reliability.cpp.o.d"
  "/root/repo/src/core/src/report.cpp" "src/core/CMakeFiles/decisive_core.dir/src/report.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/report.cpp.o.d"
  "/root/repo/src/core/src/safety_mechanism.cpp" "src/core/CMakeFiles/decisive_core.dir/src/safety_mechanism.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/safety_mechanism.cpp.o.d"
  "/root/repo/src/core/src/sm_search.cpp" "src/core/CMakeFiles/decisive_core.dir/src/sm_search.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/sm_search.cpp.o.d"
  "/root/repo/src/core/src/synthetic.cpp" "src/core/CMakeFiles/decisive_core.dir/src/synthetic.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/synthetic.cpp.o.d"
  "/root/repo/src/core/src/workflow.cpp" "src/core/CMakeFiles/decisive_core.dir/src/workflow.cpp.o" "gcc" "src/core/CMakeFiles/decisive_core.dir/src/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/decisive_model.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/decisive_query.dir/DependInfo.cmake"
  "/root/repo/build/src/drivers/CMakeFiles/decisive_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/decisive_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ssam/CMakeFiles/decisive_ssam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
