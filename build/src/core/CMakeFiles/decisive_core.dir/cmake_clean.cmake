file(REMOVE_RECURSE
  "CMakeFiles/decisive_core.dir/src/analyst.cpp.o"
  "CMakeFiles/decisive_core.dir/src/analyst.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/circuit_fmea.cpp.o"
  "CMakeFiles/decisive_core.dir/src/circuit_fmea.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/fmeda.cpp.o"
  "CMakeFiles/decisive_core.dir/src/fmeda.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/fta.cpp.o"
  "CMakeFiles/decisive_core.dir/src/fta.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/graph_fmea.cpp.o"
  "CMakeFiles/decisive_core.dir/src/graph_fmea.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/impact.cpp.o"
  "CMakeFiles/decisive_core.dir/src/impact.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/monitor.cpp.o"
  "CMakeFiles/decisive_core.dir/src/monitor.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/reliability.cpp.o"
  "CMakeFiles/decisive_core.dir/src/reliability.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/report.cpp.o"
  "CMakeFiles/decisive_core.dir/src/report.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/safety_mechanism.cpp.o"
  "CMakeFiles/decisive_core.dir/src/safety_mechanism.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/sm_search.cpp.o"
  "CMakeFiles/decisive_core.dir/src/sm_search.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/synthetic.cpp.o"
  "CMakeFiles/decisive_core.dir/src/synthetic.cpp.o.d"
  "CMakeFiles/decisive_core.dir/src/workflow.cpp.o"
  "CMakeFiles/decisive_core.dir/src/workflow.cpp.o.d"
  "libdecisive_core.a"
  "libdecisive_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
