# Empty dependencies file for decisive_core.
# This may be replaced when dependencies are built.
