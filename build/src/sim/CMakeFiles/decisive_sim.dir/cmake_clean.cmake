file(REMOVE_RECURSE
  "CMakeFiles/decisive_sim.dir/src/builder.cpp.o"
  "CMakeFiles/decisive_sim.dir/src/builder.cpp.o.d"
  "CMakeFiles/decisive_sim.dir/src/circuit.cpp.o"
  "CMakeFiles/decisive_sim.dir/src/circuit.cpp.o.d"
  "CMakeFiles/decisive_sim.dir/src/fault.cpp.o"
  "CMakeFiles/decisive_sim.dir/src/fault.cpp.o.d"
  "CMakeFiles/decisive_sim.dir/src/solver.cpp.o"
  "CMakeFiles/decisive_sim.dir/src/solver.cpp.o.d"
  "libdecisive_sim.a"
  "libdecisive_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
