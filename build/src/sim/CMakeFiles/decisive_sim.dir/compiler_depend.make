# Empty compiler generated dependencies file for decisive_sim.
# This may be replaced when dependencies are built.
