
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/builder.cpp" "src/sim/CMakeFiles/decisive_sim.dir/src/builder.cpp.o" "gcc" "src/sim/CMakeFiles/decisive_sim.dir/src/builder.cpp.o.d"
  "/root/repo/src/sim/src/circuit.cpp" "src/sim/CMakeFiles/decisive_sim.dir/src/circuit.cpp.o" "gcc" "src/sim/CMakeFiles/decisive_sim.dir/src/circuit.cpp.o.d"
  "/root/repo/src/sim/src/fault.cpp" "src/sim/CMakeFiles/decisive_sim.dir/src/fault.cpp.o" "gcc" "src/sim/CMakeFiles/decisive_sim.dir/src/fault.cpp.o.d"
  "/root/repo/src/sim/src/solver.cpp" "src/sim/CMakeFiles/decisive_sim.dir/src/solver.cpp.o" "gcc" "src/sim/CMakeFiles/decisive_sim.dir/src/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  "/root/repo/build/src/drivers/CMakeFiles/decisive_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/decisive_query.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/decisive_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
