file(REMOVE_RECURSE
  "libdecisive_sim.a"
)
