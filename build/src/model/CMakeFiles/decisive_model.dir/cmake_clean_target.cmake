file(REMOVE_RECURSE
  "libdecisive_model.a"
)
