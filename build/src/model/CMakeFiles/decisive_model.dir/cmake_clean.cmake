file(REMOVE_RECURSE
  "CMakeFiles/decisive_model.dir/src/meta.cpp.o"
  "CMakeFiles/decisive_model.dir/src/meta.cpp.o.d"
  "CMakeFiles/decisive_model.dir/src/object.cpp.o"
  "CMakeFiles/decisive_model.dir/src/object.cpp.o.d"
  "CMakeFiles/decisive_model.dir/src/repository.cpp.o"
  "CMakeFiles/decisive_model.dir/src/repository.cpp.o.d"
  "CMakeFiles/decisive_model.dir/src/xmi.cpp.o"
  "CMakeFiles/decisive_model.dir/src/xmi.cpp.o.d"
  "libdecisive_model.a"
  "libdecisive_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
