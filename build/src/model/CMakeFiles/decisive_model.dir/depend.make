# Empty dependencies file for decisive_model.
# This may be replaced when dependencies are built.
