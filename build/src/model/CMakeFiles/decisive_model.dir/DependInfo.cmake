
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/src/meta.cpp" "src/model/CMakeFiles/decisive_model.dir/src/meta.cpp.o" "gcc" "src/model/CMakeFiles/decisive_model.dir/src/meta.cpp.o.d"
  "/root/repo/src/model/src/object.cpp" "src/model/CMakeFiles/decisive_model.dir/src/object.cpp.o" "gcc" "src/model/CMakeFiles/decisive_model.dir/src/object.cpp.o.d"
  "/root/repo/src/model/src/repository.cpp" "src/model/CMakeFiles/decisive_model.dir/src/repository.cpp.o" "gcc" "src/model/CMakeFiles/decisive_model.dir/src/repository.cpp.o.d"
  "/root/repo/src/model/src/xmi.cpp" "src/model/CMakeFiles/decisive_model.dir/src/xmi.cpp.o" "gcc" "src/model/CMakeFiles/decisive_model.dir/src/xmi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
