file(REMOVE_RECURSE
  "libdecisive_ssam.a"
)
