
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssam/src/graph.cpp" "src/ssam/CMakeFiles/decisive_ssam.dir/src/graph.cpp.o" "gcc" "src/ssam/CMakeFiles/decisive_ssam.dir/src/graph.cpp.o.d"
  "/root/repo/src/ssam/src/metamodel.cpp" "src/ssam/CMakeFiles/decisive_ssam.dir/src/metamodel.cpp.o" "gcc" "src/ssam/CMakeFiles/decisive_ssam.dir/src/metamodel.cpp.o.d"
  "/root/repo/src/ssam/src/model.cpp" "src/ssam/CMakeFiles/decisive_ssam.dir/src/model.cpp.o" "gcc" "src/ssam/CMakeFiles/decisive_ssam.dir/src/model.cpp.o.d"
  "/root/repo/src/ssam/src/validate.cpp" "src/ssam/CMakeFiles/decisive_ssam.dir/src/validate.cpp.o" "gcc" "src/ssam/CMakeFiles/decisive_ssam.dir/src/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/decisive_model.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/decisive_query.dir/DependInfo.cmake"
  "/root/repo/build/src/drivers/CMakeFiles/decisive_drivers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
