file(REMOVE_RECURSE
  "CMakeFiles/decisive_ssam.dir/src/graph.cpp.o"
  "CMakeFiles/decisive_ssam.dir/src/graph.cpp.o.d"
  "CMakeFiles/decisive_ssam.dir/src/metamodel.cpp.o"
  "CMakeFiles/decisive_ssam.dir/src/metamodel.cpp.o.d"
  "CMakeFiles/decisive_ssam.dir/src/model.cpp.o"
  "CMakeFiles/decisive_ssam.dir/src/model.cpp.o.d"
  "CMakeFiles/decisive_ssam.dir/src/validate.cpp.o"
  "CMakeFiles/decisive_ssam.dir/src/validate.cpp.o.d"
  "libdecisive_ssam.a"
  "libdecisive_ssam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_ssam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
