# Empty compiler generated dependencies file for decisive_ssam.
# This may be replaced when dependencies are built.
