file(REMOVE_RECURSE
  "CMakeFiles/decisive_transform.dir/src/aadl_to_ssam.cpp.o"
  "CMakeFiles/decisive_transform.dir/src/aadl_to_ssam.cpp.o.d"
  "CMakeFiles/decisive_transform.dir/src/simulink_to_ssam.cpp.o"
  "CMakeFiles/decisive_transform.dir/src/simulink_to_ssam.cpp.o.d"
  "CMakeFiles/decisive_transform.dir/src/ssam_to_simulink.cpp.o"
  "CMakeFiles/decisive_transform.dir/src/ssam_to_simulink.cpp.o.d"
  "libdecisive_transform.a"
  "libdecisive_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
