file(REMOVE_RECURSE
  "libdecisive_transform.a"
)
