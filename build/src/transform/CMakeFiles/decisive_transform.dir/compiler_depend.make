# Empty compiler generated dependencies file for decisive_transform.
# This may be replaced when dependencies are built.
