
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/src/csv.cpp" "src/base/CMakeFiles/decisive_base.dir/src/csv.cpp.o" "gcc" "src/base/CMakeFiles/decisive_base.dir/src/csv.cpp.o.d"
  "/root/repo/src/base/src/error.cpp" "src/base/CMakeFiles/decisive_base.dir/src/error.cpp.o" "gcc" "src/base/CMakeFiles/decisive_base.dir/src/error.cpp.o.d"
  "/root/repo/src/base/src/json.cpp" "src/base/CMakeFiles/decisive_base.dir/src/json.cpp.o" "gcc" "src/base/CMakeFiles/decisive_base.dir/src/json.cpp.o.d"
  "/root/repo/src/base/src/lang_string.cpp" "src/base/CMakeFiles/decisive_base.dir/src/lang_string.cpp.o" "gcc" "src/base/CMakeFiles/decisive_base.dir/src/lang_string.cpp.o.d"
  "/root/repo/src/base/src/strings.cpp" "src/base/CMakeFiles/decisive_base.dir/src/strings.cpp.o" "gcc" "src/base/CMakeFiles/decisive_base.dir/src/strings.cpp.o.d"
  "/root/repo/src/base/src/table.cpp" "src/base/CMakeFiles/decisive_base.dir/src/table.cpp.o" "gcc" "src/base/CMakeFiles/decisive_base.dir/src/table.cpp.o.d"
  "/root/repo/src/base/src/xml.cpp" "src/base/CMakeFiles/decisive_base.dir/src/xml.cpp.o" "gcc" "src/base/CMakeFiles/decisive_base.dir/src/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
