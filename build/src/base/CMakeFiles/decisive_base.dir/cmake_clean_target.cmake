file(REMOVE_RECURSE
  "libdecisive_base.a"
)
