file(REMOVE_RECURSE
  "CMakeFiles/decisive_base.dir/src/csv.cpp.o"
  "CMakeFiles/decisive_base.dir/src/csv.cpp.o.d"
  "CMakeFiles/decisive_base.dir/src/error.cpp.o"
  "CMakeFiles/decisive_base.dir/src/error.cpp.o.d"
  "CMakeFiles/decisive_base.dir/src/json.cpp.o"
  "CMakeFiles/decisive_base.dir/src/json.cpp.o.d"
  "CMakeFiles/decisive_base.dir/src/lang_string.cpp.o"
  "CMakeFiles/decisive_base.dir/src/lang_string.cpp.o.d"
  "CMakeFiles/decisive_base.dir/src/strings.cpp.o"
  "CMakeFiles/decisive_base.dir/src/strings.cpp.o.d"
  "CMakeFiles/decisive_base.dir/src/table.cpp.o"
  "CMakeFiles/decisive_base.dir/src/table.cpp.o.d"
  "CMakeFiles/decisive_base.dir/src/xml.cpp.o"
  "CMakeFiles/decisive_base.dir/src/xml.cpp.o.d"
  "libdecisive_base.a"
  "libdecisive_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
