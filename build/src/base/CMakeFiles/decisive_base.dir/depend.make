# Empty dependencies file for decisive_base.
# This may be replaced when dependencies are built.
