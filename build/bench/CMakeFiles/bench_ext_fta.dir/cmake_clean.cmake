file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fta.dir/bench_ext_fta.cpp.o"
  "CMakeFiles/bench_ext_fta.dir/bench_ext_fta.cpp.o.d"
  "bench_ext_fta"
  "bench_ext_fta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
