# Empty compiler generated dependencies file for bench_ext_fta.
# This may be replaced when dependencies are built.
