# Empty compiler generated dependencies file for bench_table3_sm_model.
# This may be replaced when dependencies are built.
