# Empty dependencies file for bench_table1_pll.
# This may be replaced when dependencies are built.
