file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pll.dir/bench_table1_pll.cpp.o"
  "CMakeFiles/bench_table1_pll.dir/bench_table1_pll.cpp.o.d"
  "bench_table1_pll"
  "bench_table1_pll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
