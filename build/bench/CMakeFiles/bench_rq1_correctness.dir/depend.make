# Empty dependencies file for bench_rq1_correctness.
# This may be replaced when dependencies are built.
