file(REMOVE_RECURSE
  "CMakeFiles/bench_rq1_correctness.dir/bench_rq1_correctness.cpp.o"
  "CMakeFiles/bench_rq1_correctness.dir/bench_rq1_correctness.cpp.o.d"
  "bench_rq1_correctness"
  "bench_rq1_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq1_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
