# Empty dependencies file for bench_table2_reliability.
# This may be replaced when dependencies are built.
