file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reliability.dir/bench_table2_reliability.cpp.o"
  "CMakeFiles/bench_table2_reliability.dir/bench_table2_reliability.cpp.o.d"
  "bench_table2_reliability"
  "bench_table2_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
