file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fmeda.dir/bench_table4_fmeda.cpp.o"
  "CMakeFiles/bench_table4_fmeda.dir/bench_table4_fmeda.cpp.o.d"
  "bench_table4_fmeda"
  "bench_table4_fmeda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fmeda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
