# Empty dependencies file for bench_table4_fmeda.
# This may be replaced when dependencies are built.
