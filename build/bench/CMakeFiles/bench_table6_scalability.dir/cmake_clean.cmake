file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_scalability.dir/bench_table6_scalability.cpp.o"
  "CMakeFiles/bench_table6_scalability.dir/bench_table6_scalability.cpp.o.d"
  "bench_table6_scalability"
  "bench_table6_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
