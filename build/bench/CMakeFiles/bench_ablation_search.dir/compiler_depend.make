# Empty compiler generated dependencies file for bench_ablation_search.
# This may be replaced when dependencies are built.
