file(REMOVE_RECURSE
  "CMakeFiles/bench_rq2_coverage.dir/bench_rq2_coverage.cpp.o"
  "CMakeFiles/bench_rq2_coverage.dir/bench_rq2_coverage.cpp.o.d"
  "bench_rq2_coverage"
  "bench_rq2_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq2_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
