# Empty compiler generated dependencies file for bench_rq2_coverage.
# This may be replaced when dependencies are built.
