include("${CMAKE_CURRENT_LIST_DIR}/decisiveTargets.cmake")
