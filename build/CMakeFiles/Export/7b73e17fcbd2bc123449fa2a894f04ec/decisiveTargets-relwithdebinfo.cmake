#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "decisive::base" for configuration "RelWithDebInfo"
set_property(TARGET decisive::base APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::base PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_base.a"
  )

list(APPEND _cmake_import_check_targets decisive::base )
list(APPEND _cmake_import_check_files_for_decisive::base "${_IMPORT_PREFIX}/lib/libdecisive_base.a" )

# Import target "decisive::model" for configuration "RelWithDebInfo"
set_property(TARGET decisive::model APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::model PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_model.a"
  )

list(APPEND _cmake_import_check_targets decisive::model )
list(APPEND _cmake_import_check_files_for_decisive::model "${_IMPORT_PREFIX}/lib/libdecisive_model.a" )

# Import target "decisive::query" for configuration "RelWithDebInfo"
set_property(TARGET decisive::query APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::query PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_query.a"
  )

list(APPEND _cmake_import_check_targets decisive::query )
list(APPEND _cmake_import_check_files_for_decisive::query "${_IMPORT_PREFIX}/lib/libdecisive_query.a" )

# Import target "decisive::drivers" for configuration "RelWithDebInfo"
set_property(TARGET decisive::drivers APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::drivers PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_drivers.a"
  )

list(APPEND _cmake_import_check_targets decisive::drivers )
list(APPEND _cmake_import_check_files_for_decisive::drivers "${_IMPORT_PREFIX}/lib/libdecisive_drivers.a" )

# Import target "decisive::sim" for configuration "RelWithDebInfo"
set_property(TARGET decisive::sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_sim.a"
  )

list(APPEND _cmake_import_check_targets decisive::sim )
list(APPEND _cmake_import_check_files_for_decisive::sim "${_IMPORT_PREFIX}/lib/libdecisive_sim.a" )

# Import target "decisive::ssam" for configuration "RelWithDebInfo"
set_property(TARGET decisive::ssam APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::ssam PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_ssam.a"
  )

list(APPEND _cmake_import_check_targets decisive::ssam )
list(APPEND _cmake_import_check_files_for_decisive::ssam "${_IMPORT_PREFIX}/lib/libdecisive_ssam.a" )

# Import target "decisive::transform" for configuration "RelWithDebInfo"
set_property(TARGET decisive::transform APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::transform PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_transform.a"
  )

list(APPEND _cmake_import_check_targets decisive::transform )
list(APPEND _cmake_import_check_files_for_decisive::transform "${_IMPORT_PREFIX}/lib/libdecisive_transform.a" )

# Import target "decisive::core" for configuration "RelWithDebInfo"
set_property(TARGET decisive::core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_core.a"
  )

list(APPEND _cmake_import_check_targets decisive::core )
list(APPEND _cmake_import_check_files_for_decisive::core "${_IMPORT_PREFIX}/lib/libdecisive_core.a" )

# Import target "decisive::assurance" for configuration "RelWithDebInfo"
set_property(TARGET decisive::assurance APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(decisive::assurance PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdecisive_assurance.a"
  )

list(APPEND _cmake_import_check_targets decisive::assurance )
list(APPEND _cmake_import_check_files_for_decisive::assurance "${_IMPORT_PREFIX}/lib/libdecisive_assurance.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
