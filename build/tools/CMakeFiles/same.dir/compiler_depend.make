# Empty compiler generated dependencies file for same.
# This may be replaced when dependencies are built.
