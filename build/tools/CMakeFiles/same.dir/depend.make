# Empty dependencies file for same.
# This may be replaced when dependencies are built.
