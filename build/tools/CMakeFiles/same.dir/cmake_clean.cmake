file(REMOVE_RECURSE
  "CMakeFiles/same.dir/same.cpp.o"
  "CMakeFiles/same.dir/same.cpp.o.d"
  "same"
  "same.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/same.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
