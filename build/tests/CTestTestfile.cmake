# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/drivers_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ssam_test[1]_include.cmake")
include("/root/repo/build/tests/fmeda_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_fmea_test[1]_include.cmake")
include("/root/repo/build/tests/graph_fmea_test[1]_include.cmake")
include("/root/repo/build/tests/sm_search_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/assurance_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/analyst_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/fta_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/impact_test[1]_include.cmake")
include("/root/repo/build/tests/aadl_test[1]_include.cmake")
include("/root/repo/build/tests/gsn_report_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_property_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/ac_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
