file(REMOVE_RECURSE
  "CMakeFiles/synthetic_test.dir/synthetic_test.cpp.o"
  "CMakeFiles/synthetic_test.dir/synthetic_test.cpp.o.d"
  "synthetic_test"
  "synthetic_test.pdb"
  "synthetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
