file(REMOVE_RECURSE
  "CMakeFiles/fta_test.dir/fta_test.cpp.o"
  "CMakeFiles/fta_test.dir/fta_test.cpp.o.d"
  "fta_test"
  "fta_test.pdb"
  "fta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
