# Empty compiler generated dependencies file for fta_test.
# This may be replaced when dependencies are built.
