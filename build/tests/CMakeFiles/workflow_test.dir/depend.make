# Empty dependencies file for workflow_test.
# This may be replaced when dependencies are built.
