file(REMOVE_RECURSE
  "CMakeFiles/workflow_test.dir/workflow_test.cpp.o"
  "CMakeFiles/workflow_test.dir/workflow_test.cpp.o.d"
  "workflow_test"
  "workflow_test.pdb"
  "workflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
