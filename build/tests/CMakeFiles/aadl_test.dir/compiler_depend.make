# Empty compiler generated dependencies file for aadl_test.
# This may be replaced when dependencies are built.
