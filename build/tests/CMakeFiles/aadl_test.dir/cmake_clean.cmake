file(REMOVE_RECURSE
  "CMakeFiles/aadl_test.dir/aadl_test.cpp.o"
  "CMakeFiles/aadl_test.dir/aadl_test.cpp.o.d"
  "aadl_test"
  "aadl_test.pdb"
  "aadl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
