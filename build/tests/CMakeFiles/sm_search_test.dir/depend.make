# Empty dependencies file for sm_search_test.
# This may be replaced when dependencies are built.
