file(REMOVE_RECURSE
  "CMakeFiles/sm_search_test.dir/sm_search_test.cpp.o"
  "CMakeFiles/sm_search_test.dir/sm_search_test.cpp.o.d"
  "sm_search_test"
  "sm_search_test.pdb"
  "sm_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
