file(REMOVE_RECURSE
  "CMakeFiles/drivers_test.dir/drivers_test.cpp.o"
  "CMakeFiles/drivers_test.dir/drivers_test.cpp.o.d"
  "drivers_test"
  "drivers_test.pdb"
  "drivers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drivers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
