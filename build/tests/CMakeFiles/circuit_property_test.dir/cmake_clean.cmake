file(REMOVE_RECURSE
  "CMakeFiles/circuit_property_test.dir/circuit_property_test.cpp.o"
  "CMakeFiles/circuit_property_test.dir/circuit_property_test.cpp.o.d"
  "circuit_property_test"
  "circuit_property_test.pdb"
  "circuit_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
