# Empty dependencies file for circuit_property_test.
# This may be replaced when dependencies are built.
