file(REMOVE_RECURSE
  "CMakeFiles/assurance_test.dir/assurance_test.cpp.o"
  "CMakeFiles/assurance_test.dir/assurance_test.cpp.o.d"
  "assurance_test"
  "assurance_test.pdb"
  "assurance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assurance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
