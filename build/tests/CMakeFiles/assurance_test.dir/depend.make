# Empty dependencies file for assurance_test.
# This may be replaced when dependencies are built.
