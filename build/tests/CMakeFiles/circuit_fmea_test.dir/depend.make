# Empty dependencies file for circuit_fmea_test.
# This may be replaced when dependencies are built.
