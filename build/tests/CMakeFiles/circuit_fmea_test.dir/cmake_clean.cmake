file(REMOVE_RECURSE
  "CMakeFiles/circuit_fmea_test.dir/circuit_fmea_test.cpp.o"
  "CMakeFiles/circuit_fmea_test.dir/circuit_fmea_test.cpp.o.d"
  "circuit_fmea_test"
  "circuit_fmea_test.pdb"
  "circuit_fmea_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_fmea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
