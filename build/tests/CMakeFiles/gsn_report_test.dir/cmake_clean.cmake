file(REMOVE_RECURSE
  "CMakeFiles/gsn_report_test.dir/gsn_report_test.cpp.o"
  "CMakeFiles/gsn_report_test.dir/gsn_report_test.cpp.o.d"
  "gsn_report_test"
  "gsn_report_test.pdb"
  "gsn_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsn_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
