# Empty compiler generated dependencies file for gsn_report_test.
# This may be replaced when dependencies are built.
