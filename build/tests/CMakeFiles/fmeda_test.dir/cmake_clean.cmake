file(REMOVE_RECURSE
  "CMakeFiles/fmeda_test.dir/fmeda_test.cpp.o"
  "CMakeFiles/fmeda_test.dir/fmeda_test.cpp.o.d"
  "fmeda_test"
  "fmeda_test.pdb"
  "fmeda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmeda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
