# Empty dependencies file for fmeda_test.
# This may be replaced when dependencies are built.
