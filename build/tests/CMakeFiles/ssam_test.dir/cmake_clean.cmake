file(REMOVE_RECURSE
  "CMakeFiles/ssam_test.dir/ssam_test.cpp.o"
  "CMakeFiles/ssam_test.dir/ssam_test.cpp.o.d"
  "ssam_test"
  "ssam_test.pdb"
  "ssam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
