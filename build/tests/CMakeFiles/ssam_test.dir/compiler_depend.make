# Empty compiler generated dependencies file for ssam_test.
# This may be replaced when dependencies are built.
