file(REMOVE_RECURSE
  "CMakeFiles/ac_test.dir/ac_test.cpp.o"
  "CMakeFiles/ac_test.dir/ac_test.cpp.o.d"
  "ac_test"
  "ac_test.pdb"
  "ac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
