# Empty compiler generated dependencies file for ac_test.
# This may be replaced when dependencies are built.
