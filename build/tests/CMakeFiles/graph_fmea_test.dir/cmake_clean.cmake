file(REMOVE_RECURSE
  "CMakeFiles/graph_fmea_test.dir/graph_fmea_test.cpp.o"
  "CMakeFiles/graph_fmea_test.dir/graph_fmea_test.cpp.o.d"
  "graph_fmea_test"
  "graph_fmea_test.pdb"
  "graph_fmea_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_fmea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
