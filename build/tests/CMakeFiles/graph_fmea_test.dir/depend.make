# Empty dependencies file for graph_fmea_test.
# This may be replaced when dependencies are built.
