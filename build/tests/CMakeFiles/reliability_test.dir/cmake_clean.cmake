file(REMOVE_RECURSE
  "CMakeFiles/reliability_test.dir/reliability_test.cpp.o"
  "CMakeFiles/reliability_test.dir/reliability_test.cpp.o.d"
  "reliability_test"
  "reliability_test.pdb"
  "reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
