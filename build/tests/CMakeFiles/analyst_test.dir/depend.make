# Empty dependencies file for analyst_test.
# This may be replaced when dependencies are built.
