file(REMOVE_RECURSE
  "CMakeFiles/analyst_test.dir/analyst_test.cpp.o"
  "CMakeFiles/analyst_test.dir/analyst_test.cpp.o.d"
  "analyst_test"
  "analyst_test.pdb"
  "analyst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
