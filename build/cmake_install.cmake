# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tools/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/examples/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/base/libdecisive_base.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/model/libdecisive_model.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/query/libdecisive_query.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/drivers/libdecisive_drivers.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libdecisive_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/ssam/libdecisive_ssam.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/transform/libdecisive_transform.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libdecisive_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/assurance/libdecisive_assurance.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/base/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/model/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/query/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/drivers/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/sim/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/ssam/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/transform/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/core/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/assurance/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/decisive/decisiveTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/decisive/decisiveTargets.cmake"
         "/root/repo/build/CMakeFiles/Export/7b73e17fcbd2bc123449fa2a894f04ec/decisiveTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/decisive/decisiveTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/decisive/decisiveTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/decisive" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/7b73e17fcbd2bc123449fa2a894f04ec/decisiveTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/decisive" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/7b73e17fcbd2bc123449fa2a894f04ec/decisiveTargets-relwithdebinfo.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/decisive" TYPE FILE FILES
    "/root/repo/build/decisiveConfig.cmake"
    "/root/repo/build/decisiveConfigVersion.cmake"
    )
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
