# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_power_supply]=] "/root/repo/build/examples/power_supply")
set_tests_properties([=[example_power_supply]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_auv_control]=] "/root/repo/build/examples/auv_control")
set_tests_properties([=[example_auv_control]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_simulink_import]=] "/root/repo/build/examples/simulink_import")
set_tests_properties([=[example_simulink_import]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_assurance_case]=] "/root/repo/build/examples/assurance_case")
set_tests_properties([=[example_assurance_case]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_runtime_monitor]=] "/root/repo/build/examples/runtime_monitor")
set_tests_properties([=[example_runtime_monitor]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_fault_tree]=] "/root/repo/build/examples/fault_tree")
set_tests_properties([=[example_fault_tree]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_aadl_import]=] "/root/repo/build/examples/aadl_import")
set_tests_properties([=[example_aadl_import]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_decisive_workflow]=] "/root/repo/build/examples/decisive_workflow")
set_tests_properties([=[example_decisive_workflow]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
