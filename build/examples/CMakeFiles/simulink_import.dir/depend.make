# Empty dependencies file for simulink_import.
# This may be replaced when dependencies are built.
