file(REMOVE_RECURSE
  "CMakeFiles/simulink_import.dir/simulink_import.cpp.o"
  "CMakeFiles/simulink_import.dir/simulink_import.cpp.o.d"
  "simulink_import"
  "simulink_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulink_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
