# Empty compiler generated dependencies file for fault_tree.
# This may be replaced when dependencies are built.
