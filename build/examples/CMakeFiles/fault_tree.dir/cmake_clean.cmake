file(REMOVE_RECURSE
  "CMakeFiles/fault_tree.dir/fault_tree.cpp.o"
  "CMakeFiles/fault_tree.dir/fault_tree.cpp.o.d"
  "fault_tree"
  "fault_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
