# Empty compiler generated dependencies file for aadl_import.
# This may be replaced when dependencies are built.
