file(REMOVE_RECURSE
  "CMakeFiles/aadl_import.dir/aadl_import.cpp.o"
  "CMakeFiles/aadl_import.dir/aadl_import.cpp.o.d"
  "aadl_import"
  "aadl_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadl_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
