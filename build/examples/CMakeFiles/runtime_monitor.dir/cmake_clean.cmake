file(REMOVE_RECURSE
  "CMakeFiles/runtime_monitor.dir/runtime_monitor.cpp.o"
  "CMakeFiles/runtime_monitor.dir/runtime_monitor.cpp.o.d"
  "runtime_monitor"
  "runtime_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
