# Empty dependencies file for runtime_monitor.
# This may be replaced when dependencies are built.
