file(REMOVE_RECURSE
  "CMakeFiles/power_supply.dir/power_supply.cpp.o"
  "CMakeFiles/power_supply.dir/power_supply.cpp.o.d"
  "power_supply"
  "power_supply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_supply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
