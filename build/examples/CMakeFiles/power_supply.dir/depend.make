# Empty dependencies file for power_supply.
# This may be replaced when dependencies are built.
