# Empty dependencies file for assurance_case.
# This may be replaced when dependencies are built.
