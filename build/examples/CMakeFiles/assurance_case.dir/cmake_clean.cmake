file(REMOVE_RECURSE
  "CMakeFiles/assurance_case.dir/assurance_case.cpp.o"
  "CMakeFiles/assurance_case.dir/assurance_case.cpp.o.d"
  "assurance_case"
  "assurance_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assurance_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
