# Empty dependencies file for auv_control.
# This may be replaced when dependencies are built.
