file(REMOVE_RECURSE
  "CMakeFiles/auv_control.dir/auv_control.cpp.o"
  "CMakeFiles/auv_control.dir/auv_control.cpp.o.d"
  "auv_control"
  "auv_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auv_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
