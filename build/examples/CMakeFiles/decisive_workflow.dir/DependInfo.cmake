
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/decisive_workflow.cpp" "examples/CMakeFiles/decisive_workflow.dir/decisive_workflow.cpp.o" "gcc" "examples/CMakeFiles/decisive_workflow.dir/decisive_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/decisive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/decisive_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/assurance/CMakeFiles/decisive_assurance.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/decisive_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ssam/CMakeFiles/decisive_ssam.dir/DependInfo.cmake"
  "/root/repo/build/src/drivers/CMakeFiles/decisive_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/decisive_query.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/decisive_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/decisive_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
