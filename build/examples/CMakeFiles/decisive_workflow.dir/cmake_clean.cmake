file(REMOVE_RECURSE
  "CMakeFiles/decisive_workflow.dir/decisive_workflow.cpp.o"
  "CMakeFiles/decisive_workflow.dir/decisive_workflow.cpp.o.d"
  "decisive_workflow"
  "decisive_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decisive_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
