# Empty dependencies file for decisive_workflow.
# This may be replaced when dependencies are built.
