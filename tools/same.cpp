// same — the Safety Analysis Management Environment, headless.
//
// Subcommands (see `same help`):
//   fmea        automated FME(D)A on a Simulink-substitute (.mdl) model
//   merge-journals  fold the per-shard journals of one campaign into one FMEDA
//   graph-fmea  Algorithm-1 FMEA on an SSAM architecture model
//   sm-search   safety-mechanism deployment search: Pareto front / target ASIL
//   import      transform a .mdl model into SSAM (XMI) with a loss audit
//   export      regenerate the .mdl from an imported SSAM model
//   assurance   evaluate a model-based assurance case (.xml)
//   query       run a query script against any supported external model
//   scalability evaluate a synthetic model with both repository back-ends
//   impact      change-impact report for one component (ISO 26262 Part 8)
//   session     long-lived incremental-analysis service (line protocol)
//   check-trace validate a Chrome trace-event file produced by --trace
//   status      fold per-shard heartbeat files into one live progress view
//   merge-metrics  fold per-shard registry snapshots into one snapshot
//   merge-traces   fold per-shard Chrome traces into one trace
//
// Global flags: --trace <out.json> (Chrome trace of every engine span),
// --metrics [<file>] (Prometheus dump of the instrumentation registry) and
// --metrics-json <file> (shard-stamped registry snapshot, mergeable with
// `same merge-metrics`).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "decisive/assurance/case.hpp"
#include "decisive/assurance/evaluate.hpp"
#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/xml.hpp"
#include "decisive/core/campaign_journal.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/core/fta.hpp"
#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/impact.hpp"
#include "decisive/core/monitor.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/core/synthetic.hpp"
#include "decisive/fta/engine.hpp"
#include "decisive/fta/lfm.hpp"
#include "decisive/fta/quantify.hpp"
#include "decisive/obs/progress.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/snapshot.hpp"
#include "decisive/obs/trace.hpp"
#include "decisive/session/service.hpp"
#include "decisive/ssam/validate.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/model/xmi.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/transform/simulink.hpp"

using namespace decisive;

namespace {

/// Tiny flag parser: positionals plus --key value / --switch.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? std::nullopt : std::optional(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const { return options.contains(key); }
};

Args parse_args(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "true";
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int usage() {
  std::printf(
      "same — Safety Analysis Management Environment (headless)\n\n"
      "usage:\n"
      "  same fmea <model.mdl> --reliability <workbook-dir> [--sm-model]\n"
      "            [--goals CS1,MC1] [--threshold 0.2] [--out fmeda.csv]\n"
      "            [--jobs N] [--journal <file>] [--shard i/N]\n"
      "            [--retries N] [--best-effort] [--no-batch] [--no-sparse]\n"
      "            [--heartbeat <file>] [--heartbeat-interval S]\n"
      "      Automated fault-injection FME(D)A (DECISIVE steps 3-4).\n"
      "      --sm-model deploys safety mechanisms from the workbook's\n"
      "      SafetyMechanisms sheet (step 4b). --jobs runs the campaign on\n"
      "      N worker threads (0 = all cores); output is byte-identical\n"
      "      for any job count.\n"
      "      Resilience: --journal checkpoints every completed fault to a\n"
      "      crash-safe append-only journal — re-running the same command\n"
      "      after a crash resumes from it, byte-identical to an\n"
      "      uninterrupted run. --shard i/N executes only shard i of a\n"
      "      deterministic N-way partition (use one journal per shard and\n"
      "      `same merge-journals` to fold them together). --retries bounds\n"
      "      the containment retries of crashed/budget-exhausted faults\n"
      "      (default 1). --best-effort degrades an unanalysable baseline\n"
      "      to an all-NotApplicable table instead of exit 4.\n"
      "      The campaign factors the nominal system once and solves\n"
      "      eligible faults as low-rank updates; --no-batch forces the\n"
      "      classic one-solve-per-fault path (byte-identical output,\n"
      "      escape hatch only). Big systems refactor through a shared\n"
      "      sparse symbolic analysis; --no-sparse pins every solve to the\n"
      "      dense kernel (also byte-identical, also escape hatch only).\n"
      "      Flight recorder: a progress heartbeat JSON is published next\n"
      "      to the journal (or at --heartbeat) and refreshed at most every\n"
      "      --heartbeat-interval seconds (default 1); watch it live with\n"
      "      `same status`.\n\n"
      "  same merge-journals <shard0.journal> <shard1.journal> ...\n"
      "            [--out fmeda.csv]\n"
      "      Merge the per-shard campaign journals of one sharded campaign\n"
      "      into the FMEDA an unsharded run would have produced (exit 1 if\n"
      "      a shard is missing or incomplete — resume it first).\n\n"
      "  same import <model.mdl> --out <design.ssam>\n"
      "      Simulink -> SSAM transformation with an information-loss audit.\n\n"
      "  same export <design.ssam> --out <model.mdl>\n"
      "      Regenerate the original model from an imported SSAM file.\n\n"
      "  same assurance <case.xml>\n"
      "      Evaluate a model-based assurance case (executes artifact queries).\n\n"
      "  same query <external-model> <script>\n"
      "      Run a query against a CSV/workbook/JSON/XML/MDL model.\n\n"
      "  same scalability <elements> [--budget-mib 4096]\n"
      "      Evaluate a synthetic model with the full-load and indexed\n"
      "      repositories (the paper's Table VI experiment).\n\n"
      "  same validate <design.ssam>\n"
      "      Structural well-formedness validation of an SSAM model.\n\n"
      "  same graph-fmea <design.ssam> --component <name> [--jobs N]\n"
      "            [--out fmeda.csv] [--heartbeat <file>]\n"
      "      Algorithm-1 FMEA on an SSAM architecture: dominator-based\n"
      "      single-point analysis over the component graph, recursing into\n"
      "      composites. --jobs parallelises the per-component analyses\n"
      "      (0 = all cores); output is byte-identical for any job count.\n\n"
      "  same sm-search <design.ssam> --component <name> --catalogue <path>\n"
      "            [--target-asil B [--optimal]] [--pareto] [--jobs N]\n"
      "            [--epsilon E] [--objective spfm|lfm]\n"
      "            [--out front.csv] [--json front.json]\n"
      "      Safety-mechanism deployment search (DECISIVE step 4b) on the\n"
      "      graph FMEA of <name>. Default/--pareto: the exact (cost, SPFM)\n"
      "      Pareto front via the DP engine (byte-identical for any --jobs;\n"
      "      --epsilon trades exactness for a bounded front). --target-asil:\n"
      "      a min-cost deployment reaching the target (greedy, or provably\n"
      "      optimal branch-and-bound with --optimal; exit 3 = unreachable).\n"
      "      --objective lfm weights the front's metric axis by the FTA's\n"
      "      multi-point rows (latent-fault exposure) instead of the SPFM.\n"
      "      --catalogue accepts a CSV file or a workbook directory with a\n"
      "      SafetyMechanisms sheet.\n\n"
      "  same fta <design.ssam> --component <name> [--mission-hours 10000]\n"
      "            [--max-order K] [--out cutsets.csv]\n"
      "      Synthesise the fault tree of a composite component with the\n"
      "      ZBDD engine: minimal cut sets (any order; --max-order bounds\n"
      "      them, with an explicit truncation warning), exact top-event\n"
      "      probability next to the rare-event bound, Birnbaum / \n"
      "      Fussell-Vesely / RAW / RRW importance, and the ISO 26262\n"
      "      latent/multi-point (LFM) classification against the FMEDA.\n\n"
      "  same monitor <design.ssam> [--samples frames.csv] [--include-static]\n"
      "      Generate the runtime monitor from dynamic components; with\n"
      "      --samples, replay a CSV of frames (columns = check ids) through\n"
      "      it and report the violations.\n\n"
      "  same impact <design.ssam> <component>\n"
      "      Change-impact report for one component: the containment\n"
      "      ancestors, connected neighbours, requirements and hazards a\n"
      "      change to it can invalidate (ISO 26262 Part 8 change management).\n\n"
      "  same session [--model <design.ssam> --component <name>] [--jobs N]\n"
      "            [--cache <file>]\n"
      "      Long-lived incremental-analysis service: reads one request per\n"
      "      line from stdin (load / set-fit / rewire / add-failure-mode /\n"
      "      deploy-sm / impact / campaign / reanalyze / table / result /\n"
      "      metrics / stats / save / save-cache / load-cache / quit; 'help'\n"
      "      lists them). Re-analyses replay fingerprint-cached per-component\n"
      "      results and report the hit rate, dirty-set size and per-phase\n"
      "      wall time; 'metrics' answers a Prometheus-style dump of the\n"
      "      process-wide instrumentation registry.\n\n"
      "  same check-trace <trace.json>\n"
      "      Validate a Chrome trace-event file: JSON well-formedness,\n"
      "      monotonic timestamps and balanced begin/end pairs per\n"
      "      (process, thread) lane — merged multi-shard traces included.\n\n"
      "  same status <dir-or-heartbeat.json> [--stale-seconds S]\n"
      "      Fold every *.heartbeat.json under <dir> into one live progress\n"
      "      view: done/total, per-outcome counts, throughput, ETA and\n"
      "      worker liveness per shard. A shard still 'running' whose\n"
      "      heartbeat is older than S seconds (default 30) is flagged DEAD\n"
      "      (exit 3); exit 1 when no heartbeat is found.\n\n"
      "  same merge-metrics <shard0.json> <shard1.json> ... [--out <file>]\n"
      "      Fold per-shard registry snapshots (--metrics-json) into one:\n"
      "      counters summed, gauges last-write-by-timestamp, histograms\n"
      "      added bucket-wise (a bucket-layout mismatch is an error).\n\n"
      "  same merge-traces <shard0.json> <shard1.json> ... [--out <file>]\n"
      "      Fold per-shard Chrome traces into one, each shard on its own\n"
      "      process lane; the merge passes `same check-trace`.\n\n"
      "global flags (any subcommand):\n"
      "  --trace <out.json>   record spans of every engine to a Chrome\n"
      "                       trace-event file (open in about://tracing or\n"
      "                       https://ui.perfetto.dev). Analysis artefacts\n"
      "                       are byte-identical with or without tracing.\n"
      "  --metrics [<file>]   after the command, dump the instrumentation\n"
      "                       registry in Prometheus text format to <file>\n"
      "                       (stderr when no file is given).\n"
      "  --metrics-json <file>  after the command, write the registry as a\n"
      "                       shard-stamped JSON snapshot, mergeable across\n"
      "                       shards with `same merge-metrics`.\n"
      "\n"
      "  `same campaign` is an alias for `same fmea` (the fault-injection\n"
      "  campaign engine).\n");
  return 2;
}

int cmd_monitor(const Args& args) {
  if (args.positional.empty()) return usage();
  ssam::SsamModel model;
  model::load_xmi_file(model.repo(), model.meta(), args.positional[0]);
  auto monitor = core::RuntimeMonitor::generate_all(model, args.has("include-static"));
  std::printf("%s", monitor.to_text().c_str());
  if (monitor.checks().empty()) {
    // A valid model with nothing to monitor is a clean outcome, not a
    // failure: only violations (3) and errors (1/2) are non-zero.
    std::printf("note: no dynamic components; nothing to monitor\n");
    return 0;
  }

  const auto samples = args.get("samples");
  if (!samples.has_value()) return 0;
  const CsvTable frames = read_csv_file(*samples);
  size_t violations = 0;
  for (size_t row = 0; row < frames.rows.size(); ++row) {
    std::map<std::string, double> frame;
    for (size_t col = 0; col < frames.header.size(); ++col) {
      const std::string& cell = frames.rows[row].size() > col ? frames.rows[row][col] : "";
      if (trim(cell).empty()) continue;
      frame[frames.header[col]] = parse_double(cell);
    }
    for (const auto& violation : monitor.feed_frame(frame)) {
      ++violations;
      std::printf("frame %zu: %s = %s %s bound %s\n", row, violation.check_id.c_str(),
                  format_number(violation.value, 6).c_str(),
                  violation.below_lower ? "below" : "above",
                  format_number(violation.bound, 6).c_str());
    }
  }
  std::printf("%zu frame(s), %zu violation(s)\n", frames.rows.size(), violations);
  return violations == 0 ? 0 : 3;
}

int cmd_validate(const Args& args) {
  if (args.positional.empty()) return usage();
  ssam::SsamModel model;
  model::load_xmi_file(model.repo(), model.meta(), args.positional[0]);
  const auto findings = ssam::validate(model);
  std::printf("%s", ssam::to_text(model, findings).c_str());
  return findings.empty() ? 0 : 1;
}

int cmd_fta(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto component_name = args.get("component");
  if (!component_name.has_value()) {
    std::fprintf(stderr, "error: --component <name> is required\n");
    return 2;
  }
  ssam::SsamModel model;
  model::load_xmi_file(model.repo(), model.meta(), args.positional[0]);
  const auto component = model.find_by_name(ssam::cls::Component, *component_name);
  if (component == model::kNullObject) {
    std::fprintf(stderr, "error: no component named '%s'\n", component_name->c_str());
    return 1;
  }
  const double mission = parse_double(args.get("mission-hours").value_or("10000"));
  fta::ZbddFtaOptions options;
  if (const auto max_order = args.get("max-order")) {
    options.max_order = static_cast<size_t>(parse_int(*max_order));
  }

  const auto tree = fta::synthesize_fault_tree_zbdd(model, component, options);
  std::printf("%s\n", tree.to_text().c_str());
  std::printf("minimal cut sets: %zu\n", tree.cut_sets.size());

  const auto quant = fta::quantify(tree, mission);
  std::printf("P(top event | %.0f h) = %.3e exact  (rare-event bound %.3e)\n\n", mission,
              quant.exact_probability, quant.rare_event_bound);
  std::printf("%-40s %12s %14s %8s %10s\n", "basic event", "Birnbaum",
              "Fussell-Vesely", "RAW", "RRW");
  for (const auto& imp : quant.importance) {
    std::printf("%-40s %12.4e %14.4f %8.3f %10s\n", imp.label.c_str(), imp.birnbaum,
                imp.fussell_vesely, imp.raw,
                imp.indispensable ? "inf" : format_number(imp.rrw, 3).c_str());
  }

  // Federation with the FMEDA: multi-point/latent classification (ISO 26262
  // LFM) of every loss mode against the minimal cut sets.
  const auto fmea = core::analyze_component(model, component, {});
  const auto lfm = fta::classify_latent(model, tree, fmea);
  std::printf("\n%s", lfm.to_text().c_str());

  if (const auto out = args.get("out")) {
    write_csv_file(*out, fta::cut_sets_csv(tree, mission));
    std::printf("cut sets written to %s\n", out->c_str());
  }
  return 0;
}

int cmd_graph_fmea(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto component_name = args.get("component");
  if (!component_name.has_value()) {
    std::fprintf(stderr, "error: --component <name> is required\n");
    return 2;
  }
  ssam::SsamModel model;
  model::load_xmi_file(model.repo(), model.meta(), args.positional[0]);
  const auto component = model.find_by_name(ssam::cls::Component, *component_name);
  if (component == model::kNullObject) {
    std::fprintf(stderr, "error: no component named '%s'\n", component_name->c_str());
    return 1;
  }

  core::GraphFmeaOptions options;
  if (const auto jobs = args.get("jobs")) {
    options.jobs = static_cast<int>(parse_int(*jobs));
    if (options.jobs < 0) {
      std::fprintf(stderr, "error: --jobs must be >= 0 (0 = all cores)\n");
      return 2;
    }
  }
  if (const auto heartbeat = args.get("heartbeat")) {
    if (*heartbeat == "true") {
      std::fprintf(stderr, "error: --heartbeat requires a file path\n");
      return 2;
    }
    options.heartbeat_path = *heartbeat;
  }
  if (const auto interval = args.get("heartbeat-interval")) {
    options.heartbeat_interval_seconds = parse_double(*interval);
  }

  const auto result = core::analyze_component(model, component, options);
  std::printf("%s\n", result.to_text().render().c_str());
  for (const auto& warning : result.warnings) std::printf("note: %s\n", warning.c_str());
  std::printf("\nSPFM = %s  ->  %s\n", format_percent(result.spfm()).c_str(),
              result.asil_label().c_str());
  if (const auto out = args.get("out")) {
    write_csv_file(*out, result.to_csv());
    std::printf("FMEDA written to %s\n", out->c_str());
  }
  return 0;
}

/// Loads a safety-mechanism catalogue from any tabular source: a workbook
/// directory with a SafetyMechanisms sheet, or a bare CSV file (whose single
/// table answers to the empty name regardless of the file stem).
core::SafetyMechanismModel load_catalogue(const std::string& location) {
  const auto source = drivers::DriverRegistry::global().open(location);
  const std::string_view table =
      source->table("SafetyMechanisms") != nullptr ? "SafetyMechanisms" : "";
  return core::SafetyMechanismModel::from_source(*source, table);
}

int cmd_sm_search(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto component_name = args.get("component");
  if (!component_name.has_value()) {
    std::fprintf(stderr, "error: --component <name> is required\n");
    return 2;
  }
  const auto catalogue_location = args.get("catalogue");
  if (!catalogue_location.has_value()) {
    std::fprintf(stderr, "error: --catalogue <csv-or-workbook> is required\n");
    return 2;
  }

  ssam::SsamModel model;
  model::load_xmi_file(model.repo(), model.meta(), args.positional[0]);
  const auto component = model.find_by_name(ssam::cls::Component, *component_name);
  if (component == model::kNullObject) {
    std::fprintf(stderr, "error: no component named '%s'\n", component_name->c_str());
    return 1;
  }
  const auto fmea = core::analyze_component(model, component, {});
  const auto catalogue = load_catalogue(*catalogue_location);

  // --objective lfm: weight the Pareto metric axis by the FTA's multi-point
  // rows, so the front trades cost against latent-fault exposure instead of
  // the single-point SPFM.
  const std::string objective = to_lower(args.get("objective").value_or("spfm"));
  if (objective != "spfm" && objective != "lfm") {
    std::fprintf(stderr, "error: --objective must be 'spfm' or 'lfm'\n");
    return 2;
  }
  std::vector<double> lfm_weights;
  if (objective == "lfm") {
    const auto tree = fta::synthesize_fault_tree_zbdd(model, component);
    const auto lfm = fta::classify_latent(model, tree, fmea);
    if (!lfm.has_multi_point()) {
      std::printf("no multi-point faults: the LFM objective has nothing to optimise\n");
      return 0;
    }
    lfm_weights = fta::lfm_row_weights(lfm);
  }

  if (const auto target = args.get("target-asil")) {
    if (objective == "lfm") {
      std::fprintf(stderr,
                   "error: --objective lfm applies to the Pareto front only "
                   "(drop --target-asil)\n");
      return 2;
    }
    // Min-cost deployment for one target: greedy by default, provably
    // optimal branch-and-bound with --optimal.
    const auto deployment = args.has("optimal")
                                ? core::optimal_reach_asil(fmea, catalogue, *target)
                                : core::greedy_reach_asil(fmea, catalogue, *target);
    if (!deployment.has_value()) {
      std::printf("target ASIL %s is unreachable with this catalogue\n", target->c_str());
      return 3;
    }
    for (const auto& choice : deployment->choices) {
      const core::FmedaRow& row = fmea.rows[choice.row_index];
      std::printf("deploy %s on %s/%s (coverage %s, %s h)\n",
                  choice.mechanism->name.c_str(), row.component.c_str(),
                  row.failure_mode.c_str(),
                  format_percent(choice.mechanism->coverage).c_str(),
                  format_number(choice.mechanism->cost_hours, 2).c_str());
    }
    std::printf("%zu mechanism(s), %s h total\n", deployment->choices.size(),
                format_number(deployment->total_cost_hours, 2).c_str());
    std::printf("SPFM %s -> %s  ->  SPFM %s -> %s\n", format_percent(fmea.spfm()).c_str(),
                fmea.asil_label().c_str(), format_percent(deployment->spfm).c_str(),
                core::achieved_asil(deployment->spfm).c_str());
    if (const auto out = args.get("out")) {
      write_csv_file(*out, core::front_to_csv(fmea, {*deployment}));
      std::printf("deployment written to %s\n", out->c_str());
    }
    if (const auto json_out = args.get("json")) {
      std::ofstream file(*json_out, std::ios::binary);
      if (!file) throw IoError("cannot write '" + *json_out + "'");
      file << core::front_to_json(fmea, {*deployment});
      std::printf("deployment written to %s\n", json_out->c_str());
    }
    return 0;
  }

  // Default (and --pareto): the exact (cost, SPFM) Pareto front.
  core::ParetoOptions options;
  if (const auto jobs = args.get("jobs")) {
    options.jobs = static_cast<int>(parse_int(*jobs));
    if (options.jobs < 0) {
      std::fprintf(stderr, "error: --jobs must be >= 0 (0 = all cores)\n");
      return 2;
    }
  }
  if (const auto epsilon = args.get("epsilon")) options.epsilon = parse_double(*epsilon);
  options.row_weights = lfm_weights;
  const auto front = core::pareto_front(fmea, catalogue, options);
  const CsvTable table = core::front_to_csv(
      fmea, front,
      objective == "lfm" ? core::ParetoMetric::Lfm : core::ParetoMetric::Spfm);
  std::printf("%s", write_csv(table).c_str());
  std::printf("front: %zu deployment(s)\n", front.size());
  if (const auto out = args.get("out")) {
    write_csv_file(*out, table);
    std::printf("front written to %s\n", out->c_str());
  }
  if (const auto json_out = args.get("json")) {
    std::ofstream file(*json_out, std::ios::binary);
    if (!file) throw IoError("cannot write '" + *json_out + "'");
    file << core::front_to_json(fmea, front);
    std::printf("front written to %s\n", json_out->c_str());
  }
  return 0;
}

int cmd_fmea(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto reliability_location = args.get("reliability");
  if (!reliability_location.has_value()) {
    std::fprintf(stderr, "error: --reliability <workbook-dir> is required\n");
    return 2;
  }

  const auto mdl = drivers::parse_mdl_file(args.positional[0]);
  const auto built = sim::build_circuit(mdl);
  const auto workbook = drivers::DriverRegistry::global().open(*reliability_location);
  const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");

  std::optional<core::SafetyMechanismModel> sm_model;
  if (args.has("sm-model")) {
    sm_model = core::SafetyMechanismModel::from_source(*workbook, "SafetyMechanisms");
  }

  core::CircuitFmeaOptions options;
  if (const auto goals = args.get("goals")) {
    for (const auto& goal : split(*goals, ',')) {
      options.safety_goal_observables.push_back(std::string(trim(goal)));
    }
  }
  if (const auto threshold = args.get("threshold")) {
    options.relative_threshold = parse_double(*threshold);
  }
  if (const auto jobs = args.get("jobs")) {
    options.jobs = static_cast<int>(parse_int(*jobs));
    if (options.jobs < 0) {
      std::fprintf(stderr, "error: --jobs must be >= 0 (0 = all cores)\n");
      return 2;
    }
  }
  if (const auto journal = args.get("journal")) {
    if (*journal == "true") {
      std::fprintf(stderr, "error: --journal requires a file path\n");
      return 2;
    }
    options.execution.journal_path = *journal;
  }
  if (const auto shard = args.get("shard")) {
    const auto slash = shard->find('/');
    if (slash == std::string::npos) {
      std::fprintf(stderr, "error: --shard expects i/N (e.g. --shard 0/4)\n");
      return 2;
    }
    options.execution.shard_index = static_cast<int>(parse_int(shard->substr(0, slash)));
    options.execution.shard_count = static_cast<int>(parse_int(shard->substr(slash + 1)));
    if (options.execution.shard_count < 1 || options.execution.shard_index < 0 ||
        options.execution.shard_index >= options.execution.shard_count) {
      std::fprintf(stderr, "error: --shard i/N needs 0 <= i < N\n");
      return 2;
    }
  }
  if (const auto retries = args.get("retries")) {
    options.execution.max_retries = static_cast<int>(parse_int(*retries));
    if (options.execution.max_retries < 0) {
      std::fprintf(stderr, "error: --retries must be >= 0\n");
      return 2;
    }
  }
  options.execution.best_effort = args.has("best-effort");
  options.batch = !args.has("no-batch");
  options.sparse = !args.has("no-sparse");
  options.solver.sparse = options.sparse;
  if (const auto heartbeat = args.get("heartbeat")) {
    if (*heartbeat == "true") {
      std::fprintf(stderr, "error: --heartbeat requires a file path\n");
      return 2;
    }
    options.execution.heartbeat_path = *heartbeat;
  }
  if (const auto interval = args.get("heartbeat-interval")) {
    options.execution.heartbeat_interval_seconds = parse_double(*interval);
  }

  core::FmedaResult result;
  try {
    result = core::analyze_circuit(built, reliability, sm_model ? &*sm_model : nullptr,
                                   options);
  } catch (const SimulationError& error) {
    // The *baseline* is unanalysable — per-fault failures never throw, they
    // are classified FaultOutcomes on the rows. Report it structurally
    // instead of letting the generic handler print a bare message.
    std::fprintf(stderr,
                 "same: campaign aborted: %s\n"
                 "same: the baseline operating point is a precondition of every fault\n"
                 "same: comparison; fix the model, or rerun with --best-effort to emit a\n"
                 "same: degraded all-NotApplicable FMEDA\n",
                 error.what());
    return 4;
  }
  std::printf("%s\n", result.to_text().render().c_str());
  for (const auto& warning : result.warnings) std::printf("note: %s\n", warning.c_str());
  std::printf("\ncampaign: %s\n", result.outcome_summary().c_str());
  std::printf("SPFM = %s  ->  %s\n", format_percent(result.spfm()).c_str(),
              core::achieved_asil(result.spfm()).c_str());
  if (const auto out = args.get("out")) {
    write_csv_file(*out, result.to_csv());
    std::printf("FMEDA written to %s\n", out->c_str());
  }
  return 0;
}

int cmd_merge_journals(const Args& args) {
  if (args.positional.empty()) return usage();
  // Same epilogue as cmd_fmea: the merged result must be indistinguishable
  // from what an unsharded `same fmea` run would have printed and written.
  const auto result = core::merge_campaign_journals(args.positional);
  std::printf("%s\n", result.to_text().render().c_str());
  for (const auto& warning : result.warnings) std::printf("note: %s\n", warning.c_str());
  std::printf("\ncampaign: %s\n", result.outcome_summary().c_str());
  std::printf("SPFM = %s  ->  %s\n", format_percent(result.spfm()).c_str(),
              core::achieved_asil(result.spfm()).c_str());
  if (const auto out = args.get("out")) {
    write_csv_file(*out, result.to_csv());
    std::printf("FMEDA written to %s\n", out->c_str());
  }
  return 0;
}

int cmd_import(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto out = args.get("out");
  if (!out.has_value()) {
    std::fprintf(stderr, "error: --out <design.ssam> is required\n");
    return 2;
  }
  const auto mdl = drivers::parse_mdl_file(args.positional[0]);
  ssam::SsamModel model;
  const auto result = transform::simulink_to_ssam(mdl, model);
  const auto missing = transform::audit_information_loss(mdl, model, result);
  std::printf("transformed %zu blocks, %zu lines, %zu parameters\n", result.blocks,
              result.lines, result.params);
  if (!missing.empty()) {
    for (const auto& item : missing) std::fprintf(stderr, "LOSS: %s\n", item.c_str());
    return 1;
  }
  model::save_xmi_file(*out, model.repo(), model.meta());
  std::printf("lossless; SSAM model (%zu elements) written to %s\n", model.size(),
              out->c_str());
  return 0;
}

int cmd_export(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto out = args.get("out");
  if (!out.has_value()) {
    std::fprintf(stderr, "error: --out <model.mdl> is required\n");
    return 2;
  }
  ssam::SsamModel model;
  model::load_xmi_file(model.repo(), model.meta(), args.positional[0]);
  // The import root: a Component tagged as the Model by the transformation.
  ssam::ObjectId root = model::kNullObject;
  model.repo().for_each([&](const model::ModelObject& obj) {
    if (root != model::kNullObject) return;
    if (!obj.is_kind_of(model.meta().get(ssam::cls::Component))) return;
    for (const auto c : obj.refs("implementationConstraints")) {
      const auto& constraint = model.obj(c);
      if (constraint.get_string("language") == "simulink-blocktype" &&
          constraint.get_string("body") == "Model") {
        root = obj.id();
      }
    }
  });
  if (root == model::kNullObject) {
    std::fprintf(stderr, "error: no imported model root found in %s\n",
                 args.positional[0].c_str());
    return 1;
  }
  drivers::write_mdl_file(*out, transform::ssam_to_simulink(model, root));
  std::printf("regenerated model written to %s\n", out->c_str());
  return 0;
}

int cmd_assurance(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto doc = xml::parse_file(args.positional[0]);
  const auto ac = assurance::AssuranceCase::from_xml(xml::write(*doc));
  const auto report = assurance::evaluate(ac);
  for (const auto& result : report.results) {
    std::printf("%-12s %-12s %s\n", result.id.c_str(),
                std::string(to_string(result.state)).c_str(), result.detail.c_str());
  }
  std::printf("\ncase '%s': %s\n", ac.name().c_str(),
              report.case_supported ? "SUPPORTED" : "NOT SUPPORTED");
  return report.case_supported ? 0 : 1;
}

int cmd_query(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto source = drivers::DriverRegistry::global().open(args.positional[0],
                                                             args.get("type").value_or(""));
  query::Env env;
  source->bind(env);
  const auto value = query::eval(args.positional[1], env);
  std::printf("%s\n", value.to_display().c_str());
  return 0;
}

int cmd_impact(const Args& args) {
  if (args.positional.size() < 2) return usage();
  ssam::SsamModel model;
  model::load_xmi_file(model.repo(), model.meta(), args.positional[0]);
  const auto component = model.find_by_name(ssam::cls::Component, args.positional[1]);
  if (component == model::kNullObject) {
    std::fprintf(stderr, "error: no component named '%s'\n", args.positional[1].c_str());
    return 1;
  }
  const auto report = core::impact_of_change(model, component);
  std::printf("%s", report.to_text(model).c_str());
  return 0;
}

int cmd_session(const Args& args) {
  session::ServiceOptions options;
  // The model can come positionally or via --model; either way a resident
  // model needs --component to name the analysis root.
  if (!args.positional.empty()) options.model_path = args.positional[0];
  if (const auto model = args.get("model")) options.model_path = *model;
  if (!options.model_path.empty()) {
    const auto component = args.get("component");
    if (!component.has_value()) {
      std::fprintf(stderr, "error: --component <name> is required with a model path\n");
      return 2;
    }
    options.component = *component;
  }
  if (const auto cache = args.get("cache")) options.cache_path = *cache;
  if (const auto jobs = args.get("jobs")) {
    options.analysis.jobs = static_cast<int>(parse_int(*jobs));
    if (options.analysis.jobs < 0) {
      std::fprintf(stderr, "error: --jobs must be >= 0 (0 = all cores)\n");
      return 2;
    }
  }
  return session::run_service(std::cin, std::cout, options);
}

int cmd_scalability(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto elements = static_cast<std::uint64_t>(parse_int(args.positional[0]));
  const size_t budget =
      static_cast<size_t>(parse_int(args.get("budget-mib").value_or("4096"))) * 1024 * 1024;
  const auto full = core::evaluate_full_load(elements, budget);
  if (full.loaded) {
    std::printf("full-load: %llu elements, %llu safety-related, total FIT %.0f, %.3f s\n",
                static_cast<unsigned long long>(full.elements),
                static_cast<unsigned long long>(full.safety_related), full.total_fit,
                full.load_seconds + full.query_seconds);
  } else {
    std::printf("full-load: N/A — %s\n", full.failure.c_str());
  }
  const auto indexed = core::evaluate_indexed(elements);
  std::printf("indexed:   %llu elements, %llu safety-related, total FIT %.0f, %.3f s\n",
              static_cast<unsigned long long>(indexed.elements),
              static_cast<unsigned long long>(indexed.safety_related), indexed.total_fit,
              indexed.load_seconds + indexed.query_seconds);
  return 0;
}

std::string read_file_or_throw(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError(std::string("cannot open ") + what + " '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_check_trace(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& path = args.positional[0];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open trace file '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string problem = obs::validate_chrome_trace(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "invalid trace %s: %s\n", path.c_str(), problem.c_str());
    return 1;
  }
  std::printf("ok: %s is a well-formed Chrome trace\n", path.c_str());
  return 0;
}

int cmd_status(const Args& args) {
  if (args.positional.empty()) return usage();
  namespace fs = std::filesystem;
  const std::string& target = args.positional[0];
  const double stale_seconds = parse_double(args.get("stale-seconds").value_or("30"));

  std::vector<std::string> files;
  if (fs::is_regular_file(target)) {
    files.push_back(target);
  } else if (fs::is_directory(target)) {
    for (const auto& entry : fs::directory_iterator(target)) {
      if (entry.is_regular_file() &&
          ends_with(entry.path().filename().string(), ".heartbeat.json")) {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    std::fprintf(stderr, "error: '%s' is neither a directory nor a heartbeat file\n",
                 target.c_str());
    return 2;
  }

  std::vector<std::pair<std::string, obs::Heartbeat>> beats;
  for (const std::string& file : files) {
    try {
      beats.emplace_back(file, obs::parse_heartbeat(read_file_or_throw(file, "heartbeat")));
    } catch (const Error& error) {
      std::fprintf(stderr, "warning: skipping '%s': %s\n", file.c_str(), error.what());
    }
  }
  if (beats.empty()) {
    std::fprintf(stderr, "no heartbeat found under '%s'\n", target.c_str());
    return 1;
  }

  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto now_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
  const obs::StatusView view = obs::fold_status(beats, now_ms, stale_seconds);
  std::printf("%s", view.render().c_str());
  return view.dead_shards > 0 ? 3 : 0;
}

int cmd_merge_metrics(const Args& args) {
  if (args.positional.empty()) return usage();
  std::vector<std::string> texts;
  for (const std::string& path : args.positional) {
    texts.push_back(read_file_or_throw(path, "metrics snapshot"));
  }
  const std::string merged = obs::merge_registry_snapshots(texts);
  if (const auto out = args.get("out")) {
    std::ofstream file(*out, std::ios::binary);
    if (!file) throw IoError("cannot write '" + *out + "'");
    file << merged;
    std::fprintf(stderr, "merged %zu snapshot(s) into %s\n", texts.size(), out->c_str());
  } else {
    std::printf("%s", merged.c_str());
  }
  return 0;
}

int cmd_merge_traces(const Args& args) {
  if (args.positional.empty()) return usage();
  std::vector<std::string> texts;
  for (const std::string& path : args.positional) {
    texts.push_back(read_file_or_throw(path, "trace"));
  }
  const std::string merged = obs::merge_chrome_traces(texts);
  // The merge must itself be a valid trace — check before anyone ships it
  // to a viewer, mirroring `same check-trace`.
  const std::string problem = obs::validate_chrome_trace(merged);
  if (!problem.empty()) {
    std::fprintf(stderr, "error: merged trace is invalid: %s\n", problem.c_str());
    return 1;
  }
  if (const auto out = args.get("out")) {
    std::ofstream file(*out, std::ios::binary);
    if (!file) throw IoError("cannot write '" + *out + "'");
    file << merged;
    std::fprintf(stderr, "merged %zu trace(s) into %s\n", texts.size(), out->c_str());
  } else {
    std::printf("%s", merged.c_str());
  }
  return 0;
}

int dispatch(const std::string& command, const Args& args) {
  // `campaign` names what the command actually runs (the fault-injection
  // campaign engine); `fmea` is the historical spelling.
  if (command == "fmea" || command == "campaign") return cmd_fmea(args);
  if (command == "merge-journals") return cmd_merge_journals(args);
  if (command == "graph-fmea") return cmd_graph_fmea(args);
  if (command == "sm-search") return cmd_sm_search(args);
  if (command == "import") return cmd_import(args);
  if (command == "export") return cmd_export(args);
  if (command == "assurance") return cmd_assurance(args);
  if (command == "query") return cmd_query(args);
  if (command == "scalability") return cmd_scalability(args);
  if (command == "validate") return cmd_validate(args);
  if (command == "fta") return cmd_fta(args);
  if (command == "monitor") return cmd_monitor(args);
  if (command == "impact") return cmd_impact(args);
  if (command == "session") return cmd_session(args);
  if (command == "check-trace") return cmd_check_trace(args);
  if (command == "status") return cmd_status(args);
  if (command == "merge-metrics") return cmd_merge_metrics(args);
  if (command == "merge-traces") return cmd_merge_traces(args);
  if (command == "help" || command == "--help" || command == "-h") {
    usage();
    return 0;
  }
  std::fprintf(stderr, "same: unknown command '%s'\n", command.c_str());
  return usage();
}

/// The observability epilogue, shared by every subcommand. Both artefacts go
/// to stderr/side files so stdout (tables, CSVs, session replies) stays
/// byte-identical with instrumentation on or off.
int finish_instrumentation(const Args& args, const std::optional<std::string>& trace_path) {
  if (trace_path.has_value()) {
    auto& collector = obs::TraceCollector::global();
    collector.disable();
    collector.write_file(*trace_path);
    std::fprintf(stderr, "trace: %zu events written to %s\n", collector.event_count(),
                 trace_path->c_str());
  }
  if (const auto metrics = args.get("metrics")) {
    const std::string text = obs::Registry::global().to_prometheus();
    if (*metrics == "true") {
      std::fputs(text.c_str(), stderr);
    } else {
      std::ofstream out(*metrics, std::ios::binary);
      if (!out) throw IoError("cannot write metrics file '" + *metrics + "'");
      out << text;
      std::fprintf(stderr, "metrics written to %s\n", metrics->c_str());
    }
  }
  if (const auto snapshot = args.get("metrics-json")) {
    if (*snapshot == "true") throw IoError("--metrics-json requires an output path");
    std::ofstream out(*snapshot, std::ios::binary);
    if (!out) throw IoError("cannot write metrics snapshot '" + *snapshot + "'");
    out << obs::registry_snapshot_json(obs::Registry::global());
    std::fprintf(stderr, "metrics snapshot written to %s\n", snapshot->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  const auto trace_path = args.get("trace");
  if (trace_path.has_value()) {
    if (*trace_path == "true") {
      std::fprintf(stderr, "error: --trace requires an output path\n");
      return 2;
    }
    obs::TraceCollector::global().enable();
  }
  int rc;
  try {
    rc = dispatch(command, args);
  } catch (const Error& error) {
    std::fprintf(stderr, "same: %s\n", error.what());
    rc = 1;
  }
  try {
    finish_instrumentation(args, trace_path);
  } catch (const Error& error) {
    std::fprintf(stderr, "same: %s\n", error.what());
    if (rc == 0) rc = 1;
  }
  return rc;
}
