// bench_compare — the perf-regression sentinel.
//
// Diffs a fresh BENCH_<name>.json snapshot against a checked-in baseline
// (bench/baselines/) with per-metric noise tolerances, and exits nonzero on
// a regression — CI runs it after every bench so the bench trajectory
// actually gates merges instead of rotting as unread artefacts.
//
//   bench_compare <fresh.json> <baseline.json>
//                 [--checks <checks.json>] [--tolerance T]
//                 [--check-wall] [--report <out.json>]
//
// With --checks, only the configured checks for the snapshot's bench run —
// typically iteration-invariant ratios ("metric per divisor"), which stay
// comparable across machines even though google-benchmark picks iteration
// counts adaptively. Without it, every counter and gauge common to both
// snapshots is compared with the default tolerance (meaningful when fresh
// and baseline ran on comparable hardware); --check-wall adds histogram
// p50/p99 (wall clock, machine-dependent, so opt-in).
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = structural error
// (unreadable file, schema/kind/bench mismatch, missing metric) or usage.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/obs/bench_diff.hpp"

using namespace decisive;

namespace {

std::string read_file_or_throw(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError(std::string("cannot open ") + what + " '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <fresh.json> <baseline.json>\n"
               "                     [--checks <checks.json>] [--tolerance T]\n"
               "                     [--check-wall] [--report <out.json>]\n"
               "exit: 0 ok, 1 regression, 2 structural error\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string checks_path;
  std::string report_path;
  obs::BenchDiffOptions options;
  bool tolerance_from_cli = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--checks" && i + 1 < argc) {
      checks_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      options.default_tolerance = parse_double(argv[++i]);
      tolerance_from_cli = true;
    } else if (arg == "--check-wall") {
      options.check_wall = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (starts_with(arg, "--")) {
      std::fprintf(stderr, "bench_compare: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return usage();

  try {
    const obs::BenchSnapshot fresh =
        obs::parse_bench_snapshot(read_file_or_throw(positional[0], "fresh snapshot"));
    const obs::BenchSnapshot baseline =
        obs::parse_bench_snapshot(read_file_or_throw(positional[1], "baseline snapshot"));

    if (!checks_path.empty()) {
      // The checks file's default_tolerance yields to an explicit --tolerance.
      double file_tolerance = options.default_tolerance;
      options.checks = obs::parse_bench_checks(read_file_or_throw(checks_path, "checks file"),
                                               fresh.bench, &file_tolerance);
      if (!tolerance_from_cli) options.default_tolerance = file_tolerance;
      if (options.checks.empty()) {
        std::fprintf(stderr, "bench_compare: no checks configured for bench '%s' in %s\n",
                     fresh.bench.c_str(), checks_path.c_str());
        return 2;
      }
    }

    const obs::BenchDiffReport report = obs::diff_bench_snapshots(fresh, baseline, options);
    std::printf("%s", report.render().c_str());
    if (!report_path.empty()) {
      std::ofstream out(report_path, std::ios::binary);
      if (!out) throw IoError("cannot write report '" + report_path + "'");
      out << report.to_json();
      std::fprintf(stderr, "report written to %s\n", report_path.c_str());
    }
    return report.regression() ? 1 : 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "bench_compare: %s\n", error.what());
    return 2;
  }
}
